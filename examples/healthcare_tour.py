"""The paper's §5 walkthrough, end to end (Figures 4, 5 and 6).

Run::

    python examples/healthcare_tour.py

Every step quotes the WebTassili statement the paper shows and prints
the regenerated output: the coalition tree, the RBH documentation
(including the Figure-5 HTML page), the exported interface with the
``Funding()`` function, the generated SQL of §2.3, and the Figure-6
``select * from medical students`` grid.
"""

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo


def step(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    deployment = build_healthcare_system()
    browser = deployment.browser(topo.QUT)  # the QUT researcher of §2.3

    step("The information space as seen from QUT Research")
    print(browser.information_tree())

    step('webtassili> Display Coalitions With Information Medical Research')
    print(browser.submit(
        "Display Coalitions With Information Medical Research").text)

    step('webtassili> Connect To Coalition Research')
    print(browser.submit("Connect To Coalition Research").text)

    step('webtassili> Display SubClasses of Class Research')
    print(browser.submit("Display SubClasses of Class Research").text)

    step('webtassili> Display Instances of Class Research')
    print(browser.submit("Display Instances of Class Research").text)

    step('webtassili> Display Documentation of Instance Royal Brisbane '
         'Hospital of Class Research   (Figures 4-5)')
    print(browser.submit(
        "Display Documentation of Instance Royal Brisbane Hospital "
        "of Class Research").text)

    step('webtassili> Display Access Information of Instance Royal '
         'Brisbane Hospital')
    print(browser.submit(
        "Display Access Information of Instance Royal Brisbane "
        "Hospital").text)

    step('webtassili> Display Interface of Instance Royal Brisbane Hospital')
    print(browser.submit(
        "Display Interface of Instance Royal Brisbane Hospital").text)

    step("Invoking Funding('AIDS and drugs') — and the SQL it becomes (§2.3)")
    wrapper = deployment.system.local_wrapper(topo.RBH)
    print("generated SQL:",
          wrapper.generate_sql("ResearchProjects", "Funding",
                               ["AIDS and drugs"]))
    print(browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                         "AIDS and drugs").text)

    step("Figure 6: select * from medical students (the Fetch button)")
    print(browser.fetch(topo.RBH, "SELECT * FROM MedicalStudent").text)

    step('webtassili> Find Coalitions With Information Medical Insurance '
         '(the §2.3 service-link traversal)')
    result = browser.submit(
        "Find Coalitions With Information Medical Insurance")
    print(result.text)
    print()
    print("Resolution trace:")
    for line in result.data.trace:
        print("   ", line)

    step('webtassili> Connect To Coalition Medical Insurance; '
         'Display Instances')
    print(browser.submit("Connect To Coalition Medical Insurance").text)
    print(browser.submit(
        "Display Instances of Class Medical Insurance").text)

    step("Session summary")
    metrics = deployment.system.metrics()
    print(f"{len(browser.transcript)} WebTassili statements, "
          f"{metrics['giop_messages']} GIOP messages across "
          f"{len(deployment.system.orbs())} ORB products")


if __name__ == "__main__":
    main()
