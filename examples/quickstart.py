"""Quickstart: stand up the healthcare federation and ask it things.

Run::

    python examples/quickstart.py

This deploys the paper's full testbed (14 databases over five DBMSs,
three ORB products, 5 coalitions, 9 service links), then walks the
basic user loop: find coalitions for a topic, inspect a source, and
query its data — all through the public API.
"""

from repro.apps.healthcare import build_healthcare_system


def main() -> None:
    deployment = build_healthcare_system()
    system = deployment.system

    print("Deployed federation:", system.registry.summary())
    print()

    # A user of the QUT Research database opens a browser session.
    browser = deployment.browser()

    # 1. Locate coalitions that advertise a topic.
    print(browser.find("Medical Research").text)
    print()

    # 2. Learn what the Research coalition contains.
    print(browser.instances("Research").text)
    print()

    # 3. Inspect one source: where it lives, how to access it.
    print(browser.access_information("Royal Brisbane Hospital").text)
    print()

    # 4. Query its actual data through the exported interface...
    result = browser.invoke("Royal Brisbane Hospital", "ResearchProjects",
                            "Funding", "AIDS and drugs")
    print(result.text)
    print()

    # ...or with native SQL, shipped over the CORBA-style middleware.
    print(browser.fetch("Royal Brisbane Hospital",
                        "SELECT Name, Course FROM MedicalStudent "
                        "WHERE Year >= 5").text)
    print()

    metrics = system.metrics()
    print(f"Middleware traffic this session: "
          f"{metrics['giop_messages']} GIOP messages, "
          f"{metrics['giop_bytes_sent']} bytes sent")


if __name__ == "__main__":
    main()
