"""Building and evolving a federation from scratch.

Run::

    python examples/federation_admin.py

Shows the administrator's side of WebFINDIT: deploying heterogeneous
sources (an Oracle-dialect relational store and an ObjectStore-style
object database), organizing them with WebTassili maintenance
statements (create coalition, join, service links, advertise), and
evolving the space (a member leaves, a coalition dissolves) while
user-visible discovery keeps working.
"""

from repro.core.model import SourceDescription
from repro.core.system import WebFinditSystem
from repro.oodb import Attribute, ObjectDatabase
from repro.orb.products import ORBIX, VISIBROKER
from repro.sql import Database
from repro.wrappers import (ExportedAttribute, ExportedFunction, ExportedType,
                            OqlBinding, SqlBinding)


def build_relational_source() -> tuple[Database, list[ExportedType]]:
    """A small travel-clinic database with one exported type."""
    db = Database("Travel Clinic", dialect="oracle")
    db.execute("CREATE TABLE vaccination (id INT PRIMARY KEY, "
               "vaccine VARCHAR2(30), price NUMBER, region VARCHAR2(30))")
    db.executemany(
        "INSERT INTO vaccination VALUES (?, ?, ?, ?)",
        [[1, "yellow fever", 95.0, "africa"],
         [2, "typhoid", 55.0, "asia"],
         [3, "hepatitis A", 80.0, "global"]])
    exported = ExportedType(
        "Vaccinations",
        attributes=[ExportedAttribute("vaccination.vaccine", "string"),
                    ExportedAttribute("vaccination.price", "real")],
        functions=[ExportedFunction(
            "PriceOf", ("vaccine",), "real",
            SqlBinding("SELECT price FROM vaccination WHERE vaccine = ?",
                       ("vaccine",)))])
    return db, [exported]


def build_object_source() -> tuple[ObjectDatabase, list[ExportedType]]:
    """A physiotherapy practice stored in an object database."""
    db = ObjectDatabase("Physio Practice", product="ObjectStore")
    db.define_class("Therapist", [Attribute("name", "string"),
                                  Attribute("specialty", "string")])
    db.create("Therapist", name="K. Ito", specialty="sports")
    db.create("Therapist", name="M. Reed", specialty="neuro")
    exported = ExportedType(
        "Therapists",
        functions=[ExportedFunction(
            "BySpecialty", ("specialty",), "rows",
            OqlBinding("SELECT name FROM Therapist WHERE "
                       "specialty = {specialty}", ("specialty",)))])
    return db, [exported]


def main() -> None:
    system = WebFinditSystem()

    relational, relational_types = build_relational_source()
    system.register_relational_source(
        relational,
        SourceDescription(name="Travel Clinic",
                          information_type="travel medicine",
                          location="clinic.example.net"),
        exported_types=relational_types, orb_product=VISIBROKER)

    objects, object_types = build_object_source()
    system.register_object_source(
        objects,
        SourceDescription(name="Physio Practice",
                          information_type="physiotherapy",
                          location="physio.example.net"),
        exported_types=object_types, orb_product=ORBIX)

    print("Deployment map:")
    for record in system.deployment_map():
        print(f"  {record.source_name:18s} {record.dbms:12s} "
              f"behind {record.orb_product} via {record.gateway}")
    print()

    # Organize the space with WebTassili maintenance statements.
    browser = system.browser("Travel Clinic")
    for statement in (
            "Create Coalition Allied Health With Information "
            "'allied health services'",
            "Join Database Travel Clinic To Coalition Allied Health",
            "Join Database Physio Practice To Coalition Allied Health",
            "Create Service Link From Database Travel Clinic "
            "To Database Physio Practice With Description 'referrals'"):
        print("webtassili>", statement)
        print(browser.submit(statement).text)
        print()

    # A user of the relational source can now discover the object one.
    print(browser.find("physiotherapy").text)
    print()
    print(browser.invoke("Physio Practice", "Therapists", "BySpecialty",
                         "sports").text)
    print()
    print(browser.invoke("Travel Clinic", "Vaccinations", "PriceOf",
                         "typhoid").text)
    print()

    # Structure-qualified search: only sources exporting PriceOf match.
    print(browser.submit("Find Sources With Information "
                         "'travel medicine' Structure (PriceOf)").text)
    print()

    # Persist the information space and prove it rebuilds identically.
    import json

    from repro.core import export_topology, import_topology
    payload = export_topology(system.registry)
    restored = import_topology(json.loads(json.dumps(payload)))
    print(f"Topology exported ({len(json.dumps(payload))} bytes of JSON) "
          f"and re-imported: {restored.summary()}")
    print()

    # Evolution: membership is at each database's discretion (§2.1).
    print(browser.submit("Leave Database Physio Practice From Coalition "
                         "Allied Health").text)
    print(browser.instances("Allied Health").text)
    print()
    print("Registry after evolution:", system.registry.summary())


if __name__ == "__main__":
    main()
