"""Scalability study: coalition routing vs the alternatives.

Run::

    python examples/scalability_study.py

Generates synthetic federations of growing size and compares, per
discovery query, WebFINDIT's coalition/service-link routing against

* **broadcast** — the flat Web: ask every source (linear cost), and
* **global schema** — the tightly-coupled multidatabase: constant-time
  queries bought with quadratic integration work up front.

This is the runnable form of benches S1 and S3 (see EXPERIMENTS.md).
"""

from repro.bench import (build_scaled_space, discovery_workload, print_table,
                         ratio)

SIZES = (56, 112, 224)
QUERIES = 20


def main() -> None:
    discovery_rows = []
    construction_rows = []
    for size in SIZES:
        space = build_scaled_space(databases=size, coalitions=size // 8)
        engine = space.discovery_engine()
        workload = discovery_workload(space, QUERIES, seed=11)

        webfindit_contacts = 0
        for query in workload:
            result = engine.discover(query.text, query.start_database,
                                     max_hops=12)
            assert result.resolved
            webfindit_contacts += result.codatabases_contacted
        webfindit_avg = webfindit_contacts / QUERIES

        broadcast_avg = sum(
            space.broadcast.discover(q.text).sources_contacted
            for q in workload) / QUERIES

        discovery_rows.append([
            size, f"{webfindit_avg:.1f}", f"{broadcast_avg:.0f}",
            f"{ratio(broadcast_avg, webfindit_avg):.1f}x"])
        construction_rows.append([
            size, space.global_schema.total_comparisons,
            space.registry.update_operations])

    print_table("Per-query discovery cost (metadata contacts)",
                ["N databases", "WebFINDIT", "broadcast", "advantage"],
                discovery_rows)
    print()
    print_table("Cumulative construction/maintenance work",
                ["N databases", "global-schema comparisons",
                 "WebFINDIT co-db writes"],
                construction_rows)
    print()
    print("Reading: broadcast pays per query, forever; the global schema")
    print("pays quadratically up front (and again on every change);")
    print("WebFINDIT's coalition routing keeps both sides incremental.")


if __name__ == "__main__":
    main()
