"""The middleware substrate on its own: CORBA-style objects over IIOP.

Run::

    python examples/middleware_demo.py

Demonstrates the communication layer without any WebFINDIT on top:
defining an interface (the IDL role), activating a servant on one ORB
product, passing its stringified IOR to a different product, invoking
over real TCP/IP (IIOP), and watching CDR/GIOP do the byte work.
"""

from repro.orb import (InterfaceBuilder, Ior, TcpTransport, create_orb,
                       decode_message, encode_any, ORBIX, VISIBROKER,
                       start_naming_service)

# 1. Define the interface — the role CORBA IDL plays.
WEATHER = (InterfaceBuilder("WeatherStation", module="demo")
           .operation("report", "city",
                      doc="Current conditions for a city")
           .operation("cities", doc="Cities this station covers")
           .build())


class WeatherServant:
    """Server-side implementation ('written in C++', says the Orbix)."""

    _data = {
        "Brisbane": {"temp_c": 26.5, "sky": "sunny"},
        "Cairns": {"temp_c": 31.0, "sky": "humid"},
    }

    def report(self, city):
        return self._data.get(city, {"error": f"unknown city {city!r}"})

    def cities(self):
        return sorted(self._data)


def main() -> None:
    # 2. Two different ORB products share one real TCP transport.
    transport = TcpTransport()
    try:
        server_orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client_orb = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
        print(f"server ORB: {server_orb.product} at {server_orb.endpoint}")
        print(f"client ORB: {client_orb.product} at {client_orb.endpoint}")

        # 3. Activate the servant; publish its IOR via the name service.
        ior = server_orb.activate(WeatherServant(), WEATHER,
                                  object_name="bne-station")
        __, naming = start_naming_service(server_orb)
        naming.bind("demo/weather", ior)

        ior_string = server_orb.object_to_string(ior)
        print(f"\nstringified IOR ({len(ior_string)} chars):")
        print(" ", ior_string[:72] + "...")
        parsed = Ior.from_string(ior_string)
        print(f"  type id  : {parsed.type_id}")
        print(f"  endpoint : {parsed.primary.endpoint}")

        # 4. The client resolves and invokes across products over TCP.
        resolved = naming.resolve("demo/weather")
        station = client_orb.proxy(resolved, WEATHER)
        print("\ncities():", station.cities())
        print("report('Brisbane'):", station.report("Brisbane"))
        print("report('Atlantis'):", station.report("Atlantis"))

        # 5. Peek at the bytes: CDR payloads inside GIOP frames.
        payload = encode_any({"temp_c": 26.5, "sky": "sunny"})
        print(f"\nCDR encoding of a report payload: {len(payload)} bytes")
        print("  hex:", payload[:24].hex(), "...")

        from repro.orb.giop import RequestMessage, encode_message
        frame = encode_message(RequestMessage(
            request_id=1, object_key=parsed.primary.object_key,
            operation="report", arguments=["Brisbane"]))
        print(f"GIOP request frame: {len(frame)} bytes "
              f"(magic {frame[:4]!r}, GIOP {frame[4]}.{frame[5]})")
        decoded = decode_message(frame)
        print(f"decoded back: operation={decoded.operation!r}, "
              f"args={decoded.arguments}")

        # 6. Interop accounting.
        print(f"\nserver handled {server_orb.stats.requests_handled} "
              f"requests, {server_orb.stats.cross_product_requests} from "
              f"other ORB products")
        print(f"transport moved {transport.metrics.bytes_sent} bytes in "
              f"{transport.metrics.messages_sent} messages over TCP")
    finally:
        transport.close()


if __name__ == "__main__":
    main()
