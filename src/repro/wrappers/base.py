"""Information Source Interfaces (ISIs) — the paper's wrapper layer.

A database participates in WebFINDIT by exporting an *interface*: a set
of types, each with attributes and access functions (§2.2 of the paper
shows ``Type PatientHistory { attribute ...; function ... }``).  The
wrapper translates an invocation of an exported function into the
native query language of the source — SQL for relational stores, OQL
or a direct method call for object stores — and executes it.

This module defines the export model and the abstract wrapper;
concrete wrappers live in :mod:`repro.wrappers.relational` and
:mod:`repro.wrappers.objectstore`, and the off-site variant in
:mod:`repro.wrappers.remote`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import AccessError, TranslationError


@dataclass(frozen=True)
class ExportedAttribute:
    """One attribute of an exported type, e.g. ``string Patient.Name``."""

    name: str
    type_name: str = "string"

    def render(self) -> str:
        """The paper's declaration syntax."""
        return f"attribute {self.type_name} {self.name};"


@dataclass(frozen=True)
class SqlBinding:
    """Run a parameterized SQL statement against the wrapped source."""

    sql: str
    parameters: tuple[str, ...] = ()


@dataclass(frozen=True)
class OqlBinding:
    """Run an OQL query; ``{param}`` placeholders are literal-substituted."""

    oql: str
    parameters: tuple[str, ...] = ()


@dataclass(frozen=True)
class CallableBinding:
    """Invoke a Python callable directly — the C++-method/JNI analogue."""

    function: Callable[..., Any]


Binding = SqlBinding | OqlBinding | CallableBinding


@dataclass(frozen=True)
class ExportedFunction:
    """One access function of an exported type.

    *binding* tells the owning wrapper how to execute the function
    against the native store; *parameters* name the function's formal
    arguments in order.
    """

    name: str
    parameters: tuple[str, ...] = ()
    result_type: str = "any"
    binding: Optional[Binding] = None
    doc: str = ""

    def render(self) -> str:
        params = ", ".join(self.parameters)
        return f"function {self.result_type} {self.name}({params});"


@dataclass
class ExportedType:
    """One type of a database's exported interface."""

    name: str
    attributes: list[ExportedAttribute] = field(default_factory=list)
    functions: list[ExportedFunction] = field(default_factory=list)
    doc: str = ""

    def function(self, name: str) -> ExportedFunction:
        for fn in self.functions:
            if fn.name.lower() == name.lower():
                return fn
        raise AccessError(
            f"type {self.name!r} exports no function {name!r}")

    def render(self) -> str:
        """The paper's ``Type X { ... }`` declaration."""
        lines = [f"Type {self.name} {{"]
        for attribute in self.attributes:
            lines.append(f"    {attribute.render()}")
        for fn in self.functions:
            lines.append(f"    {fn.render()}")
        lines.append("}")
        return "\n".join(lines)


class InformationSourceInterface:
    """Abstract wrapper around one native database.

    Concrete subclasses provide:

    * :meth:`execute_native` — run a native-language query;
    * :meth:`_run_binding` — execute one function binding;
    * :attr:`native_language` and :attr:`banner`.
    """

    def __init__(self, source_name: str, wrapper_name: str,
                 exported_types: Optional[Sequence[ExportedType]] = None):
        self.source_name = source_name
        self.wrapper_name = wrapper_name
        self._types: dict[str, ExportedType] = {}
        for exported in exported_types or ():
            self.export_type(exported)
        #: Invocation counter, used by benchmarks.
        self.invocations = 0

    # -- exports -----------------------------------------------------------------

    def export_type(self, exported: ExportedType) -> None:
        """Add a type to the exported interface."""
        key = exported.name.lower()
        if key in self._types:
            raise AccessError(
                f"type {exported.name!r} already exported by "
                f"{self.source_name!r}")
        self._types[key] = exported

    def exported_types(self) -> list[ExportedType]:
        """The exported interface, in export order."""
        return list(self._types.values())

    def exported_type(self, name: str) -> ExportedType:
        exported = self._types.get(name.lower())
        if exported is None:
            raise AccessError(
                f"source {self.source_name!r} exports no type {name!r}")
        return exported

    def describe(self) -> dict[str, Any]:
        """Wire-friendly description of this interface."""
        return {
            "source": self.source_name,
            "wrapper": self.wrapper_name,
            "language": self.native_language,
            "banner": self.banner,
            "types": [
                {
                    "name": exported.name,
                    "doc": exported.doc,
                    "attributes": [
                        {"name": a.name, "type": a.type_name}
                        for a in exported.attributes],
                    "functions": [
                        {"name": f.name, "parameters": list(f.parameters),
                         "result": f.result_type, "doc": f.doc}
                        for f in exported.functions],
                }
                for exported in self._types.values()
            ],
        }

    # -- invocation -----------------------------------------------------------------

    def invoke(self, type_name: str, function_name: str,
               args: Sequence[Any]) -> Any:
        """Invoke an exported function, translating it for the source."""
        exported = self.exported_type(type_name)
        fn = exported.function(function_name)
        if len(args) != len(fn.parameters):
            raise AccessError(
                f"{type_name}.{function_name} takes {len(fn.parameters)} "
                f"arguments, got {len(args)}")
        if fn.binding is None:
            raise TranslationError(
                f"{type_name}.{function_name} has no execution binding")
        self.invocations += 1
        return self._run_binding(fn, list(args))

    # -- to implement ------------------------------------------------------------------

    @property
    def native_language(self) -> str:
        """The source's native query language (``SQL``, ``OQL``, ...)."""
        raise NotImplementedError  # pragma: no cover - interface

    @property
    def banner(self) -> str:
        """Product banner of the wrapped store."""
        raise NotImplementedError  # pragma: no cover - interface

    def execute_native(self, query: str,
                       params: Optional[Sequence[Any]] = None) -> Any:
        """Run a query written in the source's native language."""
        raise NotImplementedError  # pragma: no cover - interface

    def _run_binding(self, fn: ExportedFunction, args: list[Any]) -> Any:
        raise NotImplementedError  # pragma: no cover - interface
