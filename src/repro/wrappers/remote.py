"""Off-site Information Source Interfaces.

The paper allows an ISI to live "at a different site from the database",
relying on a gateway protocol between them.  Here an ISI of any kind is
activated on an ORB as a CORBA object (:class:`IsiServant`), and
:class:`RemoteIsi` is the client-side ISI whose every call crosses the
middleware as GIOP traffic.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import AccessError
from repro.gateway.bridge import result_from_wire, result_to_wire
from repro.orb.idl import InterfaceBuilder, InterfaceDef
from repro.orb.ior import Ior
from repro.orb.orb import Orb, Proxy
from repro.sql.result import ResultSet
from repro.wrappers.base import (ExportedAttribute, ExportedFunction,
                                 ExportedType, InformationSourceInterface)

#: CORBA interface of a remotely-hosted ISI.
ISI_INTERFACE: InterfaceDef = (
    InterfaceBuilder("InformationSourceInterface", module="webfindit",
                     doc="Wrapper access to one information source")
    .operation("describe", doc="Exported interface description")
    .operation("execute_native", "query", "params",
               doc="Run a native-language query")
    .operation("invoke", "type_name", "function_name", "args",
               doc="Invoke an exported access function")
    .build())


def _value_to_wire(value: Any) -> Any:
    if isinstance(value, ResultSet):
        payload = result_to_wire(value)
        payload["__kind__"] = "resultset"
        return payload
    if isinstance(value, list) and value and isinstance(value[0], dict):
        return {"__kind__": "dictrows", "rows": value}
    return {"__kind__": "scalar", "value": value}


def _value_from_wire(payload: Any) -> Any:
    if not isinstance(payload, dict):
        return payload
    kind = payload.get("__kind__")
    if kind == "resultset":
        return result_from_wire(payload)
    if kind == "dictrows":
        return payload["rows"]
    if kind == "scalar":
        return payload["value"]
    return payload


class IsiServant:
    """CORBA servant exposing any local ISI."""

    def __init__(self, isi: InformationSourceInterface):
        self._isi = isi

    def describe(self) -> dict[str, Any]:
        return self._isi.describe()

    def execute_native(self, query: str, params: list[Any]) -> Any:
        return _value_to_wire(self._isi.execute_native(query, params or None))

    def invoke(self, type_name: str, function_name: str,
               args: list[Any]) -> Any:
        return _value_to_wire(self._isi.invoke(type_name, function_name,
                                               args))


def serve_isi(orb: Orb, isi: InformationSourceInterface,
              object_name: Optional[str] = None) -> Ior:
    """Activate an ISI on *orb*; returns the servant's IOR."""
    return orb.activate(IsiServant(isi), ISI_INTERFACE,
                        object_name=object_name or isi.source_name)


class RemoteIsi(InformationSourceInterface):
    """Client-side ISI proxying a remotely-hosted wrapper.

    The exported interface is fetched once from the remote ``describe``
    and cached; invocations are forwarded as GIOP requests.
    """

    def __init__(self, proxy: Proxy):
        self._proxy = proxy
        description = proxy.invoke("describe")
        if not isinstance(description, dict):
            raise AccessError("remote ISI returned a malformed description")
        self._description = description
        types = [
            ExportedType(
                name=t["name"],
                doc=t.get("doc", ""),
                attributes=[ExportedAttribute(a["name"], a.get("type", "string"))
                            for a in t.get("attributes", [])],
                functions=[ExportedFunction(
                    name=f["name"],
                    parameters=tuple(f.get("parameters", [])),
                    result_type=f.get("result", "any"),
                    doc=f.get("doc", ""))
                    for f in t.get("functions", [])],
            )
            for t in description.get("types", [])
        ]
        super().__init__(source_name=description.get("source", "remote"),
                         wrapper_name=description.get("wrapper", "remote"),
                         exported_types=types)

    @property
    def native_language(self) -> str:
        return str(self._description.get("language", "unknown"))

    @property
    def banner(self) -> str:
        return str(self._description.get("banner", "unknown"))

    def execute_native(self, query: str,
                       params: Optional[Sequence[Any]] = None) -> Any:
        return _value_from_wire(
            self._proxy.invoke("execute_native", query,
                               list(params) if params else []))

    def invoke(self, type_name: str, function_name: str,
               args: Sequence[Any]) -> Any:
        # Forward without local binding checks: the authoritative
        # interface lives with the remote wrapper.
        self.invocations += 1
        return _value_from_wire(
            self._proxy.invoke("invoke", type_name, function_name,
                               list(args)))

    def _run_binding(self, fn: ExportedFunction,
                     args: list[Any]) -> Any:  # pragma: no cover - unused
        raise AccessError("RemoteIsi forwards invocations; no local bindings")
