"""Wrapper for relational sources (the ``WebTassiliOracle`` role).

Translates exported-function invocations into SQL executed through the
gateway — over a local connection or a JDBC-over-IIOP one; the wrapper
does not care, which is exactly the transparency JDBC gave the paper's
server objects.

The paper's running example (§2.3) is preserved by
:meth:`RelationalWrapper.generate_sql`: invoking
``Funding(ResearchProjects.Title, Title = 'AIDS and drugs')`` yields the
SQL the paper prints::

    Select a.Funding From ResearchProjects a Where a.Title = 'AIDS and drugs'
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import TranslationError
from repro.gateway.api import Connection
from repro.sql.dialect import GENERIC, Dialect
from repro.sql.result import ResultSet
from repro.wrappers.base import (ExportedFunction, ExportedType,
                                 InformationSourceInterface, SqlBinding)


class RelationalWrapper(InformationSourceInterface):
    """ISI over a gateway connection to a relational database."""

    def __init__(self, source_name: str, connection: Connection,
                 wrapper_name: Optional[str] = None,
                 dialect: Optional[Dialect] = None,
                 exported_types: Optional[Sequence[ExportedType]] = None):
        self._connection = connection
        self._dialect = dialect or getattr(
            getattr(connection, "_database", None), "dialect", GENERIC)
        if wrapper_name is None:
            wrapper_name = f"WebTassili{self._dialect.product.split()[0]}"
        super().__init__(source_name, wrapper_name, exported_types)

    # -- ISI surface -------------------------------------------------------------

    @property
    def native_language(self) -> str:
        return "SQL"

    @property
    def banner(self) -> str:
        return self._connection.banner

    def execute_native(self, query: str,
                       params: Optional[Sequence[Any]] = None) -> ResultSet:
        """Run raw SQL (the paper's 'directly using native query languages')."""
        cursor = self._connection.execute(query, params)
        columns = [d[0] for d in cursor.description] if cursor.description else []
        return ResultSet(columns=columns, rows=cursor.fetchall(),
                         rowcount=cursor.rowcount)

    def _run_binding(self, fn: ExportedFunction, args: list[Any]) -> Any:
        if not isinstance(fn.binding, SqlBinding):
            raise TranslationError(
                f"relational wrapper cannot run "
                f"{type(fn.binding).__name__} for {fn.name!r}")
        result = self.execute_native(fn.binding.sql, args)
        if fn.result_type in ("real", "int", "integer", "string", "date",
                              "boolean"):
            return result.scalar()
        return result

    # -- display helper (Figure 6 / §2.3) -------------------------------------------

    def generate_sql(self, type_name: str, function_name: str,
                     args: Sequence[Any]) -> str:
        """The SQL text an invocation translates to, with literals
        substituted in this source's dialect (for user display)."""
        exported = self.exported_type(type_name)
        fn = exported.function(function_name)
        if not isinstance(fn.binding, SqlBinding):
            raise TranslationError(
                f"{type_name}.{function_name} is not SQL-bound")
        sql = fn.binding.sql
        for value in args:
            literal = self._dialect.format_literal(value)
            if "?" not in sql:
                raise TranslationError(
                    f"binding for {fn.name!r} has fewer placeholders "
                    f"than arguments")
            sql = sql.replace("?", literal, 1)
        return sql

    @property
    def connection(self) -> Connection:
        """The underlying gateway connection."""
        return self._connection
