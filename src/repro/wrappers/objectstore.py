"""Wrapper for object-oriented sources (ObjectStore / Ontos).

The paper reaches its object stores two ways: C++ CORBA servers call
ObjectStore through **C++ method invocation**, and Java CORBA servers
call Ontos through **JNI**.  Both are direct in-process bindings rather
than a query protocol, modelled here by :class:`CallableBinding`
functions next to OQL-template bindings for declarative access.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import TranslationError
from repro.oodb.database import ObjectDatabase
from repro.wrappers.base import (CallableBinding, ExportedFunction,
                                 ExportedType, InformationSourceInterface,
                                 OqlBinding)


def _oql_literal(value: Any) -> str:
    """Render a Python value as an OQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


class ObjectDbWrapper(InformationSourceInterface):
    """ISI over an in-process object database.

    *binding_style* records which native path the paper used for this
    store: ``"c++"`` (Orbix → ObjectStore) or ``"jni"``
    (OrbixWeb → Ontos).  It is descriptive metadata — both run as direct
    calls — but it surfaces in :meth:`describe` so deployments can be
    checked against Figure 2.
    """

    def __init__(self, source_name: str, database: ObjectDatabase,
                 wrapper_name: Optional[str] = None,
                 binding_style: str = "c++",
                 exported_types: Optional[Sequence[ExportedType]] = None):
        self._database = database
        self.binding_style = binding_style
        if wrapper_name is None:
            wrapper_name = f"WebTassili{database.product}"
        super().__init__(source_name, wrapper_name, exported_types)

    @property
    def native_language(self) -> str:
        return "OQL"

    @property
    def banner(self) -> str:
        return self._database.banner

    @property
    def database(self) -> ObjectDatabase:
        """The wrapped object database."""
        return self._database

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["binding_style"] = self.binding_style
        return description

    def execute_native(self, query: str,
                       params: Optional[Sequence[Any]] = None) -> list[dict]:
        """Run an OQL query (no parameter protocol: OQL-as-shipped)."""
        if params:
            raise TranslationError(
                "the object wrapper does not support query parameters; "
                "substitute literals into the OQL text")
        return self._database.query(query)

    def _run_binding(self, fn: ExportedFunction, args: list[Any]) -> Any:
        binding = fn.binding
        if isinstance(binding, CallableBinding):
            return binding.function(self._database, *args)
        if isinstance(binding, OqlBinding):
            substitutions = {
                name: _oql_literal(value)
                for name, value in zip(binding.parameters, args)
            }
            try:
                oql = binding.oql.format(**substitutions)
            except KeyError as exc:
                raise TranslationError(
                    f"OQL binding for {fn.name!r} references unknown "
                    f"placeholder {exc}") from exc
            rows = self._database.query(oql)
            if fn.result_type in ("real", "int", "integer", "string", "date",
                                  "boolean"):
                if not rows:
                    return None
                first = rows[0]
                return next(iter(first.values())) if first else None
            return rows
        raise TranslationError(
            f"object wrapper cannot run {type(binding).__name__} "
            f"for {fn.name!r}")
