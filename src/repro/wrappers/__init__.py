"""Information Source Interfaces (wrappers) over native databases."""

from repro.wrappers.base import (CallableBinding, ExportedAttribute,
                                 ExportedFunction, ExportedType,
                                 InformationSourceInterface, OqlBinding,
                                 SqlBinding)
from repro.wrappers.objectstore import ObjectDbWrapper
from repro.wrappers.relational import RelationalWrapper
from repro.wrappers.remote import (ISI_INTERFACE, IsiServant, RemoteIsi,
                                   serve_isi)

__all__ = [
    "InformationSourceInterface", "ExportedType", "ExportedAttribute",
    "ExportedFunction", "SqlBinding", "OqlBinding", "CallableBinding",
    "RelationalWrapper", "ObjectDbWrapper",
    "IsiServant", "RemoteIsi", "serve_isi", "ISI_INTERFACE",
]
