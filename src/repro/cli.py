"""An interactive WebTassili shell over a deployed federation.

Run::

    python -m repro                 # healthcare testbed, QUT session
    python -m repro --home "Royal Brisbane Hospital"
    python -m repro --tcp           # same, over real TCP sockets

The shell accepts WebTassili statements plus a few meta-commands:

``\\tree``
    the Figure-4 information tree from the current entry point
``\\session``
    current home / coalition / entry point
``\\metrics``
    middleware counters so far
``\\health``
    circuit-breaker state per co-database (the degraded-space view);
    with ``--replicas N`` it also lists per-replica epoch, breaker
    state, and journal lag
``\\replicas [source]``
    replica availability of one source (or all): epoch, lag, journal
    length, restarts, durability; with ``--quorum`` also the lease
    holder, its fence epoch, and each replica's promised fence
``\\shards``
    consistent-hash ring and per-shard registry state; with
    ``--cache-tier`` also the shared cache tier's hit/invalidation
    counters (see ``docs/sharding.md``)
``\\home <database>``
    switch the session to another participating database
``\\help`` / ``\\quit``

``--deadline SECONDS`` bounds every discovery by a total time budget;
queries that run out of budget report the part of the information
space they could not explore instead of silently returning less.
``--replicas N`` deploys N co-database replica servants per source
(see ``docs/availability.md``).  ``--quorum`` turns the implicit
primary into majority-quorum writes under lease-fenced election, and
``--sync {never,batch,always}`` picks the journal's group-commit fsync
policy with ``--durable-dir`` (see ``docs/quorum.md``).
``--shards N`` splits the registry over N consistent-hash shards, each
exported on its own ORB endpoint, and ``--cache-tier`` adds the shared
metadata cache tier with epoch-floored invalidation broadcasts (see
``docs/sharding.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Optional

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.errors import ReproError

_BANNER = """WebFINDIT — WebTassili shell (healthcare federation: 14 databases,
5 coalitions, 9 service links over Orbix/OrbixWeb/VisiBroker)
Type WebTassili statements, \\help for meta-commands, \\quit to leave."""

_HELP = """Meta-commands:
  \\tree            information tree from the current entry point
  \\session         show session state
  \\metrics         middleware counters
  \\health          circuit-breaker state per co-database (and replica)
  \\replicas [name] replica availability: epoch, lag, journal, restarts
  \\shards          registry shard ring, per-shard state, cache tier
  \\home <name>     re-home the session at another database
  \\help            this text
  \\quit            exit

WebTassili statements (examples):
  Find Coalitions With Information Medical Research
  Find Sources With Information 'Medical Insurance' Structure (Funding)
  Connect To Coalition Research
  Display Instances of Class Research
  Display Documentation of Instance Royal Brisbane Hospital
  Display Access Information of Instance Royal Brisbane Hospital
  Invoke Funding Of Type ResearchProjects On 'Royal Brisbane Hospital'
      With ('AIDS and drugs')
  Query 'Royal Brisbane Hospital' Native 'select * from MedicalStudent'"""


class Shell:
    """The REPL: owns one deployment and one browser session."""

    def __init__(self, deployment, home_database: str,
                 output: Optional[IO[str]] = None):
        self.deployment = deployment
        self.output = output or sys.stdout
        self.browser = deployment.browser(home_database)

    def _print(self, text: str = "") -> None:
        print(text, file=self.output)

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the shell should
        exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("\\"):
            return self._meta(line)
        try:
            result = self.browser.submit(line)
            self._print(result.text)
        except ReproError as exc:
            self._print(f"error: {type(exc).__name__}: {exc}")
        return True

    def _meta(self, line: str) -> bool:
        command, __, argument = line[1:].partition(" ")
        command = command.lower()
        argument = argument.strip()
        if command in ("quit", "exit", "q"):
            return False
        if command == "help":
            self._print(_HELP)
        elif command == "tree":
            self._print(self.browser.information_tree())
        elif command == "session":
            session = self.browser.session
            self._print(f"home:      {session.home_database}")
            self._print(f"coalition: {session.current_coalition or '(none)'}")
            self._print(f"entry:     {session.metadata_source}")
        elif command == "metrics":
            metrics = self.deployment.system.metrics()
            self._print(f"GIOP messages: {metrics['giop_messages']}")
            self._print(f"bytes sent:    {metrics['giop_bytes_sent']}")
            for product, stats in metrics["orbs"].items():
                if stats["requests_handled"]:
                    self._print(f"  {product}: "
                                f"{stats['requests_handled']} handled, "
                                f"{stats['cross_product_requests']} "
                                f"cross-product")
        elif command == "health":
            snapshot = self.deployment.system.resilience.health.snapshot()
            if not snapshot:
                self._print("no co-database consulted yet "
                            "(all circuits closed)")
            for name in sorted(snapshot):
                stats = snapshot[name]
                self._print(
                    f"  {name}: {stats['state']}  "
                    f"({stats['successes']} ok, {stats['failures']} failed, "
                    f"{stats['trips']} trip(s), "
                    f"{stats['rejections']} rejected)")
            self._print_replicas(self.deployment.system.replica_status())
        elif command == "replicas":
            system = self.deployment.system
            try:
                status = (system.replica_status(argument) if argument
                          else system.replica_status())
            except ReproError as exc:
                self._print(f"error: {exc}")
                return True
            if argument:
                status = {argument: status}
            if not status:
                self._print("no replicated co-databases "
                            "(run with --replicas N)")
            self._print_replicas(status)
        elif command == "shards":
            report = self.deployment.system.shard_report()
            self._print(f"registry shards: {report['shards']} "
                        f"(naming generation "
                        f"{report['naming_generation']})")
            ring = report["ring"]
            if ring is not None:
                points = ", ".join(
                    f"shard{node}={count}"
                    for node, count in sorted(ring["points"].items()))
                self._print(f"ring: {ring['vnodes']} vnodes/shard "
                            f"({points})")
            for status in report["statuses"]:
                self._print(
                    f"  shard{status['shard']}: "
                    f"{status['sources']} source(s), "
                    f"{status['coalitions']} coalition(s), "
                    f"{status['service_links']} link(s), "
                    f"{status['update_operations']} update(s), "
                    f"mutation epoch {status['mutation_epoch']}")
            tier = report["cache_tier"]
            if tier is None:
                self._print("cache tier: (not deployed — run with "
                            "--cache-tier)")
            else:
                state = "up" if tier["alive"] else "DOWN"
                servant = tier["servant"] or {}
                cache = servant.get("cache", {})
                pending = sum(b["pending_floors"]
                              for b in tier["broadcasters"])
                self._print(
                    f"cache tier: {state}, "
                    f"{tier['restarts']} restart(s), "
                    f"{cache.get('hits', 0)} hit(s) / "
                    f"{cache.get('misses', 0)} miss(es), "
                    f"{servant.get('invalidation_batches', 0)} "
                    f"invalidation batch(es), "
                    f"{pending} pending floor(s)")
        elif command == "home":
            if not argument:
                self._print("usage: \\home <database name>")
            else:
                try:
                    self.browser = self.deployment.browser(argument)
                    self._print(f"session re-homed at {argument}")
                except ReproError as exc:
                    self._print(f"error: {exc}")
        else:
            self._print(f"unknown meta-command \\{command} (try \\help)")
        return True

    def _print_replicas(self, status: dict) -> None:
        """One line per replica: epoch, breaker, journal lag —
        plus the lease holder and fence epoch in quorum mode."""
        for name in sorted(status):
            entry = status[name]
            lease = entry.get("lease")
            if lease is not None:
                holder = lease["holder"] or "(none)"
                self._print(
                    f"  {name} (epoch {entry['epoch']}, quorum "
                    f"{lease['majority']}/{len(entry['replicas'])}, "
                    f"lease {holder} @ fence {lease['fence']}):")
            else:
                self._print(f"  {name} (epoch {entry['epoch']}):")
            for replica in entry["replicas"]:
                state = "up" if replica["alive"] else "DOWN"
                breaker = replica.get("breaker", "closed")
                durable = ", durable" if replica["durable"] else ""
                fence = ""
                if lease is not None:
                    fence = f", promised fence {replica['promised_fence']}"
                self._print(
                    f"    {replica['name']}: {state}, "
                    f"epoch {replica['epoch']} (lag {replica['lag']}), "
                    f"breaker {breaker}, "
                    f"journal {replica['journal_entries']} entr"
                    f"{'y' if replica['journal_entries'] == 1 else 'ies'}, "
                    f"{replica['restarts']} restart(s){fence}{durable}")

    def run(self, input_stream: Optional[IO[str]] = None,
            interactive: bool = True) -> None:
        """Read statements until EOF or ``\\quit``."""
        stream = input_stream or sys.stdin
        self._print(_BANNER)
        while True:
            if interactive:
                self.output.write("webtassili> ")
                self.output.flush()
            line = stream.readline()
            if not line:
                break
            if not interactive:
                self._print(f"webtassili> {line.rstrip()}")
            if not self.handle(line):
                break
        self._print("bye.")


def main(argv: Optional[list[str]] = None,
         input_stream: Optional[IO[str]] = None,
         output: Optional[IO[str]] = None) -> int:
    """CLI entry point (``python -m repro``)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="WebFINDIT WebTassili shell")
    parser.add_argument("--home", default=topo.QUT,
                        help="participating database the session belongs to")
    parser.add_argument("--tcp", action="store_true",
                        help="run the federation over real TCP sockets")
    parser.add_argument("--stripes", type=int, default=None,
                        help="with --tcp: enable GIOP request pipelining "
                             "with this many striped connections per "
                             "endpoint (see docs/pipelining.md)")
    parser.add_argument("--pipeline-depth", type=int, default=32,
                        help="with --tcp --stripes: max requests in "
                             "flight per pipelined connection "
                             "(default 32)")
    parser.add_argument("--transport-loop", action="store_true",
                        help="with --tcp: run the transport on the "
                             "selector event loop instead of threads "
                             "(see docs/event-loop.md)")
    parser.add_argument("--batch-flush", type=int, default=64 * 1024,
                        help="with --tcp --transport-loop: max bytes one "
                             "flush coalesces into a single send "
                             "(default 65536)")
    parser.add_argument("--accept-backlog", type=int, default=None,
                        help="with --tcp: listen(2) backlog per endpoint "
                             "(default: 64 threaded, 512 event loop)")
    parser.add_argument("--loop-workers", type=int, default=6,
                        help="with --tcp --transport-loop: servant "
                             "dispatch threads shared by all endpoints "
                             "(default 6)")
    parser.add_argument("--connection-workers", type=int, default=None,
                        help="with --tcp --stripes: dispatch threads per "
                             "pipelined connection (default: tracks "
                             "--pipeline-depth)")
    parser.add_argument("--shedding", action="store_true",
                        help="with --tcp: deadline-aware admission "
                             "control and load shedding on every "
                             "endpoint (see docs/overload.md)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="total time budget (seconds) for each "
                             "discovery; partial coverage is reported")
    parser.add_argument("--statement", "-s", action="append", default=[],
                        help="execute statement(s) and exit")
    parser.add_argument("--replicas", type=int, default=1,
                        help="co-database replica servants per source "
                             "(failover + crash recovery; default 1)")
    parser.add_argument("--durable-dir", default=None,
                        help="directory for on-disk replica journals and "
                             "snapshots (enables crash recovery across "
                             "runs)")
    parser.add_argument("--quorum", action="store_true",
                        help="majority-quorum writes under lease-fenced "
                             "primary election (see docs/quorum.md)")
    parser.add_argument("--sync", default="never",
                        choices=["never", "batch", "always"],
                        help="journal group-commit fsync policy with "
                             "--durable-dir (default: never)")
    parser.add_argument("--shards", type=int, default=1,
                        help="consistent-hash registry shards, each on "
                             "its own ORB endpoint (default 1; see "
                             "docs/sharding.md)")
    parser.add_argument("--cache-tier", action="store_true",
                        help="deploy the shared metadata cache tier "
                             "with epoch-floored invalidation "
                             "broadcasts")
    options = parser.parse_args(argv)

    transport = None
    if options.tcp:
        from repro.orb.overload import OverloadPolicy
        from repro.orb.transport import TcpTransport
        overload = OverloadPolicy(shed=True) if options.shedding else None
        tcp_kwargs = dict(pipeline_depth=options.pipeline_depth,
                          loop=options.transport_loop or None,
                          loop_workers=options.loop_workers,
                          batch_flush=options.batch_flush,
                          accept_backlog=options.accept_backlog,
                          connection_workers=options.connection_workers,
                          overload=overload)
        if options.stripes is not None:
            transport = TcpTransport(pipelined=True,
                                     stripes=options.stripes,
                                     **tcp_kwargs)
        else:
            # No explicit striping: let the transport watch demand and
            # promote busy endpoints to pipelining on its own.
            transport = TcpTransport(pipelined="auto", **tcp_kwargs)
    resilience = None
    if options.deadline is not None:
        from repro.core.resilience import ResiliencePolicy
        resilience = ResiliencePolicy(default_deadline=options.deadline)
    deployment = build_healthcare_system(transport=transport,
                                         resilience=resilience,
                                         replication_factor=options.replicas,
                                         durable_dir=options.durable_dir,
                                         quorum=options.quorum,
                                         journal_sync=options.sync,
                                         shards=options.shards,
                                         cache_tier=options.cache_tier)
    shell = Shell(deployment, options.home, output=output)
    try:
        if options.statement:
            for statement in options.statement:
                shell.handle(statement)
            return 0
        stream = input_stream or sys.stdin
        shell.run(stream, interactive=stream.isatty())
        return 0
    finally:
        if transport is not None:
            transport.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
