"""Flat broadcast discovery — the no-organization baseline.

This is what discovery looks like without WebFINDIT's two-level
organization: each source knows only its own advertisement, so locating
providers of a topic means contacting **every** source's metadata
service.  §2 of the paper argues this is what makes "the anarchic Web
enormously complex"; bench S1 quantifies it against coalition routing.

The directory supports the same cost accounting as
:class:`~repro.core.discovery.DiscoveryEngine` (sources contacted,
metadata calls) so the two are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import Ontology, SourceDescription, topic_score


@dataclass
class BroadcastResult:
    """Outcome of one broadcast resolution."""

    query: str
    matches: list[SourceDescription]
    sources_contacted: int
    metadata_calls: int

    @property
    def resolved(self) -> bool:
        return bool(self.matches)


class BroadcastDirectory:
    """A flat information space: every query fans out to all sources."""

    def __init__(self, ontology: Optional[Ontology] = None,
                 match_threshold: float = 0.5):
        self._ontology = ontology
        self._threshold = match_threshold
        self._sources: dict[str, SourceDescription] = {}
        #: Total metadata contacts across all queries (benchmarks).
        self.total_contacts = 0

    def register(self, description: SourceDescription) -> None:
        """Add one source to the flat space."""
        self._sources[description.name] = description

    def __len__(self) -> int:
        return len(self._sources)

    def discover(self, query: str) -> BroadcastResult:
        """Find sources advertising *query* by asking every one of them."""
        matches: list[tuple[float, SourceDescription]] = []
        contacted = 0
        for description in self._sources.values():
            contacted += 1  # one metadata round-trip per source
            score = topic_score(query, description.information_type,
                                self._ontology)
            if score >= self._threshold:
                matches.append((score, description))
        self.total_contacts += contacted
        matches.sort(key=lambda pair: (-pair[0], pair[1].name))
        return BroadcastResult(
            query=query,
            matches=[description for __, description in matches],
            sources_contacted=contacted,
            metadata_calls=contacted)
