"""Comparison baselines: broadcast discovery and global-schema integration."""

from repro.baselines.broadcast import BroadcastDirectory, BroadcastResult
from repro.baselines.global_schema import (GlobalSchemaMultidatabase,
                                           IntegrationReport, SchemaItem)

__all__ = ["BroadcastDirectory", "BroadcastResult",
           "GlobalSchemaMultidatabase", "IntegrationReport", "SchemaItem"]
