"""Centralized global-schema integration — the tightly-coupled baseline.

§6.1 of the paper: "Tightly-coupled approaches offer better solutions
for the heterogeneity problem by using a global schema.  However, this
scheme does not provide site autonomy nor does it scale-up given the
complexity when constructing the global schema for a large number of
heterogeneous systems."

:class:`GlobalSchemaMultidatabase` makes that complexity measurable.
Integrating a new source requires reconciling each of its schema items
against the *entire* existing global schema (conflict detection is
pairwise), so construction cost grows quadratically with the federation
while query cost stays flat.  Bench S3 plots exactly this trade-off
against WebFINDIT's incremental coalition joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import Ontology, SourceDescription, topic_score, topic_words
from repro.errors import WebFinditError


@dataclass(frozen=True)
class SchemaItem:
    """One exported schema element (a table or type) of a source."""

    source: str
    name: str
    topic: str


@dataclass
class IntegrationReport:
    """Cost accounting for one source integration."""

    source: str
    items_added: int
    comparisons: int
    conflicts_resolved: int


class GlobalSchemaMultidatabase:
    """A single integrated schema over all member databases."""

    def __init__(self, ontology: Optional[Ontology] = None):
        self._ontology = ontology
        self._items: list[SchemaItem] = []
        self._sources: dict[str, SourceDescription] = {}
        #: Cumulative pairwise comparisons performed by the integrator.
        self.total_comparisons = 0
        #: Cumulative naming/semantic conflicts the administrator resolved.
        self.total_conflicts = 0

    # -- construction ---------------------------------------------------------

    def integrate_source(self, description: SourceDescription,
                         schema_items: list[str]) -> IntegrationReport:
        """Add a source: every new item is reconciled against the whole
        existing global schema (the centralized administrator's job)."""
        if description.name in self._sources:
            raise WebFinditError(
                f"source {description.name!r} already integrated")
        comparisons = 0
        conflicts = 0
        new_items: list[SchemaItem] = []
        for item_name in schema_items:
            candidate = SchemaItem(source=description.name, name=item_name,
                                   topic=description.information_type)
            for existing in self._items:
                comparisons += 1
                if self._conflicts(candidate, existing):
                    conflicts += 1
            new_items.append(candidate)
        self._items.extend(new_items)
        self._sources[description.name] = description
        self.total_comparisons += comparisons
        self.total_conflicts += conflicts
        return IntegrationReport(source=description.name,
                                 items_added=len(new_items),
                                 comparisons=comparisons,
                                 conflicts_resolved=conflicts)

    def remove_source(self, name: str) -> None:
        """Removing a member forces a consistency sweep of what remains."""
        if name not in self._sources:
            raise WebFinditError(f"source {name!r} not integrated")
        del self._sources[name]
        survivors = [item for item in self._items if item.source != name]
        # The administrator re-checks remaining items for views that
        # depended on the departed source.
        self.total_comparisons += len(survivors)
        self._items = survivors

    @staticmethod
    def _conflicts(a: SchemaItem, b: SchemaItem) -> bool:
        """Same item name exported by different sources = a naming
        conflict the integrator must resolve."""
        return a.name.lower() == b.name.lower() and a.source != b.source

    # -- querying -----------------------------------------------------------------

    def discover(self, query: str,
                 match_threshold: float = 0.5) -> list[SourceDescription]:
        """Query the integrated schema: one lookup, no fan-out —
        centralization's one genuine advantage."""
        matches: list[tuple[float, SourceDescription]] = []
        query_set = topic_words(query)
        if not query_set:
            return []
        for description in self._sources.values():
            score = topic_score(query, description.information_type,
                                self._ontology)
            if score >= match_threshold:
                matches.append((score, description))
        matches.sort(key=lambda pair: (-pair[0], pair[1].name))
        return [description for __, description in matches]

    # -- stats ----------------------------------------------------------------------

    @property
    def item_count(self) -> int:
        return len(self._items)

    @property
    def source_count(self) -> int:
        return len(self._sources)
