"""Schema objects: columns, table schemas, and the database catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import CatalogError, SqlTypeError
from repro.sql.types import TYPE_SYNONYMS, SqlType


@dataclass
class Column:
    """One column of a table schema."""

    name: str
    sql_type: SqlType
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Any = None

    @classmethod
    def from_type_name(cls, name: str, type_name: str, **flags: Any) -> "Column":
        """Build a column from a SQL type spelling such as ``VARCHAR``."""
        sql_type = TYPE_SYNONYMS.get(type_name.upper())
        if sql_type is None:
            raise SqlTypeError(f"unknown column type: {type_name}")
        return cls(name=name, sql_type=sql_type, **flags)


@dataclass
class TableSchema:
    """The schema of one table: ordered columns plus key information."""

    name: str
    columns: list[Column]
    primary_key: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(lowered)
        inline_pk = [c.name for c in self.columns if c.primary_key]
        if inline_pk and self.primary_key:
            raise CatalogError(
                f"table {self.name!r} declares both inline and table-level primary keys")
        if inline_pk:
            self.primary_key = inline_pk
        for key_column in self.primary_key:
            column = self.find_column(key_column)
            if column is None:
                raise CatalogError(
                    f"primary key column {key_column!r} not in table {self.name!r}")
            column.not_null = True

    @property
    def column_names(self) -> list[str]:
        """Ordered column names."""
        return [column.name for column in self.columns]

    def find_column(self, name: str) -> Optional[Column]:
        """Case-insensitive column lookup; None when absent."""
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        return None

    def column_index(self, name: str) -> int:
        """Ordinal position of *name*, raising :class:`CatalogError` when absent."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError(f"no column {name!r} in table {self.name!r}")


@dataclass
class IndexDef:
    """Metadata for a secondary index."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False


class Catalog:
    """Name -> schema mapping for one database.

    All lookups are case-insensitive, matching common SQL engines.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._indexes: dict[str, IndexDef] = {}

    # -- tables -------------------------------------------------------------

    def add_table(self, schema: TableSchema) -> None:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> TableSchema:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table {name!r}")
        for index_name in [n for n, d in self._indexes.items()
                           if d.table.lower() == key]:
            del self._indexes[index_name]
        return self._tables.pop(key)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> TableSchema:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table {name!r}")
        return self._tables[key]

    def table_names(self) -> list[str]:
        """Declared table names, in creation order."""
        return [schema.name for schema in self._tables.values()]

    # -- indexes ------------------------------------------------------------

    def add_index(self, index: IndexDef) -> None:
        key = index.name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        table = self.table(index.table)
        for column in index.columns:
            if table.find_column(column) is None:
                raise CatalogError(
                    f"index column {column!r} not in table {index.table!r}")
        self._indexes[key] = index

    def drop_index(self, name: str) -> IndexDef:
        key = name.lower()
        if key not in self._indexes:
            raise CatalogError(f"no index {name!r}")
        return self._indexes.pop(key)

    def indexes_for(self, table: str) -> list[IndexDef]:
        lowered = table.lower()
        return [d for d in self._indexes.values() if d.table.lower() == lowered]

    def index(self, name: str) -> IndexDef:
        key = name.lower()
        if key not in self._indexes:
            raise CatalogError(f"no index {name!r}")
        return self._indexes[key]
