"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees.

Grammar (informal)::

    statement   := select | insert | update | delete | create_table
                 | drop_table | create_view | drop_view | create_index
                 | drop_index | begin | commit | rollback
                 | EXPLAIN statement
    select      := select_core (UNION [ALL] select_core)*
                   [ORDER BY ...] [LIMIT ... [OFFSET ...]]
    expression  := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive [comparison | IS | IN | LIKE | BETWEEN]
    additive    := multiplicative ((+|-|'||') multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary       := (-|+) unary | primary
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}
_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Parser:
    """Parses one or more SQL statements from a token stream."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0
        self._param_count = 0

    # -- public entry points -------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement (a trailing ``;`` is allowed)."""
        statement = self._statement()
        self._accept_punct(";")
        self._expect(TokenType.EOF)
        return statement

    def parse_script(self) -> list[ast.Statement]:
        """Parse a ``;``-separated sequence of statements."""
        statements: list[ast.Statement] = []
        while not self._check(TokenType.EOF):
            statements.append(self._statement())
            if not self._accept_punct(";"):
                break
        self._expect(TokenType.EOF)
        return statements

    # -- token helpers ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, value=None) -> bool:
        return self._peek().matches(token_type, value)

    def _accept(self, token_type: TokenType, value=None) -> Optional[Token]:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in keywords:
            self._advance()
            return token.value
        return None

    def _accept_punct(self, punct: str) -> bool:
        return self._accept(TokenType.PUNCT, punct) is not None

    def _accept_operator(self, op: str) -> bool:
        return self._accept(TokenType.OPERATOR, op) is not None

    def _expect(self, token_type: TokenType, value=None) -> Token:
        token = self._peek()
        if not token.matches(token_type, value):
            wanted = value if value is not None else token_type.name
            raise SqlSyntaxError(
                f"expected {wanted}, found {token.value!r}", token.line, token.column)
        return self._advance()

    def _expect_keyword(self, keyword: str) -> None:
        self._expect(TokenType.KEYWORD, keyword)

    def _expect_punct(self, punct: str) -> None:
        self._expect(TokenType.PUNCT, punct)

    def _expect_name(self) -> str:
        """Accept an identifier, or a keyword used as a name (e.g. a column
        called ``key``).  Aggregate keywords are allowed as plain names too."""
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            self._advance()
            return token.value.lower()
        raise SqlSyntaxError(
            f"expected identifier, found {token.value!r}", token.line, token.column)

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(message, token.line, token.column)

    # -- statements ------------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            raise self._error(f"expected a statement, found {token.value!r}")
        keyword = token.value
        if keyword == "EXPLAIN":
            self._advance()
            return ast.Explain(self._statement())
        if keyword == "SELECT":
            return self._select_statement()
        if keyword == "INSERT":
            return self._insert()
        if keyword == "UPDATE":
            return self._update()
        if keyword == "DELETE":
            return self._delete()
        if keyword == "CREATE":
            return self._create()
        if keyword == "ALTER":
            return self._alter()
        if keyword == "DROP":
            return self._drop()
        if keyword == "BEGIN":
            self._advance()
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.BeginTransaction()
        if keyword == "COMMIT":
            self._advance()
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.Commit()
        if keyword == "ROLLBACK":
            self._advance()
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.Rollback()
        raise self._error(f"unsupported statement: {keyword}")

    # -- SELECT -----------------------------------------------------------------

    def _select_statement(self) -> ast.Statement:
        left: ast.Statement = self._select_core()
        while self._accept_keyword("UNION"):
            is_all = self._accept_keyword("ALL") is not None
            right = self._select_core()
            left = ast.Union(left=left, right=right, all=is_all)
        # Trailing ORDER BY / LIMIT binds to the whole union, or to the
        # single SELECT when there is no union.
        order_by = self._order_by_clause()
        limit, offset = self._limit_clause()
        if isinstance(left, ast.Union):
            left.order_by = order_by
            left.limit = limit
        else:
            assert isinstance(left, ast.Select)
            if order_by:
                left.order_by = order_by
            if limit is not None:
                left.limit = limit
            if offset is not None:
                left.offset = offset
        return left

    def _select_core(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        from_item = None
        if self._accept_keyword("FROM"):
            from_item = self._from_clause()
        where = self._expression() if self._accept_keyword("WHERE") else None
        group_by: list[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expression())
            while self._accept_punct(","):
                group_by.append(self._expression())
        having = self._expression() if self._accept_keyword("HAVING") else None
        return ast.Select(
            items=items, from_item=from_item, where=where,
            group_by=group_by, having=having, distinct=distinct)

    def _select_item(self) -> ast.SelectItem:
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # table.* form
        if (self._peek().type is TokenType.IDENTIFIER
                and self._peek(1).matches(TokenType.PUNCT, ".")
                and self._peek(2).matches(TokenType.OPERATOR, "*")):
            table = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(table=table))
        expression = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _order_by_clause(self) -> list[ast.OrderItem]:
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        items = [self._order_item()]
        while self._accept_punct(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        expression = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expression, ascending)

    def _limit_clause(self) -> tuple[Optional[ast.Expression], Optional[ast.Expression]]:
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._expression()
            if self._accept_keyword("OFFSET"):
                offset = self._expression()
        return limit, offset

    # -- FROM -----------------------------------------------------------------

    def _from_clause(self) -> ast.FromItem:
        item = self._join_chain()
        while self._accept_punct(","):
            right = self._join_chain()
            item = ast.Join(kind="CROSS", left=item, right=right)
        return item

    def _join_chain(self) -> ast.FromItem:
        left = self._from_primary()
        while True:
            kind = self._join_kind()
            if kind is None:
                return left
            right = self._from_primary()
            condition = None
            using = None
            if kind != "CROSS":
                if self._accept_keyword("ON"):
                    condition = self._expression()
                elif self._accept_keyword("USING"):
                    self._expect_punct("(")
                    using = [self._expect_name()]
                    while self._accept_punct(","):
                        using.append(self._expect_name())
                    self._expect_punct(")")
                else:
                    raise self._error(f"{kind} JOIN requires ON or USING")
            left = ast.Join(kind=kind, left=left, right=right,
                            condition=condition, using=using)

    def _join_kind(self) -> Optional[str]:
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "CROSS"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "INNER"
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "LEFT"
        if self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "RIGHT"
        if self._accept_keyword("JOIN"):
            return "INNER"
        return None

    def _from_primary(self) -> ast.FromItem:
        if self._accept_punct("("):
            if self._check(TokenType.KEYWORD, "SELECT"):
                subquery = self._select_core()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._expect_name()
                return ast.SubqueryRef(subquery, alias)
            item = self._from_clause()
            self._expect_punct(")")
            return item
        name = self._expect_name()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    # -- DML -------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_name()
        columns: Optional[list[str]] = None
        if self._accept_punct("("):
            columns = [self._expect_name()]
            while self._accept_punct(","):
                columns.append(self._expect_name())
            self._expect_punct(")")
        if self._accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self._accept_punct(","):
                rows.append(self._value_row())
            return ast.Insert(table=table, columns=columns, rows=rows)
        if self._check(TokenType.KEYWORD, "SELECT"):
            select = self._select_statement()
            return ast.Insert(table=table, columns=columns, select=select)
        raise self._error("expected VALUES or SELECT in INSERT")

    def _value_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        row = [self._expression()]
        while self._accept_punct(","):
            row.append(self._expression())
        self._expect_punct(")")
        return row

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_name()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def _assignment(self) -> ast.Assignment:
        column = self._expect_name()
        self._expect(TokenType.OPERATOR, "=")
        return ast.Assignment(column, self._expression())

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    # -- DDL -------------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._create_table()
        if self._accept_keyword("VIEW"):
            name = self._expect_name()
            self._expect_keyword("AS")
            select = self._select_statement()
            return ast.CreateView(name=name, select=select)
        unique = self._accept_keyword("UNIQUE") is not None
        if self._accept_keyword("INDEX"):
            return self._create_index(unique)
        raise self._error(
            "expected TABLE, VIEW, or [UNIQUE] INDEX after CREATE")

    def _alter(self) -> ast.Statement:
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        table = self._expect_name()
        self._expect_keyword("ADD")
        self._accept_keyword("COLUMN")
        column = self._column_def()
        return ast.AlterTableAddColumn(table=table, column=column)

    def _create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_name()
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        table_pk: list[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                table_pk.append(self._expect_name())
                while self._accept_punct(","):
                    table_pk.append(self._expect_name())
                self._expect_punct(")")
            else:
                columns.append(self._column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name=name, columns=columns,
                               if_not_exists=if_not_exists, primary_key=table_pk)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_name()
        type_name = self._expect_name().upper()
        # optional length/precision: VARCHAR(40), DECIMAL(8, 2)
        if self._accept_punct("("):
            self._expect(TokenType.INTEGER)
            if self._accept_punct(","):
                self._expect(TokenType.INTEGER)
            self._expect_punct(")")
        column = ast.ColumnDef(name=name, type_name=type_name)
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("NULL"):
                pass  # explicit nullable, the default
            elif self._accept_keyword("DEFAULT"):
                column.default = self._primary()
            else:
                break
        return column

    def _create_index(self, unique: bool) -> ast.CreateIndex:
        name = self._expect_name()
        self._expect_keyword("ON")
        table = self._expect_name()
        self._expect_punct("(")
        columns = [self._expect_name()]
        while self._accept_punct(","):
            columns.append(self._expect_name())
        self._expect_punct(")")
        return ast.CreateIndex(name=name, table=table, columns=columns, unique=unique)

    def _drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            if_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("EXISTS")
                if_exists = True
            return ast.DropTable(self._expect_name(), if_exists)
        if self._accept_keyword("VIEW"):
            if_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("EXISTS")
                if_exists = True
            return ast.DropView(self._expect_name(), if_exists)
        if self._accept_keyword("INDEX"):
            return ast.DropIndex(self._expect_name())
        raise self._error("expected TABLE, VIEW, or INDEX after DROP")

    # -- expressions -------------------------------------------------------------

    def _expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.Unary("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.Binary(op, left, self._additive())
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = self._accept_keyword("NOT") is not None
        if self._accept_keyword("IN"):
            return self._in_tail(left, negated)
        if self._accept_keyword("LIKE"):
            return ast.Like(left, self._additive(), negated)
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if negated:
            raise self._error("expected IN, LIKE, or BETWEEN after NOT")
        return left

    def _in_tail(self, left: ast.Expression, negated: bool) -> ast.Expression:
        self._expect_punct("(")
        if self._check(TokenType.KEYWORD, "SELECT"):
            subquery = self._select_core()
            self._expect_punct(")")
            return ast.InSubquery(left, subquery, negated)
        items = [self._expression()]
        while self._accept_punct(","):
            items.append(self._expression())
        self._expect_punct(")")
        return ast.InList(left, items, negated)

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                op = self._advance().value
                left = ast.Binary(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = self._advance().value
                left = ast.Binary(op, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.Unary("-", self._unary())
        if self._accept_operator("+"):
            return ast.Unary("+", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.INTEGER or token.type is TokenType.REAL:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAM:
            self._advance()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if token.type is TokenType.KEYWORD:
            return self._keyword_primary(token)
        if token.type is TokenType.IDENTIFIER:
            return self._identifier_primary()
        if self._accept_punct("("):
            if self._check(TokenType.KEYWORD, "SELECT"):
                subquery = self._select_core()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expression = self._expression()
            self._expect_punct(")")
            return expression
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _keyword_primary(self, token: Token) -> ast.Expression:
        keyword = token.value
        if keyword == "NULL":
            self._advance()
            return ast.Literal(None)
        if keyword == "TRUE":
            self._advance()
            return ast.Literal(True)
        if keyword == "FALSE":
            self._advance()
            return ast.Literal(False)
        if keyword in _AGGREGATES:
            self._advance()
            return self._call_tail(keyword)
        if keyword == "CASE":
            return self._case()
        if keyword == "EXISTS":
            self._advance()
            self._expect_punct("(")
            subquery = self._select_core()
            self._expect_punct(")")
            return ast.Exists(subquery)
        if keyword == "CAST":
            self._advance()
            self._expect_punct("(")
            operand = self._expression()
            self._expect_keyword("AS")
            type_name = self._expect_name().upper()
            if self._accept_punct("("):
                self._expect(TokenType.INTEGER)
                if self._accept_punct(","):
                    self._expect(TokenType.INTEGER)
                self._expect_punct(")")
            self._expect_punct(")")
            return ast.Cast(operand, type_name)
        raise self._error(f"unexpected keyword {keyword!r} in expression")

    def _identifier_primary(self) -> ast.Expression:
        name = self._advance().value
        if self._check(TokenType.PUNCT, "("):
            return self._call_tail(name)
        if self._accept_punct("."):
            column = self._expect_name()
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    def _call_tail(self, name: str) -> ast.FunctionCall:
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT") is not None
        args: list[ast.Expression] = []
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            args.append(ast.Star())
        elif not self._check(TokenType.PUNCT, ")"):
            args.append(self._expression())
            while self._accept_punct(","):
                args.append(self._expression())
        self._expect_punct(")")
        return ast.FunctionCall(name=name.upper(), args=args, distinct=distinct)

    def _case(self) -> ast.Case:
        self._expect_keyword("CASE")
        operand = None
        if not self._check(TokenType.KEYWORD, "WHEN"):
            operand = self._expression()
        whens: list[ast.CaseWhen] = []
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            whens.append(ast.CaseWhen(condition, self._expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN arm")
        default = self._expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.Case(operand=operand, whens=whens, default=default)


def parse(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(text).parse_statement()


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ``;``-separated list of SQL statements."""
    return Parser(text).parse_script()
