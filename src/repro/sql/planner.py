"""Access-path planning for the relational engine.

The planner turns a FROM clause plus WHERE predicate into a tree of row
sources.  It performs two classic optimizations:

* **index lookup** — an equality conjunct ``col = <expr>`` on a base
  table with a matching hash index becomes an :class:`IndexLookup`
  instead of a full scan (the remaining conjuncts stay as a residual
  filter);
* **hash join** — an INNER or LEFT join whose condition is a pure
  conjunction of cross-side equalities becomes a :class:`HashJoin`
  instead of a nested loop.

Everything else — projection, grouping, ordering — is handled by the
executor directly from the AST; the planner's job ends at "which rows,
from where".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SqlError
from repro.sql import ast


class RowSource:
    """Base class for planned row sources."""


@dataclass
class TableScan(RowSource):
    """Full scan of a base table."""

    table: str
    binding: str


@dataclass
class IndexLookup(RowSource):
    """Equality probe into a hash index of a base table."""

    table: str
    binding: str
    columns: list[str]
    keys: list[ast.Expression]


@dataclass
class DerivedTable(RowSource):
    """A subquery in FROM, materialized under an alias."""

    select: ast.Select
    binding: str


@dataclass
class NestedLoopJoin(RowSource):
    """General join; *kind* in INNER/LEFT/RIGHT/CROSS."""

    kind: str
    left: RowSource
    right: RowSource
    condition: Optional[ast.Expression] = None
    using: Optional[list[str]] = None


@dataclass
class HashJoin(RowSource):
    """Equi-join executed by building a hash table on the right side."""

    kind: str  # INNER or LEFT
    left: RowSource
    right: RowSource
    left_keys: list[ast.Expression] = field(default_factory=list)
    right_keys: list[ast.Expression] = field(default_factory=list)


@dataclass
class FilteredSource(RowSource):
    """A row source with a residual predicate applied on top."""

    child: RowSource
    predicate: ast.Expression


@dataclass
class AccessPlan:
    """The planner's output: a row-source tree plus the predicate part
    it could not push into an access path."""

    source: Optional[RowSource]
    residual_where: Optional[ast.Expression]
    used_index: bool = False


def split_conjuncts(expression: Optional[ast.Expression]) -> list[ast.Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.Binary) and expression.op == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def join_conjuncts(conjuncts: list[ast.Expression]) -> Optional[ast.Expression]:
    """Rebuild a predicate from conjuncts (None when empty)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.Binary("AND", result, conjunct)
    return result


def _column_sides(expression: ast.Expression) -> set[Optional[str]]:
    """Set of table qualifiers referenced by *expression* (None = bare)."""
    tables: set[Optional[str]] = set()

    def walk(node) -> None:
        if isinstance(node, ast.ColumnRef):
            tables.add(node.table)
        elif isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, (ast.IsNull, ast.Like, ast.Between, ast.InList)):
            walk(node.operand)

    walk(expression)
    return tables


def _references_only(expression: ast.Expression, bindings: set[str]) -> bool:
    """True when every column in *expression* resolves inside *bindings*
    and no subquery is involved (safe to evaluate early)."""
    ok = True

    def walk(node) -> None:
        nonlocal ok
        if not ok or node is None:
            return
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            ok = False
        elif isinstance(node, ast.ColumnRef):
            if node.table is not None and node.table.lower() not in bindings:
                ok = False
        elif isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.Case):
            walk(node.operand)
            for when in node.whens:
                walk(when.condition)
                walk(when.result)
            walk(node.default)

    walk(expression)
    return ok


def _is_constantish(expression: ast.Expression) -> bool:
    """True for expressions the executor may evaluate before scanning:
    literals, params, and arithmetic over them."""
    if isinstance(expression, (ast.Literal, ast.Param)):
        return True
    if isinstance(expression, ast.Unary):
        return _is_constantish(expression.operand)
    if isinstance(expression, ast.Binary):
        return _is_constantish(expression.left) and _is_constantish(expression.right)
    return False


class Planner:
    """Plans access paths against a storage lookup interface.

    *storage* must expose ``table_for(name)`` returning an object with a
    ``schema`` and ``index_on(columns)`` (see :class:`repro.sql.storage.Table`),
    or raise; it is typically the engine itself.
    """

    def __init__(self, storage):
        self._storage = storage

    def plan(self, select: ast.Select) -> AccessPlan:
        """Plan the FROM/WHERE portion of one SELECT block."""
        if select.from_item is None:
            return AccessPlan(source=None, residual_where=select.where)
        source = self._plan_from(select.from_item)
        conjuncts = split_conjuncts(select.where)
        source, conjuncts, used_index = self._try_index_access(source, conjuncts)
        return AccessPlan(source=source,
                          residual_where=join_conjuncts(conjuncts),
                          used_index=used_index)

    # -- FROM tree -------------------------------------------------------------

    def _plan_from(self, item: ast.FromItem) -> RowSource:
        if isinstance(item, ast.TableRef):
            view_select = getattr(self._storage, "view_select", None)
            if view_select is not None:
                select = view_select(item.name)
                if select is not None:
                    return DerivedTable(select=select, binding=item.binding)
            return TableScan(table=item.name, binding=item.binding)
        if isinstance(item, ast.SubqueryRef):
            return DerivedTable(select=item.subquery, binding=item.alias)
        if isinstance(item, ast.Join):
            left = self._plan_from(item.left)
            right = self._plan_from(item.right)
            return self._plan_join(item, left, right)
        raise SqlError(f"unsupported FROM item: {type(item).__name__}")

    def _plan_join(self, join: ast.Join, left: RowSource,
                   right: RowSource) -> RowSource:
        if join.using is not None:
            # USING is rewritten by the executor into an ON condition once
            # headers are known; keep it as a nested loop join here.
            return NestedLoopJoin(kind=join.kind, left=left, right=right,
                                  using=join.using)
        if join.kind in ("INNER", "LEFT") and join.condition is not None:
            keys = self._equi_keys(join, left, right)
            if keys is not None:
                left_keys, right_keys = keys
                return HashJoin(kind=join.kind, left=left, right=right,
                                left_keys=left_keys, right_keys=right_keys)
        return NestedLoopJoin(kind=join.kind, left=left, right=right,
                              condition=join.condition)

    def _equi_keys(self, join: ast.Join, left: RowSource, right: RowSource):
        """If the join condition is a conjunction of ``l.col = r.col``
        equalities with one side per operand, return (left_keys, right_keys)."""
        left_bindings = _bindings_of(left)
        right_bindings = _bindings_of(right)
        left_keys: list[ast.Expression] = []
        right_keys: list[ast.Expression] = []
        for conjunct in split_conjuncts(join.condition):
            if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
                return None
            a, b = conjunct.left, conjunct.right
            if _references_only(a, left_bindings) and _references_only(b, right_bindings) \
                    and _sided(a, left_bindings) and _sided(b, right_bindings):
                left_keys.append(a)
                right_keys.append(b)
            elif _references_only(b, left_bindings) and _references_only(a, right_bindings) \
                    and _sided(b, left_bindings) and _sided(a, right_bindings):
                left_keys.append(b)
                right_keys.append(a)
            else:
                return None
        if not left_keys:
            return None
        return left_keys, right_keys

    # -- index selection -----------------------------------------------------

    def _try_index_access(self, source: RowSource,
                          conjuncts: list[ast.Expression]
                          ) -> tuple[RowSource, list[ast.Expression], bool]:
        """Replace a bare TableScan with an IndexLookup when a conjunct
        ``binding.col = constant`` matches an existing index."""
        if not isinstance(source, TableScan):
            return source, conjuncts, False
        try:
            table = self._storage.table_for(source.table)
        except Exception:
            return source, conjuncts, False
        for position, conjunct in enumerate(conjuncts):
            match = self._index_match(source, table, conjunct)
            if match is not None:
                columns, key = match
                remaining = conjuncts[:position] + conjuncts[position + 1:]
                lookup = IndexLookup(table=source.table, binding=source.binding,
                                     columns=columns, keys=[key])
                return lookup, remaining, True
        return source, conjuncts, False

    def _index_match(self, source: TableScan, table, conjunct: ast.Expression):
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            return None
        for column_side, key_side in ((conjunct.left, conjunct.right),
                                      (conjunct.right, conjunct.left)):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if column_side.table is not None and \
                    column_side.table.lower() != source.binding.lower():
                continue
            if table.schema.find_column(column_side.name) is None:
                continue
            if not _is_constantish(key_side):
                continue
            if table.index_on([column_side.name]) is not None:
                return [column_side.name], key_side
        return None


def _bindings_of(source: RowSource) -> set[str]:
    """All table bindings appearing in a planned subtree (lower-cased)."""
    if isinstance(source, (TableScan, IndexLookup)):
        return {source.binding.lower()}
    if isinstance(source, DerivedTable):
        return {source.binding.lower()}
    if isinstance(source, (NestedLoopJoin, HashJoin)):
        return _bindings_of(source.left) | _bindings_of(source.right)
    if isinstance(source, FilteredSource):
        return _bindings_of(source.child)
    return set()


def _sided(expression: ast.Expression, bindings: set[str]) -> bool:
    """True when *expression* references at least one column and every
    reference is qualified with a table from *bindings* — used to orient
    equi-join keys.  Bare (unqualified) references disqualify the pair, so
    ambiguous conditions fall back to the always-correct nested loop."""
    tables = _column_sides(expression)
    return bool(tables) and all(t is not None and t.lower() in bindings
                                for t in tables)
