"""In-memory row storage with hash indexes.

A :class:`Table` stores rows keyed by a monotonically increasing row id,
so updates and deletes can address rows stably while scans iterate in
insertion order.  :class:`HashIndex` maps a key tuple to the set of row
ids carrying that key; unique indexes enforce single occupancy.

Storage is deliberately value-based (every row is a plain ``list``),
which keeps snapshot/rollback support simple: a snapshot deep-copies the
row map, and rollback swaps it back.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.errors import IntegrityError
from repro.sql.catalog import TableSchema
from repro.sql.types import coerce

Row = list[Any]


class HashIndex:
    """An equality index over one or more columns of a table."""

    def __init__(self, name: str, column_positions: list[int], unique: bool = False):
        self.name = name
        self.column_positions = column_positions
        self.unique = unique
        self._entries: dict[tuple, set[int]] = {}

    def key_for(self, row: Row) -> tuple:
        """Extract this index's key tuple from *row*."""
        return tuple(row[position] for position in self.column_positions)

    def insert(self, row_id: int, row: Row) -> None:
        key = self.key_for(row)
        if None in key:
            return  # NULL keys are not indexed (SQL semantics)
        bucket = self._entries.setdefault(key, set())
        if self.unique and bucket and row_id not in bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated for key {key!r}")
        bucket.add(row_id)

    def remove(self, row_id: int, row: Row) -> None:
        key = self.key_for(row)
        if None in key:
            return
        bucket = self._entries.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._entries[key]

    def lookup(self, key: tuple) -> frozenset[int]:
        """Row ids whose indexed columns equal *key* (empty when none)."""
        return frozenset(self._entries.get(key, frozenset()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


class Table:
    """Rows of one table plus its indexes.

    The table owns an implicit primary-key index when the schema declares
    one, enforcing key uniqueness on insert and update.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, Row] = {}
        self._next_row_id = 1
        self._indexes: dict[str, HashIndex] = {}
        if schema.primary_key:
            positions = [schema.column_index(c) for c in schema.primary_key]
            self._indexes["__pk__"] = HashIndex("__pk__", positions, unique=True)
        for column in schema.columns:
            if column.unique and not column.primary_key:
                position = schema.column_index(column.name)
                index_name = f"__unique_{column.name.lower()}__"
                self._indexes[index_name] = HashIndex(index_name, [position], unique=True)

    # -- row lifecycle --------------------------------------------------------

    def _validate(self, row: Row) -> Row:
        """Coerce to column types and enforce NOT NULL."""
        validated: Row = []
        for column, value in zip(self.schema.columns, row):
            coerced = coerce(value, column.sql_type)
            if coerced is None and column.not_null:
                raise IntegrityError(
                    f"column {column.name!r} of table {self.schema.name!r} is NOT NULL")
            validated.append(coerced)
        return validated

    def insert(self, values: Iterable[Any]) -> int:
        """Insert one full-width row; returns the new row id."""
        row = list(values)
        if len(row) != len(self.schema.columns):
            raise IntegrityError(
                f"table {self.schema.name!r} has {len(self.schema.columns)} "
                f"columns but {len(row)} values were supplied")
        row = self._validate(row)
        row_id = self._next_row_id
        inserted: list[HashIndex] = []
        try:
            for index in self._indexes.values():
                index.insert(row_id, row)
                inserted.append(index)
        except IntegrityError:
            for index in inserted:
                index.remove(row_id, row)
            raise
        self._rows[row_id] = row
        self._next_row_id += 1
        return row_id

    def update(self, row_id: int, new_row: Row) -> None:
        """Replace the row at *row_id* with *new_row* (already full-width)."""
        old_row = self._rows[row_id]
        new_row = self._validate(list(new_row))
        for index in self._indexes.values():
            index.remove(row_id, old_row)
        touched: list[HashIndex] = []
        try:
            for index in self._indexes.values():
                index.insert(row_id, new_row)
                touched.append(index)
        except IntegrityError:
            for index in touched:
                index.remove(row_id, new_row)
            for index in self._indexes.values():
                index.insert(row_id, old_row)
            raise
        self._rows[row_id] = new_row

    def delete(self, row_id: int) -> None:
        row = self._rows.pop(row_id)
        for index in self._indexes.values():
            index.remove(row_id, row)

    def row(self, row_id: int) -> Row:
        return self._rows[row_id]

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Iterate (row_id, row) pairs in insertion order."""
        yield from list(self._rows.items())

    def __len__(self) -> int:
        return len(self._rows)

    # -- indexes ----------------------------------------------------------------

    def add_index(self, name: str, columns: list[str], unique: bool = False) -> None:
        positions = [self.schema.column_index(column) for column in columns]
        index = HashIndex(name, positions, unique)
        for row_id, row in self._rows.items():
            index.insert(row_id, row)
        self._indexes[name] = index

    def drop_index(self, name: str) -> None:
        self._indexes.pop(name, None)

    def index_on(self, columns: list[str]) -> Optional[HashIndex]:
        """An index whose key is exactly *columns* (order-sensitive), if any."""
        try:
            positions = [self.schema.column_index(column) for column in columns]
        except Exception:
            return None
        for index in self._indexes.values():
            if index.column_positions == positions:
                return index
        return None

    # -- schema evolution ---------------------------------------------------------

    def add_column(self, column, default: Any = None) -> None:
        """ALTER TABLE ADD COLUMN: extend the schema and widen every
        stored row with *default* (validated against the new column)."""
        if self.schema.find_column(column.name) is not None:
            raise IntegrityError(
                f"table {self.schema.name!r} already has column "
                f"{column.name!r}")
        value = coerce(default, column.sql_type)
        if value is None and column.not_null:
            raise IntegrityError(
                f"new NOT NULL column {column.name!r} needs a DEFAULT "
                f"to backfill existing rows")
        self.schema.columns.append(column)
        for row in self._rows.values():
            row.append(value)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict[int, Row]:
        """A value copy of the row map, for transaction rollback."""
        return {row_id: list(row) for row_id, row in self._rows.items()}

    def restore(self, rows: dict[int, Row], next_row_id: int) -> None:
        """Reset contents to a snapshot and rebuild every index.

        Rows from a snapshot taken before an ``ALTER TABLE ADD COLUMN``
        are padded with NULLs to the current schema width (column adds
        survive a rollback, as in most real engines)."""
        width = len(self.schema.columns)
        self._rows = {
            row_id: list(row) + [None] * (width - len(row))
            for row_id, row in rows.items()
        }
        self._next_row_id = next_row_id
        for index in self._indexes.values():
            index._entries.clear()
            for row_id, row in self._rows.items():
                index.insert(row_id, row)

    @property
    def next_row_id(self) -> int:
        return self._next_row_id
