"""Scalar and aggregate SQL functions.

Scalar functions are plain Python callables registered in
:data:`SCALAR_FUNCTIONS`; they receive already-evaluated arguments and
must implement SQL NULL propagation themselves where appropriate (the
common case — return NULL when any argument is NULL — is provided by the
``_null_propagating`` decorator).

Aggregates are small accumulator classes registered in
:data:`AGGREGATE_FUNCTIONS`.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Callable, Optional

from repro.errors import SqlError

# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------

ScalarFn = Callable[..., Any]


def _null_propagating(fn: ScalarFn) -> ScalarFn:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)
    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


@_null_propagating
def _upper(value: str) -> str:
    """UPPER(text) — upper-case."""
    return str(value).upper()


@_null_propagating
def _lower(value: str) -> str:
    """LOWER(text) — lower-case."""
    return str(value).lower()


@_null_propagating
def _length(value: str) -> int:
    """LENGTH(text) — number of characters."""
    return len(str(value))


@_null_propagating
def _substr(value: str, start: int, length: Optional[int] = None) -> str:
    """SUBSTR(text, start[, length]) — 1-based substring."""
    text = str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin:begin + int(length)]


@_null_propagating
def _trim(value: str) -> str:
    """TRIM(text) — strip leading/trailing whitespace."""
    return str(value).strip()


@_null_propagating
def _abs(value: float) -> float:
    """ABS(number)."""
    return abs(value)


@_null_propagating
def _round(value: float, digits: int = 0) -> float:
    """ROUND(number[, digits])."""
    result = round(float(value), int(digits))
    return result if digits else float(int(result))


@_null_propagating
def _floor(value: float) -> int:
    """FLOOR(number)."""
    return math.floor(value)


@_null_propagating
def _ceil(value: float) -> int:
    """CEIL(number)."""
    return math.ceil(value)


@_null_propagating
def _mod(left: float, right: float) -> float:
    """MOD(a, b)."""
    if right == 0:
        raise SqlError("MOD by zero")
    return left % right


def _coalesce(*args: Any) -> Any:
    """COALESCE(a, b, ...) — first non-NULL argument."""
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(left: Any, right: Any) -> Any:
    """NULLIF(a, b) — NULL when a = b, else a."""
    return None if left == right else left


def _ifnull(value: Any, default: Any) -> Any:
    """IFNULL(a, b) — b when a is NULL, else a."""
    return default if value is None else value


@_null_propagating
def _concat(*args: Any) -> str:
    """CONCAT(a, b, ...) — string concatenation."""
    return "".join(str(arg) for arg in args)


@_null_propagating
def _replace(value: str, old: str, new: str) -> str:
    """REPLACE(text, old, new)."""
    return str(value).replace(str(old), str(new))


@_null_propagating
def _instr(value: str, needle: str) -> int:
    """INSTR(text, needle) — 1-based position, 0 when absent."""
    return str(value).find(str(needle)) + 1


@_null_propagating
def _year(value: datetime.date) -> int:
    """YEAR(date)."""
    return value.year


@_null_propagating
def _month(value: datetime.date) -> int:
    """MONTH(date)."""
    return value.month


@_null_propagating
def _day(value: datetime.date) -> int:
    """DAY(date)."""
    return value.day


@_null_propagating
def _date(value: str) -> datetime.date:
    """DATE('YYYY-MM-DD') — parse an ISO date."""
    if isinstance(value, datetime.date):
        return value
    return datetime.date.fromisoformat(str(value))


SCALAR_FUNCTIONS: dict[str, ScalarFn] = {
    "UPPER": _upper,
    "LOWER": _lower,
    "LENGTH": _length,
    "SUBSTR": _substr,
    "SUBSTRING": _substr,
    "TRIM": _trim,
    "ABS": _abs,
    "ROUND": _round,
    "FLOOR": _floor,
    "CEIL": _ceil,
    "CEILING": _ceil,
    "MOD": _mod,
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "IFNULL": _ifnull,
    "NVL": _ifnull,  # Oracle spelling
    "CONCAT": _concat,
    "REPLACE": _replace,
    "INSTR": _instr,
    "YEAR": _year,
    "MONTH": _month,
    "DAY": _day,
    "DATE": _date,
}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class Aggregate:
    """Base accumulator.  ``add`` sees one evaluated argument per row;
    ``result`` produces the final value."""

    def __init__(self, distinct: bool = False):
        self._distinct = distinct
        self._seen: set = set()

    def _admit(self, value: Any) -> bool:
        """NULLs never participate; DISTINCT filters repeats."""
        if value is None:
            return False
        if self._distinct:
            if value in self._seen:
                return False
            self._seen.add(value)
        return True

    def add(self, value: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(expr) / COUNT(*) / COUNT(DISTINCT expr)."""

    def __init__(self, distinct: bool = False, count_star: bool = False):
        super().__init__(distinct)
        self._count_star = count_star
        self._count = 0

    def add(self, value: Any) -> None:
        if self._count_star:
            self._count += 1
        elif self._admit(value):
            self._count += 1

    def result(self) -> int:
        return self._count


class SumAggregate(Aggregate):
    """SUM(expr) — NULL over an empty or all-NULL input."""

    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self._total: Optional[float] = None

    def add(self, value: Any) -> None:
        if self._admit(value):
            self._total = value if self._total is None else self._total + value

    def result(self) -> Any:
        return self._total


class AvgAggregate(Aggregate):
    """AVG(expr)."""

    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if self._admit(value):
            self._total += value
            self._count += 1

    def result(self) -> Optional[float]:
        return self._total / self._count if self._count else None


class MinAggregate(Aggregate):
    """MIN(expr)."""

    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self._min: Any = None

    def add(self, value: Any) -> None:
        if self._admit(value) and (self._min is None or value < self._min):
            self._min = value

    def result(self) -> Any:
        return self._min


class MaxAggregate(Aggregate):
    """MAX(expr)."""

    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self._max: Any = None

    def add(self, value: Any) -> None:
        if self._admit(value) and (self._max is None or value > self._max):
            self._max = value

    def result(self) -> Any:
        return self._max


AGGREGATE_FUNCTIONS: dict[str, type[Aggregate]] = {
    "COUNT": CountAggregate,
    "SUM": SumAggregate,
    "AVG": AvgAggregate,
    "MIN": MinAggregate,
    "MAX": MaxAggregate,
}


def is_aggregate(name: str) -> bool:
    """True when *name* (any case) is an aggregate function."""
    return name.upper() in AGGREGATE_FUNCTIONS
