"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    INTEGER = "INTEGER"
    REAL = "REAL"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    PARAM = "PARAM"
    EOF = "EOF"


#: Reserved words.  Identifiers that match (case-insensitively) are
#: emitted as KEYWORD tokens with an upper-cased value.
KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "LIMIT", "OFFSET", "DISTINCT", "ALL", "AS", "AND", "OR",
    "NOT", "NULL", "IS", "IN", "LIKE", "BETWEEN", "EXISTS", "UNION",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
    "TABLE", "DROP", "INDEX", "ON", "PRIMARY", "KEY", "UNIQUE",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "USING",
    "TRUE", "FALSE", "CASE", "WHEN", "THEN", "ELSE", "END",
    "COUNT", "SUM", "AVG", "MIN", "MAX",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK",
    "VIEW", "CAST", "EXPLAIN", "ALTER", "ADD", "COLUMN", "DEFAULT",
    "IF",
})

#: Multi-character operators, longest first so the lexer can greedily match.
OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = frozenset({"(", ")", ",", ".", ";"})


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position for error messages."""

    type: TokenType
    value: Any
    line: int
    column: int

    def matches(self, token_type: TokenType, value: Any = None) -> bool:
        """True when this token has *token_type* and (optionally) *value*."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
