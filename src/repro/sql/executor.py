"""Statement execution for the relational engine.

The :class:`Executor` runs parsed statements against an engine's storage.
SELECT processing follows the textbook pipeline::

    row source (planner) -> WHERE -> GROUP BY/aggregate -> HAVING
        -> projection -> DISTINCT -> ORDER BY -> LIMIT/OFFSET

Correlated subqueries work by chaining row environments: a subquery is
executed with the enclosing row's environment as its outer scope.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import CatalogError, IntegrityError, SqlError
from repro.sql import ast
from repro.sql.expressions import (Environment, Evaluator, Header,
                                   collect_aggregates, is_truthy)
from repro.sql.functions import AGGREGATE_FUNCTIONS, CountAggregate
from repro.sql.planner import (DerivedTable, HashJoin, IndexLookup,
                               NestedLoopJoin, Planner, RowSource, TableScan)
from repro.sql.result import ResultSet

Relation = tuple[Header, list[tuple]]

_EMPTY_HEADER = Header([])
_EMPTY_ENV_ROW: tuple = ()


class Executor:
    """Executes statements against an engine exposing ``table_for(name)``."""

    def __init__(self, engine, params: Optional[list[Any]] = None):
        self._engine = engine
        self._planner = Planner(engine)
        self._evaluator = Evaluator(subquery_executor=self._run_subquery,
                                    params=params)
        #: Number of index lookups chosen by the planner during this
        #: statement — surfaced for tests and benchmarks.
        self.index_lookups = 0

    # ------------------------------------------------------------------ API --

    def execute(self, statement: ast.Statement) -> ResultSet:
        """Execute any supported statement, returning a :class:`ResultSet`."""
        if isinstance(statement, (ast.Select, ast.Union)):
            header, rows = self.execute_query(statement, outer_env=None)
            return ResultSet(columns=header.column_names, rows=rows)
        if isinstance(statement, ast.Insert):
            return ResultSet.empty(self._insert(statement))
        if isinstance(statement, ast.Update):
            return ResultSet.empty(self._update(statement))
        if isinstance(statement, ast.Delete):
            return ResultSet.empty(self._delete(statement))
        raise SqlError(f"executor cannot run {type(statement).__name__}")

    def execute_query(self, statement: ast.Statement,
                      outer_env: Optional[Environment]) -> Relation:
        """Execute a SELECT or UNION tree, returning header + rows."""
        if isinstance(statement, ast.Union):
            return self._execute_union(statement, outer_env)
        assert isinstance(statement, ast.Select)
        return self._execute_select(statement, outer_env)

    # -------------------------------------------------------------- subquery --

    def _run_subquery(self, select: ast.Select,
                      outer_env: Environment) -> list[tuple]:
        __, rows = self._execute_select(select, outer_env)
        return rows

    # ----------------------------------------------------------------- UNION --

    def _execute_union(self, union: ast.Union,
                       outer_env: Optional[Environment]) -> Relation:
        left_header, left_rows = self.execute_query(union.left, outer_env)
        right_header, right_rows = self.execute_query(union.right, outer_env)
        if len(left_header) != len(right_header):
            raise SqlError("UNION operands have different column counts")
        rows = list(left_rows) + list(right_rows)
        if not union.all:
            rows = _dedupe(rows)
        header = Header([(None, name) for name in left_header.column_names])
        if union.order_by:
            rows = self._sort_output_rows(header, rows, union.order_by, outer_env)
        if union.limit is not None:
            limit = self._constant_int(union.limit, "LIMIT")
            rows = rows[:limit]
        return header, rows

    # ---------------------------------------------------------------- SELECT --

    def _execute_select(self, select: ast.Select,
                        outer_env: Optional[Environment]) -> Relation:
        plan = self._planner.plan(select)
        if plan.used_index:
            self.index_lookups += 1
        if plan.source is None:
            input_header = _EMPTY_HEADER
            input_rows: list[tuple] = [_EMPTY_ENV_ROW]
        else:
            input_header, input_rows = self._materialize(plan.source, outer_env)
        if plan.residual_where is not None:
            input_rows = [
                row for row in input_rows
                if is_truthy(self._evaluator.evaluate(
                    plan.residual_where,
                    Environment(input_header, row, outer_env)))
            ]

        aggregates = self._collect_select_aggregates(select)
        if select.group_by or aggregates:
            header, out_rows = self._aggregate(
                select, input_header, input_rows, aggregates, outer_env)
        else:
            header, out_rows = self._project(
                select, input_header, input_rows, outer_env)

        if select.distinct:
            out_rows = [pair for pair in _dedupe_keyed(out_rows)]

        if select.order_by:
            out_rows = self._apply_order(out_rows, select.order_by)
        rows = [row for row, __ in out_rows]

        if select.offset is not None:
            rows = rows[self._constant_int(select.offset, "OFFSET"):]
        if select.limit is not None:
            rows = rows[:self._constant_int(select.limit, "LIMIT")]
        return header, rows

    # -- projection ------------------------------------------------------------

    def _output_columns(self, select: ast.Select,
                        input_header: Header) -> list[str]:
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                if item.expression.table is None:
                    names.extend(input_header.column_names)
                else:
                    positions = input_header.positions_for_binding(
                        item.expression.table)
                    if not positions:
                        raise CatalogError(
                            f"unknown table {item.expression.table!r} in select list")
                    names.extend(input_header.slots[i][1] for i in positions)
            elif item.alias:
                names.append(item.alias)
            else:
                names.append(_derive_name(item.expression))
        return names

    def _project_row(self, select: ast.Select, env: Environment) -> tuple:
        values: list[Any] = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                if item.expression.table is None:
                    values.extend(env.row)
                else:
                    positions = env.header.positions_for_binding(
                        item.expression.table)
                    if not positions:
                        raise CatalogError(
                            f"unknown table {item.expression.table!r} in select list")
                    values.extend(env.row[i] for i in positions)
            else:
                values.append(self._evaluator.evaluate(item.expression, env))
        return tuple(values)

    def _project(self, select: ast.Select, input_header: Header,
                 input_rows: list[tuple],
                 outer_env: Optional[Environment]
                 ) -> tuple[Header, list[tuple[tuple, list[Any]]]]:
        """Project rows; returns (header, [(output_row, sort_keys)])."""
        names = self._output_columns(select, input_header)
        header = Header([(None, name) for name in names])
        out: list[tuple[tuple, list[Any]]] = []
        for row in input_rows:
            env = Environment(input_header, row, outer_env)
            output = self._project_row(select, env)
            keys = self._order_keys(select, env, output, names)
            out.append((output, keys))
        return header, out

    # -- aggregation ------------------------------------------------------------

    def _collect_select_aggregates(self,
                                   select: ast.Select) -> list[ast.FunctionCall]:
        found: list[ast.FunctionCall] = []
        for item in select.items:
            if not isinstance(item.expression, ast.Star):
                found.extend(collect_aggregates(item.expression))
        found.extend(collect_aggregates(select.having))
        for order in select.order_by:
            found.extend(collect_aggregates(order.expression))
        return found

    def _aggregate(self, select: ast.Select, input_header: Header,
                   input_rows: list[tuple],
                   aggregate_nodes: list[ast.FunctionCall],
                   outer_env: Optional[Environment]
                   ) -> tuple[Header, list[tuple[tuple, list[Any]]]]:
        names = self._output_columns(select, input_header)
        header = Header([(None, name) for name in names])
        group_exprs = [self._resolve_group_alias(expr, select, input_header)
                       for expr in select.group_by]

        groups: dict[tuple, dict[str, Any]] = {}
        order_of_groups: list[tuple] = []
        for row in input_rows:
            env = Environment(input_header, row, outer_env)
            key = tuple(self._evaluator.evaluate(expr, env)
                        for expr in group_exprs)
            state = groups.get(key)
            if state is None:
                state = {
                    "row": row,
                    "accumulators": [self._make_accumulator(node)
                                     for node in aggregate_nodes],
                }
                groups[key] = state
                order_of_groups.append(key)
            for node, accumulator in zip(aggregate_nodes, state["accumulators"]):
                self._feed(node, accumulator, env)

        if not select.group_by and not groups:
            # Aggregates over an empty input still yield one row.
            groups[()] = {
                "row": None,
                "accumulators": [self._make_accumulator(node)
                                 for node in aggregate_nodes],
            }
            order_of_groups.append(())

        out: list[tuple[tuple, list[Any]]] = []
        for key in order_of_groups:
            state = groups[key]
            agg_values = {
                id(node): accumulator.result()
                for node, accumulator in zip(aggregate_nodes,
                                             state["accumulators"])
            }
            representative = state["row"]
            row = representative if representative is not None \
                else tuple([None] * len(input_header))
            env = Environment(input_header, row, outer_env, aggregates=agg_values)
            if select.having is not None:
                if not is_truthy(self._evaluator.evaluate(select.having, env)):
                    continue
            output = self._project_row(select, env)
            keys = self._order_keys(select, env, output, names)
            out.append((output, keys))
        return header, out

    def _resolve_group_alias(self, expression: ast.Expression,
                             select: ast.Select,
                             input_header: Header) -> ast.Expression:
        """Allow ``GROUP BY alias`` by substituting the aliased select
        expression when the name does not resolve against the input."""
        if not (isinstance(expression, ast.ColumnRef)
                and expression.table is None):
            return expression
        try:
            if input_header.resolve(expression.name) is not None:
                return expression
        except CatalogError:
            return expression  # ambiguous in input: keep SQL's normal error
        lowered = expression.name.lower()
        for item in select.items:
            if item.alias and item.alias.lower() == lowered:
                return item.expression
        return expression

    def _make_accumulator(self, node: ast.FunctionCall):
        cls = AGGREGATE_FUNCTIONS[node.name]
        if cls is CountAggregate:
            count_star = bool(node.args) and isinstance(node.args[0], ast.Star) \
                or not node.args
            return CountAggregate(distinct=node.distinct, count_star=count_star)
        return cls(distinct=node.distinct)

    def _feed(self, node: ast.FunctionCall, accumulator, env: Environment) -> None:
        if isinstance(accumulator, CountAggregate) and (
                not node.args or isinstance(node.args[0], ast.Star)):
            accumulator.add(1)
            return
        if not node.args:
            raise SqlError(f"aggregate {node.name} requires an argument")
        accumulator.add(self._evaluator.evaluate(node.args[0], env))

    # -- ordering ----------------------------------------------------------------

    def _order_keys(self, select: ast.Select, env: Environment,
                    output: tuple, names: list[str]) -> list[Any]:
        """Evaluate ORDER BY keys for one produced row.

        Resolution order per SQL custom: output ordinal (integer literal),
        then output alias, then any expression over the input row.
        """
        keys: list[Any] = []
        for item in select.order_by:
            expr = item.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                position = expr.value - 1
                if position < 0 or position >= len(output):
                    raise SqlError(f"ORDER BY position {expr.value} out of range")
                keys.append(output[position])
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                lowered = expr.name.lower()
                matches = [i for i, name in enumerate(names)
                           if name.lower() == lowered]
                if len(matches) == 1:
                    keys.append(output[matches[0]])
                    continue
            keys.append(self._evaluator.evaluate(expr, env))
        return keys

    def _apply_order(self, keyed_rows: list[tuple[tuple, list[Any]]],
                     order_by: list[ast.OrderItem]
                     ) -> list[tuple[tuple, list[Any]]]:
        result = list(keyed_rows)
        # Stable-sort from the least-significant key to the most.
        for position in range(len(order_by) - 1, -1, -1):
            ascending = order_by[position].ascending
            result.sort(key=lambda pair: _null_aware_key(pair[1][position]),
                        reverse=not ascending)
        return result

    def _sort_output_rows(self, header: Header, rows: list[tuple],
                          order_by: list[ast.OrderItem],
                          outer_env: Optional[Environment]) -> list[tuple]:
        keyed: list[tuple[tuple, list[Any]]] = []
        for row in rows:
            env = Environment(header, row, outer_env)
            keys = []
            for item in order_by:
                expr = item.expression
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    keys.append(row[expr.value - 1])
                else:
                    keys.append(self._evaluator.evaluate(expr, env))
            keyed.append((row, keys))
        return [row for row, __ in self._apply_order(keyed, order_by)]

    # ------------------------------------------------------------- row sources --

    def _materialize(self, source: RowSource,
                     outer_env: Optional[Environment]) -> Relation:
        if isinstance(source, TableScan):
            table = self._engine.table_for(source.table)
            header = Header([(source.binding, name)
                             for name in table.schema.column_names])
            return header, [tuple(row) for __, row in table.scan()]
        if isinstance(source, IndexLookup):
            return self._materialize_index_lookup(source, outer_env)
        if isinstance(source, DerivedTable):
            sub_header, sub_rows = self.execute_query(source.select, outer_env)
            header = Header([(source.binding, name)
                             for name in sub_header.column_names])
            return header, sub_rows
        if isinstance(source, HashJoin):
            return self._materialize_hash_join(source, outer_env)
        if isinstance(source, NestedLoopJoin):
            return self._materialize_nested_loop(source, outer_env)
        raise SqlError(f"cannot materialize {type(source).__name__}")

    def _materialize_index_lookup(self, source: IndexLookup,
                                  outer_env: Optional[Environment]) -> Relation:
        table = self._engine.table_for(source.table)
        header = Header([(source.binding, name)
                         for name in table.schema.column_names])
        env = Environment(_EMPTY_HEADER, _EMPTY_ENV_ROW, outer_env)
        key = tuple(self._evaluator.evaluate(expr, env) for expr in source.keys)
        index = table.index_on(source.columns)
        if index is None:  # index dropped between planning and execution
            return header, [tuple(row) for __, row in table.scan()]
        row_ids = sorted(index.lookup(key))
        return header, [tuple(table.row(row_id)) for row_id in row_ids]

    def _materialize_hash_join(self, source: HashJoin,
                               outer_env: Optional[Environment]) -> Relation:
        left_header, left_rows = self._materialize(source.left, outer_env)
        right_header, right_rows = self._materialize(source.right, outer_env)
        header = left_header + right_header
        right_width = len(right_header)

        buckets: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            env = Environment(right_header, row, outer_env)
            key = tuple(self._evaluator.evaluate(expr, env)
                        for expr in source.right_keys)
            if None in key:
                continue
            buckets.setdefault(key, []).append(row)

        out: list[tuple] = []
        null_pad = tuple([None] * right_width)
        for row in left_rows:
            env = Environment(left_header, row, outer_env)
            key = tuple(self._evaluator.evaluate(expr, env)
                        for expr in source.left_keys)
            matches = buckets.get(key, []) if None not in key else []
            if matches:
                for right_row in matches:
                    out.append(row + right_row)
            elif source.kind == "LEFT":
                out.append(row + null_pad)
        return header, out

    def _materialize_nested_loop(self, source: NestedLoopJoin,
                                 outer_env: Optional[Environment]) -> Relation:
        left_header, left_rows = self._materialize(source.left, outer_env)
        right_header, right_rows = self._materialize(source.right, outer_env)

        condition = source.condition
        drop_right_positions: list[int] = []
        if source.using:
            condition, drop_right_positions = self._using_condition(
                source.using, left_header, right_header)

        header = left_header + right_header
        right_width = len(right_header)
        left_width = len(left_header)
        out: list[tuple] = []

        def matches(combined: tuple) -> bool:
            if condition is None:
                return True
            env = Environment(header, combined, outer_env)
            return is_truthy(self._evaluator.evaluate(condition, env))

        if source.kind in ("INNER", "CROSS"):
            for left_row in left_rows:
                for right_row in right_rows:
                    combined = left_row + right_row
                    if matches(combined):
                        out.append(combined)
        elif source.kind == "LEFT":
            null_pad = tuple([None] * right_width)
            for left_row in left_rows:
                found = False
                for right_row in right_rows:
                    combined = left_row + right_row
                    if matches(combined):
                        out.append(combined)
                        found = True
                if not found:
                    out.append(left_row + null_pad)
        elif source.kind == "RIGHT":
            null_pad = tuple([None] * left_width)
            for right_row in right_rows:
                found = False
                for left_row in left_rows:
                    combined = left_row + right_row
                    if matches(combined):
                        out.append(combined)
                        found = True
                if not found:
                    out.append(null_pad + right_row)
        else:  # pragma: no cover - parser restricts kinds
            raise SqlError(f"unsupported join kind {source.kind!r}")

        if drop_right_positions:
            keep = [i for i in range(len(header))
                    if i not in drop_right_positions]
            header = Header([header.slots[i] for i in keep])
            out = [tuple(row[i] for i in keep) for row in out]
        return header, out

    def _using_condition(self, using: list[str], left_header: Header,
                         right_header: Header
                         ) -> tuple[Optional[ast.Expression], list[int]]:
        """Build the implicit equality condition for JOIN ... USING and the
        combined-header positions of the right-side duplicates to drop."""
        conjuncts: list[ast.Expression] = []
        drop: list[int] = []
        left_width = len(left_header)
        for column in using:
            left_position = left_header.resolve(column)
            right_position = right_header.resolve(column)
            if left_position is None or right_position is None:
                raise CatalogError(f"USING column {column!r} missing from a side")
            left_binding = left_header.slots[left_position][0]
            right_binding = right_header.slots[right_position][0]
            conjuncts.append(ast.Binary(
                "=",
                ast.ColumnRef(name=column, table=left_binding),
                ast.ColumnRef(name=column, table=right_binding)))
            drop.append(left_width + right_position)
        condition = conjuncts[0]
        for conjunct in conjuncts[1:]:
            condition = ast.Binary("AND", condition, conjunct)
        return condition, drop

    # --------------------------------------------------------------------- DML --

    def _insert(self, statement: ast.Insert) -> int:
        table = self._engine.table_for(statement.table)
        schema = table.schema
        if statement.columns is not None:
            positions = [schema.column_index(name) for name in statement.columns]
        else:
            positions = list(range(len(schema.columns)))

        def widen(values: list[Any]) -> list[Any]:
            if len(values) != len(positions):
                raise IntegrityError(
                    f"INSERT supplies {len(values)} values for "
                    f"{len(positions)} columns")
            row: list[Any] = [None] * len(schema.columns)
            for index, column in enumerate(schema.columns):
                if column.default is not None:
                    row[index] = column.default
            for position, value in zip(positions, values):
                row[position] = value
            return row

        count = 0
        if statement.rows is not None:
            env = Environment(_EMPTY_HEADER, _EMPTY_ENV_ROW)
            for value_row in statement.rows:
                values = [self._evaluator.evaluate(expr, env)
                          for expr in value_row]
                table.insert(widen(values))
                count += 1
        else:
            assert statement.select is not None
            __, rows = self.execute_query(statement.select, outer_env=None)
            for row in rows:
                table.insert(widen(list(row)))
                count += 1
        return count

    def _update(self, statement: ast.Update) -> int:
        table = self._engine.table_for(statement.table)
        schema = table.schema
        header = Header([(statement.table, name)
                         for name in schema.column_names])
        assignments = [(schema.column_index(a.column), a.value)
                       for a in statement.assignments]
        touched: list[tuple[int, list[Any]]] = []
        for row_id, row in table.scan():
            env = Environment(header, tuple(row))
            if statement.where is not None and not is_truthy(
                    self._evaluator.evaluate(statement.where, env)):
                continue
            new_row = list(row)
            for position, expression in assignments:
                new_row[position] = self._evaluator.evaluate(expression, env)
            touched.append((row_id, new_row))
        for row_id, new_row in touched:
            table.update(row_id, new_row)
        return len(touched)

    def _delete(self, statement: ast.Delete) -> int:
        table = self._engine.table_for(statement.table)
        header = Header([(statement.table, name)
                         for name in table.schema.column_names])
        doomed: list[int] = []
        for row_id, row in table.scan():
            env = Environment(header, tuple(row))
            if statement.where is None or is_truthy(
                    self._evaluator.evaluate(statement.where, env)):
                doomed.append(row_id)
        for row_id in doomed:
            table.delete(row_id)
        return len(doomed)

    # ----------------------------------------------------------------- helpers --

    def _constant_int(self, expression: ast.Expression, label: str) -> int:
        env = Environment(_EMPTY_HEADER, _EMPTY_ENV_ROW)
        value = self._evaluator.evaluate(expression, env)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise SqlError(f"{label} requires a non-negative integer")
        return value


def _derive_name(expression: ast.Expression) -> str:
    """Output column name for an unaliased select item."""
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        if not expression.args:
            return f"{expression.name}(*)"
        if len(expression.args) == 1 and isinstance(expression.args[0], ast.Star):
            return f"{expression.name}(*)"
        if len(expression.args) == 1 and isinstance(expression.args[0],
                                                    ast.ColumnRef):
            return f"{expression.name}({expression.args[0].name})"
        return f"{expression.name}(...)"
    if isinstance(expression, ast.Literal):
        return str(expression.value)
    return "expr"


def _null_aware_key(value: Any):
    """Sort key placing NULLs first and ordering mixed values stably."""
    return (value is not None, value)


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    result: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            result.append(row)
    return result


def _dedupe_keyed(keyed_rows: list[tuple[tuple, list[Any]]]
                  ) -> list[tuple[tuple, list[Any]]]:
    seen: set[tuple] = set()
    result: list[tuple[tuple, list[Any]]] = []
    for row, keys in keyed_rows:
        if row not in seen:
            seen.add(row)
            result.append((row, keys))
    return result
