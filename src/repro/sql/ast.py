"""Abstract syntax tree for the SQL dialect understood by the engine.

All nodes are frozen-ish dataclasses (mutable only where the planner
needs to annotate them).  Expression nodes share the :class:`Expression`
base; statement nodes share :class:`Statement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


class Node:
    """Base class for every AST node."""


class Expression(Node):
    """Base class for expression nodes."""


class Statement(Node):
    """Base class for statement nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, or NULL."""

    value: Any


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference like ``t.name`` or ``name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Param(Expression):
    """A positional ``?`` parameter; *index* is assigned left to right."""

    index: int


@dataclass
class Unary(Expression):
    """Unary operator application: ``NOT x``, ``-x``, ``+x``."""

    op: str
    operand: Expression


@dataclass
class Binary(Expression):
    """Binary operator application (arithmetic, comparison, AND/OR, ``||``)."""

    op: str
    left: Expression
    right: Expression


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expression
    items: list[Expression]
    negated: bool = False


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select"
    negated: bool = False


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass
class FunctionCall(Expression):
    """Scalar or aggregate function call.  ``COUNT(DISTINCT x)`` sets *distinct*."""

    name: str
    args: list[Expression]
    distinct: bool = False


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` — valid in select lists and ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass
class CaseWhen(Node):
    """One ``WHEN condition THEN result`` arm of a CASE expression."""

    condition: Expression
    result: Expression


@dataclass
class Case(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expression]
    whens: list[CaseWhen]
    default: Optional[Expression] = None


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    """A parenthesized SELECT used as a scalar value."""

    subquery: "Select"


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    type_name: str


# ---------------------------------------------------------------------------
# FROM-clause items
# ---------------------------------------------------------------------------

class FromItem(Node):
    """Base class for items in a FROM clause."""


@dataclass
class TableRef(FromItem):
    """A base-table reference with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is visible under in the query scope."""
        return self.alias or self.name


@dataclass
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) alias``."""

    subquery: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class Join(FromItem):
    """A join of two FROM items.  *kind* is INNER, LEFT, RIGHT, or CROSS."""

    kind: str
    left: FromItem
    right: FromItem
    condition: Optional[Expression] = None
    using: Optional[list[str]] = None


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------

@dataclass
class SelectItem(Node):
    """One entry in a select list: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass
class Select(Statement):
    """A single SELECT block (no set operators; see :class:`Union`)."""

    items: list[SelectItem]
    from_item: Optional[FromItem] = None
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


@dataclass
class Union(Statement):
    """``left UNION [ALL] right`` with optional trailing ORDER BY/LIMIT."""

    left: Statement
    right: Statement
    all: bool = False
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------

@dataclass
class Insert(Statement):
    """``INSERT INTO table [(cols)] VALUES (...), ...`` or ``INSERT ... SELECT``."""

    table: str
    columns: Optional[list[str]]
    rows: Optional[list[list[Expression]]] = None
    select: Optional[Union | Select] = None


@dataclass
class Assignment(Node):
    """One ``column = expression`` pair in an UPDATE."""

    column: str
    value: Expression


@dataclass
class Update(Statement):
    """``UPDATE table SET ... [WHERE ...]``."""

    table: str
    assignments: list[Assignment]
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

@dataclass
class ColumnDef(Node):
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Optional[Expression] = None


@dataclass
class CreateTable(Statement):
    """``CREATE TABLE [IF NOT EXISTS] name (...)``."""

    name: str
    columns: list[ColumnDef]
    if_not_exists: bool = False
    primary_key: list[str] = field(default_factory=list)


@dataclass
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    """``CREATE [UNIQUE] INDEX name ON table (cols)``."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False


@dataclass
class DropIndex(Statement):
    """``DROP INDEX name``."""

    name: str


@dataclass
class AlterTableAddColumn(Statement):
    """``ALTER TABLE name ADD [COLUMN] coldef [DEFAULT literal]``."""

    table: str
    column: ColumnDef


@dataclass
class CreateView(Statement):
    """``CREATE VIEW name AS SELECT ...``."""

    name: str
    select: Statement


@dataclass
class DropView(Statement):
    """``DROP VIEW [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

@dataclass
class Explain(Statement):
    """``EXPLAIN <statement>`` — describe the access plan."""

    statement: Statement


@dataclass
class BeginTransaction(Statement):
    """``BEGIN [TRANSACTION|WORK]``."""


@dataclass
class Commit(Statement):
    """``COMMIT [TRANSACTION|WORK]``."""


@dataclass
class Rollback(Statement):
    """``ROLLBACK [TRANSACTION|WORK]``."""
