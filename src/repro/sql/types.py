"""SQL value types and coercion rules for the relational engine.

The engine supports a compact but realistic type system: ``INTEGER``,
``REAL``, ``TEXT``, ``DATE``, and ``BOOLEAN``.  ``NULL`` is represented
by Python ``None`` and is a member of every type.  Vendor dialects map
their own spellings (``VARCHAR2``, ``NUMBER``, ...) onto these types in
:mod:`repro.sql.dialect`.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import SqlTypeError


class SqlType(enum.Enum):
    """Canonical column types understood by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:
        return self.value


#: Spellings accepted in ``CREATE TABLE`` regardless of dialect.  The
#: vendor dialects add their own synonyms on top of these.
TYPE_SYNONYMS: dict[str, SqlType] = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "SMALLINT": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "REAL": SqlType.REAL,
    "FLOAT": SqlType.REAL,
    "DOUBLE": SqlType.REAL,
    "DECIMAL": SqlType.REAL,
    "NUMERIC": SqlType.REAL,
    "TEXT": SqlType.TEXT,
    "CHAR": SqlType.TEXT,
    "VARCHAR": SqlType.TEXT,
    "STRING": SqlType.TEXT,
    "DATE": SqlType.DATE,
    "BOOLEAN": SqlType.BOOLEAN,
    "BOOL": SqlType.BOOLEAN,
}


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` date literal."""
    try:
        return datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise SqlTypeError(f"invalid date literal: {text!r}") from exc


def coerce(value: Any, sql_type: SqlType) -> Any:
    """Coerce *value* to *sql_type*, raising :class:`SqlTypeError` if impossible.

    ``None`` passes through untouched: NULL belongs to every type.
    Numeric widening (int -> real) is allowed; narrowing real -> integer
    is allowed only when exact.
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                pass
        raise SqlTypeError(f"cannot coerce {value!r} to INTEGER")
    if sql_type is SqlType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise SqlTypeError(f"cannot coerce {value!r} to REAL")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        if isinstance(value, datetime.date):
            return value.isoformat()
        raise SqlTypeError(f"cannot coerce {value!r} to TEXT")
    if sql_type is SqlType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise SqlTypeError(f"cannot coerce {value!r} to DATE")
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.upper() in ("TRUE", "FALSE"):
            return value.upper() == "TRUE"
        raise SqlTypeError(f"cannot coerce {value!r} to BOOLEAN")
    raise SqlTypeError(f"unknown SQL type: {sql_type!r}")  # pragma: no cover


def infer_type(value: Any) -> SqlType:
    """Infer the narrowest :class:`SqlType` for a Python value."""
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, datetime.date):
        return SqlType.DATE
    if isinstance(value, str):
        return SqlType.TEXT
    raise SqlTypeError(f"no SQL type for Python value {value!r}")


def comparable(left: Any, right: Any) -> bool:
    """Return True when two non-NULL values may be compared with <, >, =."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    if isinstance(left, str) and isinstance(right, str):
        return True
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return True
    return False
