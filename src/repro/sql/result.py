"""Query results returned by the relational engine."""

from __future__ import annotations

from typing import Any, Iterator


class ResultSet:
    """An ordered, materialized query result.

    Exposes both positional access (``rows`` of tuples) and name-based
    access (:meth:`to_dicts`), plus the metadata the gateway layer needs
    (:attr:`columns`, :attr:`rowcount`).
    """

    def __init__(self, columns: list[str], rows: list[tuple],
                 rowcount: int | None = None):
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        #: Rows affected for DML; for queries this equals ``len(rows)``.
        self.rowcount = rowcount if rowcount is not None else len(self.rows)

    @classmethod
    def empty(cls, rowcount: int = 0) -> "ResultSet":
        """A result with no columns, as produced by DML and DDL."""
        return cls(columns=[], rows=[], rowcount=rowcount)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> tuple | None:
        """The first row, or None when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (None if empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        """All values of the named output column."""
        index = self._column_index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{column: value}`` dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def _column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.lower() == lowered:
                return index
        raise KeyError(f"no output column {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultSet(columns={self.columns!r}, rows={len(self.rows)})"
