"""Expression evaluation with SQL semantics.

The evaluator implements three-valued logic (NULL-aware AND/OR/NOT),
NULL-propagating arithmetic and comparisons, LIKE pattern matching,
scalar function dispatch, CASE, and subquery forms (scalar, IN, EXISTS).

Rows are evaluated inside an :class:`Environment`: a mapping from column
bindings to values that chains to an outer environment so correlated
subqueries can see enclosing rows.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from repro.errors import CatalogError, SqlError
from repro.sql import ast
from repro.sql.functions import SCALAR_FUNCTIONS, is_aggregate
from repro.sql.types import TYPE_SYNONYMS, coerce, comparable


class Header:
    """The column layout of an intermediate relation.

    Each slot is a ``(binding, column_name)`` pair; *binding* is the
    table alias (or None for computed columns).  Lookup resolves both
    qualified (``t.c``) and bare (``c``) references, raising on
    ambiguity as a real engine would.
    """

    def __init__(self, slots: list[tuple[Optional[str], str]]):
        self.slots = slots
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for position, (binding, column) in enumerate(slots):
            lowered = column.lower()
            self._by_name.setdefault(lowered, []).append(position)
            if binding is not None:
                self._by_qualified[(binding.lower(), lowered)] = position

    def resolve(self, name: str, table: Optional[str] = None) -> Optional[int]:
        """Slot position for a column reference, or None when unknown."""
        lowered = name.lower()
        if table is not None:
            return self._by_qualified.get((table.lower(), lowered))
        positions = self._by_name.get(lowered)
        if not positions:
            return None
        if len(positions) > 1:
            raise CatalogError(f"ambiguous column reference {name!r}")
        return positions[0]

    def positions_for_binding(self, binding: str) -> list[int]:
        """All slots belonging to one table binding (for ``t.*``)."""
        lowered = binding.lower()
        return [i for i, (b, _) in enumerate(self.slots)
                if b is not None and b.lower() == lowered]

    def __add__(self, other: "Header") -> "Header":
        return Header(self.slots + other.slots)

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def column_names(self) -> list[str]:
        return [column for _, column in self.slots]


class Environment:
    """One row bound to a header, chained to an optional outer scope."""

    def __init__(self, header: Header, row: tuple,
                 outer: Optional["Environment"] = None,
                 aggregates: Optional[dict[int, Any]] = None):
        self.header = header
        self.row = row
        self.outer = outer
        #: id(FunctionCall-node) -> computed aggregate value, used when
        #: projecting the output of a GROUP BY.
        self.aggregates = aggregates or {}

    def lookup(self, name: str, table: Optional[str]) -> Any:
        position = self.header.resolve(name, table)
        if position is not None:
            return self.row[position]
        if self.outer is not None:
            return self.outer.lookup(name, table)
        qualified = f"{table}.{name}" if table else name
        raise CatalogError(f"unknown column {qualified!r}")


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_match(value: Any, pattern: Any) -> Optional[bool]:
    """SQL LIKE with ``%`` and ``_``; NULL operands yield NULL."""
    if value is None or pattern is None:
        return None
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex_parts = ["^"]
        for char in str(pattern):
            if char == "%":
                regex_parts.append(".*")
            elif char == "_":
                regex_parts.append(".")
            else:
                regex_parts.append(re.escape(char))
        regex_parts.append("$")
        compiled = re.compile("".join(regex_parts), re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled.match(str(value)) is not None


def _compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """NULL-propagating comparison."""
    if left is None or right is None:
        return None
    left, right = _coerce_date_pair(left, right)
    if not comparable(left, right):
        # Mixed types never compare equal but are not an error for =/<>,
        # mirroring permissive engines; ordering comparisons do raise.
        if op == "=":
            return False
        if op == "<>":
            return True
        raise SqlError(f"cannot compare {type(left).__name__} with {type(right).__name__}")
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SqlError(f"unknown comparison operator {op!r}")  # pragma: no cover


def _coerce_date_pair(left: Any, right: Any) -> tuple[Any, Any]:
    """Promote an ISO string to a date when compared against a date
    column, the way SQL engines implicitly cast date literals."""
    import datetime

    if isinstance(left, datetime.date) and isinstance(right, str):
        try:
            return left, datetime.date.fromisoformat(right)
        except ValueError:
            return left, right
    if isinstance(right, datetime.date) and isinstance(left, str):
        try:
            return datetime.date.fromisoformat(left), right
        except ValueError:
            return left, right
    return left, right


def _arith(op: str, left: Any, right: Any) -> Any:
    """NULL-propagating arithmetic and string concatenation."""
    if left is None or right is None:
        return None
    if op == "||":
        return str(left) + str(right)
    if not isinstance(left, (int, float)) or isinstance(left, bool) or \
            not isinstance(right, (int, float)) or isinstance(right, bool):
        raise SqlError(f"operator {op!r} requires numeric operands, "
                       f"got {left!r} and {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SqlError("division by zero")
        result = left / right
        if isinstance(left, int) and isinstance(right, int) and result.is_integer():
            return int(result)
        return result
    if op == "%":
        if right == 0:
            raise SqlError("modulo by zero")
        return left % right
    raise SqlError(f"unknown arithmetic operator {op!r}")  # pragma: no cover


def is_truthy(value: Any) -> bool:
    """Collapse three-valued logic to a WHERE-clause decision."""
    return value is True


class Evaluator:
    """Evaluates AST expressions against an :class:`Environment`.

    *subquery_executor* is a callable ``(select, outer_env) -> list[tuple]``
    supplied by the executor so subqueries can run with correlation.
    *params* carries positional ``?`` bindings.
    """

    def __init__(self,
                 subquery_executor: Optional[Callable[[ast.Select, Environment], list[tuple]]] = None,
                 params: Optional[list[Any]] = None):
        self._run_subquery = subquery_executor
        self._params = params or []

    def evaluate(self, expression: ast.Expression, env: Environment) -> Any:
        method = getattr(self, f"_eval_{type(expression).__name__.lower()}", None)
        if method is None:
            raise SqlError(f"cannot evaluate {type(expression).__name__}")
        return method(expression, env)

    # -- leaf nodes -----------------------------------------------------------

    def _eval_literal(self, node: ast.Literal, env: Environment) -> Any:
        return node.value

    def _eval_columnref(self, node: ast.ColumnRef, env: Environment) -> Any:
        return env.lookup(node.name, node.table)

    def _eval_param(self, node: ast.Param, env: Environment) -> Any:
        if node.index >= len(self._params):
            raise SqlError(f"missing value for parameter {node.index + 1}")
        return self._params[node.index]

    def _eval_star(self, node: ast.Star, env: Environment) -> Any:
        raise SqlError("* is only valid in a select list or COUNT(*)")

    # -- operators ---------------------------------------------------------------

    def _eval_unary(self, node: ast.Unary, env: Environment) -> Any:
        if node.op == "NOT":
            value = self.evaluate(node.operand, env)
            if value is None:
                return None
            return not is_truthy(value)
        value = self.evaluate(node.operand, env)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlError(f"unary {node.op} requires a number, got {value!r}")
        return -value if node.op == "-" else value

    def _eval_binary(self, node: ast.Binary, env: Environment) -> Any:
        if node.op == "AND":
            left = self.evaluate(node.left, env)
            if left is False:
                return False
            right = self.evaluate(node.right, env)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return is_truthy(left) and is_truthy(right)
        if node.op == "OR":
            left = self.evaluate(node.left, env)
            if left is True:
                return True
            right = self.evaluate(node.right, env)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return is_truthy(left) or is_truthy(right)
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(node.op, left, right)
        return _arith(node.op, left, right)

    def _eval_isnull(self, node: ast.IsNull, env: Environment) -> bool:
        value = self.evaluate(node.operand, env)
        return (value is not None) if node.negated else (value is None)

    def _eval_between(self, node: ast.Between, env: Environment) -> Optional[bool]:
        value = self.evaluate(node.operand, env)
        low = self.evaluate(node.low, env)
        high = self.evaluate(node.high, env)
        lower_ok = _compare(">=", value, low)
        upper_ok = _compare("<=", value, high)
        if lower_ok is None or upper_ok is None:
            return None
        result = lower_ok and upper_ok
        return (not result) if node.negated else result

    def _eval_like(self, node: ast.Like, env: Environment) -> Optional[bool]:
        result = like_match(self.evaluate(node.operand, env),
                            self.evaluate(node.pattern, env))
        if result is None:
            return None
        return (not result) if node.negated else result

    def _eval_inlist(self, node: ast.InList, env: Environment) -> Optional[bool]:
        value = self.evaluate(node.operand, env)
        if value is None:
            return None
        saw_null = False
        for item in node.items:
            candidate = self.evaluate(item, env)
            if candidate is None:
                saw_null = True
                continue
            if _compare("=", value, candidate) is True:
                return not node.negated
        if saw_null:
            return None
        return node.negated

    def _eval_insubquery(self, node: ast.InSubquery, env: Environment) -> Optional[bool]:
        value = self.evaluate(node.operand, env)
        if value is None:
            return None
        rows = self._execute_subquery(node.subquery, env)
        saw_null = False
        for row in rows:
            candidate = row[0]
            if candidate is None:
                saw_null = True
            elif _compare("=", value, candidate) is True:
                return not node.negated
        if saw_null:
            return None
        return node.negated

    def _eval_exists(self, node: ast.Exists, env: Environment) -> bool:
        rows = self._execute_subquery(node.subquery, env)
        found = bool(rows)
        return (not found) if node.negated else found

    def _eval_scalarsubquery(self, node: ast.ScalarSubquery, env: Environment) -> Any:
        rows = self._execute_subquery(node.subquery, env)
        if not rows:
            return None
        if len(rows) > 1:
            raise SqlError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise SqlError("scalar subquery must return exactly one column")
        return rows[0][0]

    def _eval_case(self, node: ast.Case, env: Environment) -> Any:
        if node.operand is not None:
            subject = self.evaluate(node.operand, env)
            for when in node.whens:
                if _compare("=", subject, self.evaluate(when.condition, env)) is True:
                    return self.evaluate(when.result, env)
        else:
            for when in node.whens:
                if is_truthy(self.evaluate(when.condition, env)):
                    return self.evaluate(when.result, env)
        if node.default is not None:
            return self.evaluate(node.default, env)
        return None

    def _eval_cast(self, node: ast.Cast, env: Environment) -> Any:
        value = self.evaluate(node.operand, env)
        target = TYPE_SYNONYMS.get(node.type_name)
        if target is None:
            raise SqlError(f"CAST to unknown type {node.type_name!r}")
        return coerce(value, target)

    def _eval_functioncall(self, node: ast.FunctionCall, env: Environment) -> Any:
        if is_aggregate(node.name):
            if id(node) in env.aggregates:
                return env.aggregates[id(node)]
            raise SqlError(
                f"aggregate {node.name} used outside GROUP BY context")
        fn = SCALAR_FUNCTIONS.get(node.name)
        if fn is None:
            raise SqlError(f"unknown function {node.name}")
        args = [self.evaluate(arg, env) for arg in node.args]
        return fn(*args)

    # -- helpers --------------------------------------------------------------

    def _execute_subquery(self, select: ast.Select, env: Environment) -> list[tuple]:
        if self._run_subquery is None:
            raise SqlError("subqueries are not available in this context")
        return self._run_subquery(select, env)


def collect_aggregates(expression: Optional[ast.Expression]) -> list[ast.FunctionCall]:
    """All aggregate FunctionCall nodes inside *expression* (not descending
    into subqueries, which are evaluated in their own scope)."""
    found: list[ast.FunctionCall] = []

    def walk(node: Any) -> None:
        if node is None:
            return
        if isinstance(node, ast.FunctionCall):
            if is_aggregate(node.name):
                found.append(node)
                return  # nested aggregates are invalid; don't descend
            for arg in node.args:
                walk(arg)
            return
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            return
        if isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.Case):
            walk(node.operand)
            for when in node.whens:
                walk(when.condition)
                walk(when.result)
            walk(node.default)

    walk(expression)
    return found
