"""The relational database facade.

:class:`Database` binds the lexer/parser, catalog, storage, planner and
executor into a single object with an ``execute(sql, params)`` entry
point, vendor dialects, and snapshot-based transactions.

Example::

    db = Database("hospital", dialect="oracle")
    db.execute("CREATE TABLE patients (id INT PRIMARY KEY, name VARCHAR(40))")
    db.execute("INSERT INTO patients VALUES (?, ?)", [1, "Alice"])
    result = db.execute("SELECT name FROM patients WHERE id = 1")
    assert result.scalar() == "Alice"
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional

from repro.errors import CatalogError, SqlError, TransactionError
from repro.sql import ast
from repro.sql.catalog import Catalog, Column, IndexDef, TableSchema
from repro.sql.dialect import GENERIC, Dialect, get_dialect
from repro.sql.executor import Executor
from repro.sql.parser import Parser
from repro.sql.result import ResultSet
from repro.sql.storage import Table


class Database:
    """One in-memory relational database with a vendor dialect."""

    def __init__(self, name: str, dialect: str | Dialect = GENERIC):
        self.name = name
        self.dialect = get_dialect(dialect) if isinstance(dialect, str) else dialect
        self.catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ast.Statement] = {}
        self._view_display_names: list[str] = []
        self._statement_cache: dict[str, ast.Statement] = {}
        self._snapshot: Optional[dict[str, tuple[dict, int]]] = None
        self._lock = threading.RLock()
        #: Cumulative statement counter, surfaced through metadata.
        self.statements_executed = 0

    # ------------------------------------------------------------- metadata --

    @property
    def banner(self) -> str:
        """Vendor banner, e.g. ``Oracle 8.0.5``."""
        return self.dialect.banner

    def table_names(self) -> list[str]:
        """Names of all tables, in creation order."""
        return self.catalog.table_names()

    def view_names(self) -> list[str]:
        """Names of all views, in creation order."""
        return list(self._view_display_names)

    def view_select(self, name: str):
        """The SELECT behind a view, or None when *name* is not a view
        (called by the planner to expand view references)."""
        return self._views.get(name.lower())

    def table_for(self, name: str) -> Table:
        """Storage object for *name* (used by planner/executor)."""
        key = name.lower()
        table = self._tables.get(key)
        if table is None:
            raise CatalogError(f"no table {name!r} in database {self.name!r}")
        return table

    def schema_of(self, name: str) -> TableSchema:
        """Schema of one table."""
        return self.catalog.table(name)

    def row_count(self, name: str) -> int:
        """Number of rows currently stored in *name*."""
        return len(self.table_for(name))

    # -------------------------------------------------------------- execution --

    def execute(self, sql: str, params: Optional[list[Any]] = None) -> ResultSet:
        """Parse and execute one SQL statement."""
        with self._lock:
            statement = self._parse(sql)
            return self._execute_statement(statement, params)

    def executemany(self, sql: str, rows: Iterable[list[Any]]) -> int:
        """Execute one parameterized statement once per parameter row."""
        total = 0
        with self._lock:
            statement = self._parse(sql)
            for params in rows:
                result = self._execute_statement(statement, list(params))
                total += result.rowcount
        return total

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Execute a ``;``-separated script, returning one result per statement."""
        with self._lock:
            statements = Parser(sql).parse_script()
            return [self._execute_statement(s, None) for s in statements]

    def _parse(self, sql: str) -> ast.Statement:
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = Parser(sql).parse_statement()
            if len(self._statement_cache) > 512:
                self._statement_cache.clear()
            self._statement_cache[sql] = statement
        return statement

    def _execute_statement(self, statement: ast.Statement,
                           params: Optional[list[Any]]) -> ResultSet:
        self.statements_executed += 1
        if isinstance(statement, ast.Explain):
            from repro.sql.explain import explain_statement_lines
            lines = explain_statement_lines(statement.statement, storage=self)
            return ResultSet(columns=["plan"],
                             rows=[(line,) for line in lines])
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        if isinstance(statement, ast.AlterTableAddColumn):
            return self._alter_add_column(statement)
        if isinstance(statement, ast.CreateView):
            return self._create_view(statement)
        if isinstance(statement, ast.DropView):
            return self._drop_view(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._create_index(statement)
        if isinstance(statement, ast.DropIndex):
            return self._drop_index(statement)
        if isinstance(statement, ast.BeginTransaction):
            self.begin()
            return ResultSet.empty()
        if isinstance(statement, ast.Commit):
            self.commit()
            return ResultSet.empty()
        if isinstance(statement, ast.Rollback):
            self.rollback()
            return ResultSet.empty()
        executor = Executor(self, params=params)
        return executor.execute(statement)

    # ----------------------------------------------------------------- DDL --

    def _create_table(self, statement: ast.CreateTable) -> ResultSet:
        if statement.name.lower() in self._views:
            raise CatalogError(
                f"a view named {statement.name!r} already exists")
        if self.catalog.has_table(statement.name):
            if statement.if_not_exists:
                return ResultSet.empty()
            raise CatalogError(f"table {statement.name!r} already exists")
        columns = []
        for column_def in statement.columns:
            sql_type = self.dialect.resolve_type(column_def.type_name)
            default = None
            if column_def.default is not None:
                if not isinstance(column_def.default, ast.Literal):
                    raise SqlError("only literal defaults are supported")
                default = column_def.default.value
            columns.append(Column(
                name=column_def.name,
                sql_type=sql_type,
                primary_key=column_def.primary_key,
                not_null=column_def.not_null,
                unique=column_def.unique,
                default=default,
            ))
        schema = TableSchema(name=statement.name, columns=columns,
                             primary_key=list(statement.primary_key))
        self.catalog.add_table(schema)
        self._tables[statement.name.lower()] = Table(schema)
        return ResultSet.empty()

    def _drop_table(self, statement: ast.DropTable) -> ResultSet:
        if not self.catalog.has_table(statement.name):
            if statement.if_exists:
                return ResultSet.empty()
            raise CatalogError(f"no table {statement.name!r}")
        self.catalog.drop_table(statement.name)
        del self._tables[statement.name.lower()]
        return ResultSet.empty()

    def _alter_add_column(self, statement: ast.AlterTableAddColumn) -> ResultSet:
        table = self.table_for(statement.table)
        column_def = statement.column
        if column_def.primary_key:
            raise SqlError("cannot ADD COLUMN with PRIMARY KEY")
        default = None
        if column_def.default is not None:
            if not isinstance(column_def.default, ast.Literal):
                raise SqlError("only literal defaults are supported")
            default = column_def.default.value
        column = Column(
            name=column_def.name,
            sql_type=self.dialect.resolve_type(column_def.type_name),
            not_null=column_def.not_null,
            unique=column_def.unique,
            default=default)
        table.add_column(column, default)
        if column.unique:
            table.add_index(f"__unique_{column.name.lower()}__",
                            [column.name], unique=True)
        return ResultSet.empty()

    def _create_view(self, statement: ast.CreateView) -> ResultSet:
        key = statement.name.lower()
        if self.catalog.has_table(statement.name):
            raise CatalogError(
                f"a table named {statement.name!r} already exists")
        if key in self._views:
            raise CatalogError(f"view {statement.name!r} already exists")
        self._views[key] = statement.select
        self._view_display_names.append(statement.name)
        return ResultSet.empty()

    def _drop_view(self, statement: ast.DropView) -> ResultSet:
        key = statement.name.lower()
        if key not in self._views:
            if statement.if_exists:
                return ResultSet.empty()
            raise CatalogError(f"no view {statement.name!r}")
        del self._views[key]
        self._view_display_names = [
            name for name in self._view_display_names
            if name.lower() != key]
        return ResultSet.empty()

    def _create_index(self, statement: ast.CreateIndex) -> ResultSet:
        self.catalog.add_index(IndexDef(
            name=statement.name, table=statement.table,
            columns=statement.columns, unique=statement.unique))
        table = self.table_for(statement.table)
        table.add_index(statement.name.lower(), statement.columns,
                        statement.unique)
        return ResultSet.empty()

    def _drop_index(self, statement: ast.DropIndex) -> ResultSet:
        index = self.catalog.drop_index(statement.name)
        self.table_for(index.table).drop_index(statement.name.lower())
        return ResultSet.empty()

    # ---------------------------------------------------------- transactions --

    @property
    def in_transaction(self) -> bool:
        """True between ``BEGIN`` and ``COMMIT``/``ROLLBACK``."""
        return self._snapshot is not None

    def begin(self) -> None:
        """Start a transaction (snapshot every table)."""
        with self._lock:
            if self._snapshot is not None:
                raise TransactionError("transaction already in progress")
            self._snapshot = {
                name: (table.snapshot(), table.next_row_id)
                for name, table in self._tables.items()
            }

    def commit(self) -> None:
        """Make the changes since ``begin`` permanent."""
        with self._lock:
            if self._snapshot is None:
                raise TransactionError("no transaction in progress")
            self._snapshot = None

    def rollback(self) -> None:
        """Undo every change since ``begin``.

        Tables created inside the transaction are dropped; tables dropped
        inside it are *not* resurrected (DDL is only partially
        transactional, as in many real engines).
        """
        with self._lock:
            if self._snapshot is None:
                raise TransactionError("no transaction in progress")
            for name in list(self._tables):
                if name not in self._snapshot:
                    schema = self._tables[name].schema
                    self.catalog.drop_table(schema.name)
                    del self._tables[name]
            for name, (rows, next_row_id) in self._snapshot.items():
                table = self._tables.get(name)
                if table is not None:
                    table.restore(rows, next_row_id)
            self._snapshot = None

    # ------------------------------------------------------------ bulk loading --

    def load_rows(self, table_name: str, rows: Iterable[Iterable[Any]]) -> int:
        """Insert pre-shaped rows directly (bypasses SQL, keeps validation)."""
        table = self.table_for(table_name)
        count = 0
        with self._lock:
            for row in rows:
                table.insert(list(row))
                count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Database(name={self.name!r}, dialect={self.dialect.name!r}, "
                f"tables={len(self._tables)})")
