"""EXPLAIN rendering: a human-readable access-plan description.

``EXPLAIN <statement>`` returns one row per plan line, e.g.::

    SELECT
      IndexLookup(orders) key=(id)
      Filter: amount > 100
      Aggregate: group by customer
      Sort: total DESC
"""

from __future__ import annotations

from repro.sql import ast
from repro.sql.planner import (DerivedTable, HashJoin, IndexLookup,
                               NestedLoopJoin, Planner, RowSource, TableScan)


def _render_expression(expression: ast.Expression) -> str:
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    if isinstance(expression, ast.ColumnRef):
        return str(expression)
    if isinstance(expression, ast.Param):
        return "?"
    if isinstance(expression, ast.Unary):
        return f"{expression.op} {_render_expression(expression.operand)}"
    if isinstance(expression, ast.Binary):
        return (f"{_render_expression(expression.left)} {expression.op} "
                f"{_render_expression(expression.right)}")
    if isinstance(expression, ast.IsNull):
        negation = " NOT" if expression.negated else ""
        return f"{_render_expression(expression.operand)} IS{negation} NULL"
    if isinstance(expression, ast.Like):
        return (f"{_render_expression(expression.operand)} LIKE "
                f"{_render_expression(expression.pattern)}")
    if isinstance(expression, ast.Between):
        return (f"{_render_expression(expression.operand)} BETWEEN "
                f"{_render_expression(expression.low)} AND "
                f"{_render_expression(expression.high)}")
    if isinstance(expression, ast.InList):
        items = ", ".join(_render_expression(i) for i in expression.items)
        return f"{_render_expression(expression.operand)} IN ({items})"
    if isinstance(expression, ast.FunctionCall):
        args = ", ".join(_render_expression(a) for a in expression.args)
        return f"{expression.name}({args})"
    if isinstance(expression, ast.Star):
        return "*"
    if isinstance(expression, ast.Cast):
        return (f"CAST({_render_expression(expression.operand)} AS "
                f"{expression.type_name})")
    if isinstance(expression, (ast.ScalarSubquery, ast.InSubquery,
                               ast.Exists)):
        return "(subquery)"
    if isinstance(expression, ast.Case):
        return "CASE ... END"
    return type(expression).__name__


def _render_source(source: RowSource, indent: int,
                   lines: list[str], storage=None) -> None:
    pad = "  " * indent
    if isinstance(source, TableScan):
        lines.append(f"{pad}SeqScan({source.table})"
                     + (f" as {source.binding}"
                        if source.binding != source.table else ""))
    elif isinstance(source, IndexLookup):
        keys = ", ".join(source.columns)
        lines.append(f"{pad}IndexLookup({source.table}) key=({keys})")
    elif isinstance(source, DerivedTable):
        lines.append(f"{pad}Derived({source.binding})")
        for line in explain_statement_lines(source.select, storage):
            lines.append(f"{pad}  {line}")
    elif isinstance(source, HashJoin):
        keys = ", ".join(
            f"{_render_expression(l)} = {_render_expression(r)}"
            for l, r in zip(source.left_keys, source.right_keys))
        lines.append(f"{pad}HashJoin[{source.kind}] on {keys}")
        _render_source(source.left, indent + 1, lines, storage)
        _render_source(source.right, indent + 1, lines, storage)
    elif isinstance(source, NestedLoopJoin):
        condition = (f" on {_render_expression(source.condition)}"
                     if source.condition is not None else "")
        using = f" using ({', '.join(source.using)})" if source.using else ""
        lines.append(f"{pad}NestedLoop[{source.kind}]{condition}{using}")
        _render_source(source.left, indent + 1, lines, storage)
        _render_source(source.right, indent + 1, lines, storage)
    else:  # pragma: no cover - future sources
        lines.append(f"{pad}{type(source).__name__}")


def explain_statement_lines(statement: ast.Statement,
                            storage=None) -> list[str]:
    """Plan description lines for *statement* (SELECT trees are planned
    against *storage* when given, so index choices are visible)."""
    if isinstance(statement, ast.Union):
        lines = [f"Union[{'ALL' if statement.all else 'DISTINCT'}]"]
        for side in (statement.left, statement.right):
            for line in explain_statement_lines(side, storage):
                lines.append(f"  {line}")
        return lines
    if isinstance(statement, ast.Select):
        return _explain_select(statement, storage)
    if isinstance(statement, ast.Insert):
        return [f"Insert({statement.table})"]
    if isinstance(statement, ast.Update):
        return [f"Update({statement.table})"]
    if isinstance(statement, ast.Delete):
        return [f"Delete({statement.table})"]
    return [type(statement).__name__]


def _explain_select(select: ast.Select, storage) -> list[str]:
    lines = ["Select" + (" DISTINCT" if select.distinct else "")]
    if select.from_item is not None:
        if storage is not None:
            plan = Planner(storage).plan(select)
            _render_source(plan.source, 1, lines, storage)
            if plan.residual_where is not None:
                lines.append(
                    f"  Filter: {_render_expression(plan.residual_where)}")
        else:
            lines.append("  (unplanned FROM)")
    elif select.where is not None:
        lines.append(f"  Filter: {_render_expression(select.where)}")
    if select.from_item is not None and storage is None and select.where:
        lines.append(f"  Filter: {_render_expression(select.where)}")
    if select.group_by:
        keys = ", ".join(_render_expression(e) for e in select.group_by)
        lines.append(f"  Aggregate: group by {keys}")
    elif any(True for item in select.items
             if isinstance(item.expression, ast.FunctionCall)
             and item.expression.name in ("COUNT", "SUM", "AVG", "MIN",
                                          "MAX")):
        lines.append("  Aggregate: scalar")
    if select.having is not None:
        lines.append(f"  Having: {_render_expression(select.having)}")
    if select.order_by:
        keys = ", ".join(
            f"{_render_expression(o.expression)}"
            f"{'' if o.ascending else ' DESC'}" for o in select.order_by)
        lines.append(f"  Sort: {keys}")
    if select.limit is not None:
        lines.append(f"  Limit: {_render_expression(select.limit)}")
    return lines
