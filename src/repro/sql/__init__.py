"""A from-scratch in-memory relational engine with vendor dialects.

This package stands in for the Oracle, mSQL, DB2 and Sybase backends of
the paper's data layer.  Public surface:

* :class:`~repro.sql.engine.Database` — create tables, execute SQL.
* :class:`~repro.sql.result.ResultSet` — materialized query results.
* :func:`~repro.sql.dialect.get_dialect` and the dialect constants.
"""

from repro.sql.dialect import (DB2, DIALECTS, GENERIC, MSQL, ORACLE, SYBASE,
                               Dialect, get_dialect)
from repro.sql.engine import Database
from repro.sql.result import ResultSet
from repro.sql.types import SqlType

__all__ = [
    "Database",
    "ResultSet",
    "SqlType",
    "Dialect",
    "get_dialect",
    "DIALECTS",
    "ORACLE",
    "MSQL",
    "DB2",
    "SYBASE",
    "GENERIC",
]
