"""Hand-written SQL tokenizer.

Supports:

* identifiers (bare, ``"quoted"``, or dialect-specific ``[bracketed]``),
* integer and real literals (including exponents),
* single-quoted string literals with ``''`` escaping,
* line comments (``-- ...``) and block comments (``/* ... */``),
* positional parameters ``?``,
* the operator and punctuation sets of :mod:`repro.sql.tokens`.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType


class Lexer:
    """Tokenizes a SQL string into a list of :class:`Token`."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return all tokens, terminated by a single EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenType.EOF, None, self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        consumed = self._text[self._pos:self._pos + count]
        for char in consumed:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self._line, self._column)

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        char = self._peek()

        if char.isalpha() or char == "_":
            return self._lex_word(line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if char == "'":
            return self._lex_string(line, column)
        if char == '"':
            return self._lex_quoted_identifier(line, column, closer='"')
        if char == "[":
            return self._lex_quoted_identifier(line, column, closer="]")
        if char == "?":
            self._advance()
            return Token(TokenType.PARAM, "?", line, column)
        for op in OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        if char in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCT, char, line, column)
        raise self._error(f"unexpected character {char!r}")

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self._text[start:self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENTIFIER, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        is_real = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead).isdigit():
                is_real = True
                self._advance(lookahead)
                while self._peek().isdigit():
                    self._advance()
        text = self._text[start:self._pos]
        if is_real:
            return Token(TokenType.REAL, float(text), line, column)
        return Token(TokenType.INTEGER, int(text), line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise self._error("unterminated string literal")
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.STRING, "".join(parts), line, column)
            parts.append(char)
            self._advance()

    def _lex_quoted_identifier(self, line: int, column: int, closer: str) -> Token:
        self._advance()  # opening quote/bracket
        start = self._pos
        while self._pos < len(self._text) and self._peek() != closer:
            self._advance()
        if self._pos >= len(self._text):
            raise self._error("unterminated quoted identifier")
        name = self._text[start:self._pos]
        self._advance()  # closer
        if not name:
            raise self._error("empty quoted identifier")
        return Token(TokenType.IDENTIFIER, name, line, column)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize *text* in one call."""
    return Lexer(text).tokenize()
