"""Vendor dialects for the relational engine.

The paper's data layer spans Oracle, mSQL, DB2 and Sybase.  The engine
core speaks one canonical SQL; a :class:`Dialect` adapts the surface
details a wrapper has to care about when it *generates* SQL for a given
backend, and registers extra type-name spellings accepted in DDL:

* extra type synonyms (``VARCHAR2``/``NUMBER`` on Oracle, ...),
* identifier quoting style,
* string-literal escaping,
* whether ``LIMIT`` is supported natively (mSQL-era engines differed),
* the product banner reported through connection metadata.

Dialects deliberately do **not** change runtime semantics — that keeps
cross-backend query results comparable, which is what the WebFINDIT
wrapper layer relies on.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SqlError
from repro.sql.types import TYPE_SYNONYMS, SqlType


@dataclass(frozen=True)
class Dialect:
    """Static description of one SQL vendor surface."""

    name: str
    product: str
    version: str
    type_synonyms: dict[str, SqlType] = field(default_factory=dict)
    identifier_quote: str = '"'
    supports_limit: bool = True
    upper_cases_unquoted: bool = False

    def resolve_type(self, type_name: str) -> SqlType:
        """Map a vendor type spelling to a canonical :class:`SqlType`."""
        upper = type_name.upper()
        if upper in self.type_synonyms:
            return self.type_synonyms[upper]
        if upper in TYPE_SYNONYMS:
            return TYPE_SYNONYMS[upper]
        raise SqlError(f"{self.product}: unknown type {type_name!r}")

    def quote_identifier(self, name: str) -> str:
        """Quote *name* for inclusion in generated SQL."""
        quote = self.identifier_quote
        if quote == "[":
            return f"[{name}]"
        escaped = name.replace(quote, quote * 2)
        return f"{quote}{escaped}{quote}"

    def format_literal(self, value: Any) -> str:
        """Render a Python value as a SQL literal in this dialect."""
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, datetime.date):
            return f"'{value.isoformat()}'"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        raise SqlError(f"cannot format {value!r} as a SQL literal")

    @property
    def banner(self) -> str:
        """Human-readable product banner, as JDBC metadata would expose."""
        return f"{self.product} {self.version}"


ORACLE = Dialect(
    name="oracle",
    product="Oracle",
    version="8.0.5",
    type_synonyms={
        "VARCHAR2": SqlType.TEXT,
        "NVARCHAR2": SqlType.TEXT,
        "CLOB": SqlType.TEXT,
        "LONG": SqlType.TEXT,
        "NUMBER": SqlType.REAL,
        "BINARY_INTEGER": SqlType.INTEGER,
    },
    upper_cases_unquoted=True,
)

MSQL = Dialect(
    name="msql",
    product="mSQL",
    version="2.0.11",
    type_synonyms={
        "UINT": SqlType.INTEGER,
        "MONEY": SqlType.REAL,
    },
    supports_limit=True,
)

DB2 = Dialect(
    name="db2",
    product="DB2 Universal Database",
    version="5.2",
    type_synonyms={
        "VARGRAPHIC": SqlType.TEXT,
        "LONGVARCHAR": SqlType.TEXT,
        "DOUBLE_PRECISION": SqlType.REAL,
    },
    upper_cases_unquoted=True,
)

SYBASE = Dialect(
    name="sybase",
    product="Sybase SQL Server",
    version="11.5",
    type_synonyms={
        "TINYINT": SqlType.INTEGER,
        "MONEY": SqlType.REAL,
        "NTEXT": SqlType.TEXT,
    },
    identifier_quote="[",
)

GENERIC = Dialect(name="generic", product="ReproSQL", version="1.0")

#: All built-in dialects, keyed by lower-case name.
DIALECTS: dict[str, Dialect] = {
    d.name: d for d in (ORACLE, MSQL, DB2, SYBASE, GENERIC)
}


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by name (case-insensitive)."""
    dialect = DIALECTS.get(name.lower())
    if dialect is None:
        raise SqlError(f"unknown SQL dialect {name!r}; "
                       f"known: {sorted(DIALECTS)}")
    return dialect
