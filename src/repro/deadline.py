"""Per-call deadlines and the call-scoped resilience context.

A :class:`Deadline` is one *total* time budget shared by every hop of a
logical operation: a discovery query hands the same deadline to every
co-database consultation it fans out, and each consultation's GIOP
round-trips bound their socket timeouts by whatever budget is left —
the paper's "educate the user from whatever metadata *is* reachable"
only works if one stalled site cannot eat the whole query.

Because the budget has to cross layers that must not know about each
other (the discovery engine sits far above :class:`~repro.orb.
transport.TcpTransport`), it travels *implicitly*: :func:`call_policy`
installs a thread-local :class:`CallPolicy` that lower layers read with
:func:`current_policy`.  The context also carries the **idempotence
flag**: a transport may transparently resend a request on a fresh
connection only when the caller has declared the call idempotent —
co-database metadata reads are, data-level invocations are not.

This module sits below both ``repro.orb`` and ``repro.core`` on purpose
(it depends only on ``repro.errors``); the policy layer in
:mod:`repro.core.resilience` re-exports everything here.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceeded


class Deadline:
    """An absolute expiry shared by every hop of one logical call.

    Immutable after construction, so one instance can be read from many
    fan-out worker threads without locking.  *clock* is injectable for
    tests (same convention as :class:`~repro.core.metacache.
    MetadataCache`).
    """

    __slots__ = ("budget", "_clock", "_expires_at")

    def __init__(self, budget: float,
                 clock: Callable[[], float] = time.monotonic):
        self.budget = budget
        self._clock = clock
        self._expires_at = clock() + budget

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def require(self, what: str = "call") -> float:
        """Remaining budget, or :class:`DeadlineExceeded` if spent."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                f"deadline exhausted before {what} "
                f"(budget was {self.budget:.3f}s)")
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:.3f}, " \
               f"remaining={self.remaining():.3f})"


#: Traffic classes.  Interactive requests are user-facing queries; the
#: background class tags maintenance traffic (anti-entropy
#: ``reconcile_replicas``, snapshot catch-up) that an overloaded server
#: sheds *first* so brownouts degrade housekeeping before user latency.
INTERACTIVE = "interactive"
BACKGROUND = "background"


class RetryBudget:
    """A token bucket capping the retry:first-attempt ratio per key.

    Every first attempt deposits *ratio* tokens into the bucket for its
    key (capped at *burst*); every retry withdraws one whole token.
    Long-run, retries therefore never exceed ``ratio`` of offered load
    no matter how many callers share the budget — the property that
    breaks the metastable feedback loop where a saturated server's
    refusals *create* more traffic.  Buckets start full so a cold
    client can still recover from a transient blip.

    Thread-safe; one instance is meant to be shared by every caller
    talking to the same federation (the cap is only meaningful when it
    is global).
    """

    def __init__(self, ratio: float = 0.1, burst: float = 10.0):
        if ratio < 0.0:
            raise ValueError("retry budget ratio must be >= 0")
        if burst < 1.0:
            raise ValueError("retry budget burst must be >= 1")
        self.ratio = ratio
        self.burst = burst
        self._tokens: dict[str, float] = {}
        self._lock = threading.Lock()
        self.attempts = 0
        self.granted = 0
        self.denied = 0

    def note_attempt(self, key: Optional[str] = None) -> None:
        """Record a first attempt, refilling *key*'s bucket."""
        key = key or "*"
        with self._lock:
            self.attempts += 1
            self._tokens[key] = min(
                self.burst, self._tokens.get(key, self.burst) + self.ratio)

    def try_acquire(self, key: Optional[str] = None) -> bool:
        """Withdraw one retry token, or report the budget exhausted."""
        key = key or "*"
        with self._lock:
            tokens = self._tokens.get(key, self.burst)
            if tokens >= 1.0:
                self._tokens[key] = tokens - 1.0
                self.granted += 1
                return True
            self.denied += 1
            return False

    def tokens(self, key: Optional[str] = None) -> float:
        with self._lock:
            return self._tokens.get(key or "*", self.burst)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {"attempts": self.attempts, "granted": self.granted,
                    "denied": self.denied, "ratio": self.ratio,
                    "burst": self.burst}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryBudget(ratio={self.ratio}, burst={self.burst}, "
                f"granted={self.granted}, denied={self.denied})")


@dataclass(frozen=True)
class CallPolicy:
    """What the layers below may assume about the current call."""

    #: Total budget for the logical operation this call is part of
    #: (None: unbounded — the transport's own default timeout applies).
    deadline: Optional[Deadline] = None
    #: True when re-executing the request server-side is harmless, so a
    #: transport may transparently resend it after an ambiguous failure.
    #: Defaults to False: never duplicate work unless the caller
    #: vouches for it.
    idempotent: bool = False
    #: Which shedding class the server should file this call under.
    traffic_class: str = INTERACTIVE
    #: Budget consulted by transport-level resends (stale pooled
    #: connections, dead pipelined stripes) so even "transparent"
    #: retries count against the global retry cap.  None: uncapped.
    retry_budget: Optional[RetryBudget] = None
    #: 1 for the first attempt of the logical call; policy-level
    #: retries (:meth:`~repro.core.resilience.RetryPolicy.call`)
    #: re-enter the transport with the attempt index, so the
    #: transport refills the retry budget only for genuine first
    #: attempts — a resend must never deposit the tokens that would
    #: fund further resends.
    attempt: int = 1


_DEFAULT_POLICY = CallPolicy()
_state = threading.local()


def current_policy() -> CallPolicy:
    """The innermost :func:`call_policy` context on this thread."""
    return getattr(_state, "policy", _DEFAULT_POLICY)


@contextmanager
def call_policy(deadline: Optional[Deadline] = None,
                idempotent: Optional[bool] = None,
                traffic_class: Optional[str] = None,
                retry_budget: Optional[RetryBudget] = None,
                attempt: Optional[int] = None,
                ) -> Iterator[CallPolicy]:
    """Install a call policy for the duration of the ``with`` block.

    Unspecified fields inherit from the enclosing context, so a client
    stub can declare ``idempotent=True`` without knowing whether a
    discovery query above it already set a deadline.
    """
    previous = current_policy()
    merged = CallPolicy(
        deadline=deadline if deadline is not None else previous.deadline,
        idempotent=previous.idempotent if idempotent is None else idempotent,
        traffic_class=(previous.traffic_class if traffic_class is None
                       else traffic_class),
        retry_budget=(previous.retry_budget if retry_budget is None
                      else retry_budget),
        attempt=previous.attempt if attempt is None else attempt)
    _state.policy = merged
    try:
        yield merged
    finally:
        _state.policy = previous
