"""Per-call deadlines and the call-scoped resilience context.

A :class:`Deadline` is one *total* time budget shared by every hop of a
logical operation: a discovery query hands the same deadline to every
co-database consultation it fans out, and each consultation's GIOP
round-trips bound their socket timeouts by whatever budget is left —
the paper's "educate the user from whatever metadata *is* reachable"
only works if one stalled site cannot eat the whole query.

Because the budget has to cross layers that must not know about each
other (the discovery engine sits far above :class:`~repro.orb.
transport.TcpTransport`), it travels *implicitly*: :func:`call_policy`
installs a thread-local :class:`CallPolicy` that lower layers read with
:func:`current_policy`.  The context also carries the **idempotence
flag**: a transport may transparently resend a request on a fresh
connection only when the caller has declared the call idempotent —
co-database metadata reads are, data-level invocations are not.

This module sits below both ``repro.orb`` and ``repro.core`` on purpose
(it depends only on ``repro.errors``); the policy layer in
:mod:`repro.core.resilience` re-exports everything here.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceeded


class Deadline:
    """An absolute expiry shared by every hop of one logical call.

    Immutable after construction, so one instance can be read from many
    fan-out worker threads without locking.  *clock* is injectable for
    tests (same convention as :class:`~repro.core.metacache.
    MetadataCache`).
    """

    __slots__ = ("budget", "_clock", "_expires_at")

    def __init__(self, budget: float,
                 clock: Callable[[], float] = time.monotonic):
        self.budget = budget
        self._clock = clock
        self._expires_at = clock() + budget

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def require(self, what: str = "call") -> float:
        """Remaining budget, or :class:`DeadlineExceeded` if spent."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                f"deadline exhausted before {what} "
                f"(budget was {self.budget:.3f}s)")
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:.3f}, " \
               f"remaining={self.remaining():.3f})"


@dataclass(frozen=True)
class CallPolicy:
    """What the layers below may assume about the current call."""

    #: Total budget for the logical operation this call is part of
    #: (None: unbounded — the transport's own default timeout applies).
    deadline: Optional[Deadline] = None
    #: True when re-executing the request server-side is harmless, so a
    #: transport may resend it after an ambiguous failure.  Defaults to
    #: False: never duplicate work unless the caller vouches for it.
    idempotent: bool = False


_DEFAULT_POLICY = CallPolicy()
_state = threading.local()


def current_policy() -> CallPolicy:
    """The innermost :func:`call_policy` context on this thread."""
    return getattr(_state, "policy", _DEFAULT_POLICY)


@contextmanager
def call_policy(deadline: Optional[Deadline] = None,
                idempotent: Optional[bool] = None) -> Iterator[CallPolicy]:
    """Install a call policy for the duration of the ``with`` block.

    Unspecified fields inherit from the enclosing context, so a client
    stub can declare ``idempotent=True`` without knowing whether a
    discovery query above it already set a deadline.
    """
    previous = current_policy()
    merged = CallPolicy(
        deadline=deadline if deadline is not None else previous.deadline,
        idempotent=previous.idempotent if idempotent is None else idempotent)
    _state.policy = merged
    try:
        yield merged
    finally:
        _state.policy = previous
