"""Recursive-descent parser for WebTassili.

Multi-word names (``Royal Brisbane Hospital``) are collected greedily
until the next contextual keyword, matching the prose-like statement
style shown throughout the paper.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import WebTassiliSyntaxError
from repro.webtassili import ast
from repro.webtassili.lexer import KEYWORDS, Token, TokenType, tokenize


class Parser:
    """Parses one WebTassili statement."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token plumbing ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_word(self, *words: str) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.WORD and token.upper in words:
            self._advance()
            return token.upper
        return None

    def _expect_word(self, *words: str) -> str:
        accepted = self._accept_word(*words)
        if accepted is None:
            raise self._error(f"expected {' or '.join(words)}")
        return accepted

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == punct:
            self._advance()
            return True
        return False

    def _error(self, message: str) -> WebTassiliSyntaxError:
        token = self._peek()
        found = token.value if token.type is not TokenType.EOF else "<end>"
        return WebTassiliSyntaxError(f"{message}, found {found!r}",
                                     column=token.position)

    def _name(self, stop_words: frozenset[str] = KEYWORDS) -> str:
        """A quoted string, or one-or-more bare words up to a keyword."""
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        words: list[str] = []
        while True:
            token = self._peek()
            if token.type is not TokenType.WORD:
                break
            if token.upper in stop_words and words:
                break
            words.append(str(token.value))
            self._advance()
        if not words:
            raise self._error("expected a name")
        return " ".join(words)

    def _string(self) -> str:
        token = self._peek()
        if token.type is not TokenType.STRING:
            raise self._error("expected a quoted string")
        self._advance()
        return token.value

    def _text_or_name(self) -> str:
        """Information topics may be quoted or bare multi-word."""
        if self._peek().type is TokenType.STRING:
            return self._string()
        return self._name()

    def _value(self) -> Any:
        token = self._peek()
        if token.type is TokenType.STRING or token.type is TokenType.NUMBER:
            self._advance()
            return token.value
        if token.type is TokenType.WORD and token.upper in ("TRUE", "FALSE"):
            self._advance()
            return token.upper == "TRUE"
        if token.type is TokenType.WORD and token.upper == "NULL":
            self._advance()
            return None
        raise self._error("expected a literal value")

    def _finish(self) -> None:
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- entry -------------------------------------------------------------------

    def parse(self) -> ast.WtStatement:
        token = self._peek()
        if token.type is not TokenType.WORD:
            raise self._error("expected a statement")
        keyword = token.upper
        handlers = {
            "FIND": self._find,
            "DISPLAY": self._display,
            "CONNECT": self._connect,
            "QUERY": self._query,
            "INVOKE": self._invoke,
            "CREATE": self._create,
            "DISSOLVE": self._dissolve,
            "ADVERTISE": self._advertise,
            "JOIN": self._join,
            "LEAVE": self._leave,
            "DROP": self._drop,
        }
        handler = handlers.get(keyword)
        if handler is None:
            raise self._error("unknown statement")
        statement = handler()
        self._finish()
        return statement

    # -- exploration -----------------------------------------------------------------

    def _find(self) -> ast.WtStatement:
        self._expect_word("FIND")
        kind = self._expect_word("COALITIONS", "SOURCES", "DATABASES")
        self._expect_word("WITH")
        self._expect_word("INFORMATION")
        information = self._text_or_name()
        structure = self._structure_tail()
        if kind == "COALITIONS":
            return ast.FindCoalitions(information=information,
                                      structure=structure)
        return ast.FindSources(information=information,
                               structure=structure)

    def _structure_tail(self) -> list:
        """Optional ``Structure (name, ...)`` qualifier."""
        if not self._accept_word("STRUCTURE"):
            return []
        if not self._accept_punct("("):
            raise self._error("expected '(' after STRUCTURE")
        names = [self._structure_name()]
        while self._accept_punct(","):
            names.append(self._structure_name())
        if not self._accept_punct(")"):
            raise self._error("expected ')'")
        return names

    def _structure_name(self) -> str:
        """One attribute path or function name (dots allowed)."""
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        parts = []
        while True:
            token = self._peek()
            if token.type is not TokenType.WORD:
                break
            parts.append(str(token.value))
            self._advance()
            if self._peek().type is TokenType.PUNCT \
                    and self._peek().value == ".":
                self._advance()
                parts.append(".")
                continue
            break
        if not parts:
            raise self._error("expected a structure element name")
        return "".join(parts)

    def _display(self) -> ast.WtStatement:
        self._expect_word("DISPLAY")
        what = self._peek()
        if what.type is not TokenType.WORD:
            raise self._error("expected DISPLAY target")
        target = what.upper
        if target == "COALITIONS":
            self._advance()
            self._expect_word("WITH")
            self._expect_word("INFORMATION")
            return ast.FindCoalitions(information=self._text_or_name())
        if target == "SUBCLASSES":
            self._advance()
            self._expect_word("OF")
            self._expect_word("CLASS")
            return ast.DisplaySubclasses(class_name=self._name())
        if target == "INSTANCES":
            self._advance()
            self._expect_word("OF")
            self._expect_word("CLASS")
            return ast.DisplayInstances(class_name=self._name())
        if target in ("DOCUMENT", "DOCUMENTATION"):
            self._advance()
            self._expect_word("OF")
            self._expect_word("INSTANCE")
            instance = self._name()
            class_name = None
            if self._accept_word("OF"):
                self._expect_word("CLASS")
                class_name = self._name()
            return ast.DisplayDocument(instance_name=instance,
                                       class_name=class_name)
        if target == "ACCESS":
            self._advance()
            self._expect_word("INFORMATION")
            self._expect_word("OF")
            self._expect_word("INSTANCE")
            return ast.DisplayAccessInfo(instance_name=self._name())
        if target == "INTERFACE":
            self._advance()
            self._expect_word("OF")
            self._expect_word("INSTANCE")
            return ast.DisplayInterface(instance_name=self._name())
        if target == "STRUCTURE":
            self._advance()
            self._expect_word("OF")
            self._expect_word("INSTANCE")
            return ast.DisplayStructure(instance_name=self._name())
        if target == "SERVICE":
            self._advance()
            self._expect_word("LINKS")
            self._expect_word("OF")
            kind = self._expect_word("COALITION", "DATABASE").lower()
            return ast.DisplayServiceLinks(target_kind=kind, name=self._name())
        raise self._error("unknown DISPLAY target")

    def _connect(self) -> ast.WtStatement:
        self._expect_word("CONNECT")
        self._expect_word("TO")
        kind = self._expect_word("COALITION", "DATABASE").lower()
        return ast.ConnectTo(target_kind=kind, name=self._name())

    # -- data level ----------------------------------------------------------------------

    def _query(self) -> ast.WtStatement:
        self._expect_word("QUERY")
        database = self._name()
        self._expect_word("NATIVE")
        return ast.NativeQuery(database_name=database, text=self._string())

    def _invoke(self) -> ast.WtStatement:
        self._expect_word("INVOKE")
        function_name = self._name()
        self._expect_word("OF")
        self._expect_word("TYPE")
        type_name = self._name()
        self._expect_word("ON")
        on_coalition = self._accept_word("COALITION") is not None
        self._accept_word("DATABASE")
        database = self._name()
        arguments: list[Any] = []
        if self._accept_word("WITH"):
            if not self._accept_punct("("):
                raise self._error("expected '(' after WITH")
            if not self._accept_punct(")"):
                arguments.append(self._value())
                while self._accept_punct(","):
                    arguments.append(self._value())
                if not self._accept_punct(")"):
                    raise self._error("expected ')'")
        return ast.InvokeFunction(function_name=function_name,
                                  type_name=type_name,
                                  database_name=database,
                                  arguments=arguments,
                                  on_coalition=on_coalition)

    # -- maintenance -----------------------------------------------------------------------

    def _create(self) -> ast.WtStatement:
        self._expect_word("CREATE")
        if self._accept_word("COALITION"):
            name = self._name()
            self._expect_word("WITH")
            self._expect_word("INFORMATION")
            return ast.CreateCoalition(name=name,
                                       information=self._text_or_name())
        if self._accept_word("SERVICE"):
            self._expect_word("LINK")
            self._expect_word("FROM")
            from_kind = self._expect_word("COALITION", "DATABASE").lower()
            from_name = self._name()
            self._expect_word("TO")
            to_kind = self._expect_word("COALITION", "DATABASE").lower()
            to_name = self._name()
            description = None
            if self._accept_word("WITH"):
                self._expect_word("DESCRIPTION")
                description = self._string()
            return ast.CreateServiceLink(from_kind=from_kind,
                                         from_name=from_name,
                                         to_kind=to_kind, to_name=to_name,
                                         description=description)
        raise self._error("expected COALITION or SERVICE LINK after CREATE")

    def _dissolve(self) -> ast.WtStatement:
        self._expect_word("DISSOLVE")
        self._expect_word("COALITION")
        return ast.DissolveCoalition(name=self._name())

    def _advertise(self) -> ast.WtStatement:
        self._expect_word("ADVERTISE")
        self._expect_word("SOURCE")
        name = self._name()
        self._expect_word("INFORMATION")
        statement = ast.AdvertiseSource(name=name,
                                        information=self._text_or_name())
        while True:
            if self._accept_word("DOCUMENTATION"):
                statement.documentation = self._string()
            elif self._accept_word("LOCATION"):
                statement.location = self._string()
            elif self._accept_word("WRAPPER"):
                statement.wrapper = self._string()
            elif self._accept_word("INTERFACE"):
                statement.interface.append(self._name())
                while self._accept_punct(","):
                    statement.interface.append(self._name())
            else:
                break
        return statement

    def _join(self) -> ast.WtStatement:
        self._expect_word("JOIN")
        self._expect_word("DATABASE")
        database = self._name()
        self._expect_word("TO")
        self._expect_word("COALITION")
        return ast.JoinCoalition(database_name=database,
                                 coalition_name=self._name())

    def _leave(self) -> ast.WtStatement:
        self._expect_word("LEAVE")
        self._expect_word("DATABASE")
        database = self._name()
        self._expect_word("FROM")
        self._expect_word("COALITION")
        return ast.LeaveCoalition(database_name=database,
                                  coalition_name=self._name())

    def _drop(self) -> ast.WtStatement:
        self._expect_word("DROP")
        self._expect_word("SERVICE")
        self._expect_word("LINK")
        self._expect_word("FROM")
        from_kind = self._expect_word("COALITION", "DATABASE").lower()
        from_name = self._name()
        self._expect_word("TO")
        to_kind = self._expect_word("COALITION", "DATABASE").lower()
        to_name = self._name()
        return ast.DropServiceLink(from_kind=from_kind, from_name=from_name,
                                   to_kind=to_kind, to_name=to_name)


def parse(text: str) -> ast.WtStatement:
    """Parse one WebTassili statement."""
    return Parser(text).parse()
