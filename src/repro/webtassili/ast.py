"""AST for WebTassili statements.

Statements split into the paper's two levels: *meta-data* exploration
(find/connect/display) and *data* access (invoke/native query), plus
the definition & maintenance constructs WebTassili provides for the
information space (create/dissolve coalitions, advertise sources,
join/leave, service links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class WtStatement:
    """Base class for every WebTassili statement."""


# -- exploration (meta-data level) --------------------------------------------

@dataclass
class FindCoalitions(WtStatement):
    """``Find Coalitions With Information <topic>
    [Structure (name, ...)]``.

    *structure* optionally constrains matches to coalitions whose
    members export the named attributes/functions — the paper's "search
    for an information type while providing its structure".
    """

    information: str
    structure: list[str] = field(default_factory=list)


@dataclass
class FindSources(WtStatement):
    """``Find Sources With Information <topic> [Structure (name, ...)]``
    — locate individual information sources (databases) rather than
    coalitions, optionally constrained by exported structure."""

    information: str
    structure: list[str] = field(default_factory=list)


@dataclass
class ConnectTo(WtStatement):
    """``Connect To Coalition <name>`` / ``Connect To Database <name>``."""

    target_kind: str  # "coalition" | "database"
    name: str


@dataclass
class DisplaySubclasses(WtStatement):
    """``Display SubClasses of Class <name>``."""

    class_name: str


@dataclass
class DisplayInstances(WtStatement):
    """``Display Instances of Class <name>``."""

    class_name: str


@dataclass
class DisplayDocument(WtStatement):
    """``Display Document of Instance <name> [Of Class <class>]``."""

    instance_name: str
    class_name: Optional[str] = None


@dataclass
class DisplayAccessInfo(WtStatement):
    """``Display Access Information of Instance <name>``."""

    instance_name: str


@dataclass
class DisplayInterface(WtStatement):
    """``Display Interface of Instance <name>``."""

    instance_name: str


@dataclass
class DisplayStructure(WtStatement):
    """``Display Structure of Instance <name>`` — the exported
    attribute/function vocabulary stored in the co-database."""

    instance_name: str


@dataclass
class DisplayServiceLinks(WtStatement):
    """``Display Service Links of Coalition|Database <name>``."""

    target_kind: str
    name: str


# -- data level ------------------------------------------------------------------

@dataclass
class InvokeFunction(WtStatement):
    """``Invoke <function> Of Type <type> On [Coalition] <target>
    With (args...)``.

    With ``On Coalition``, the invocation fans out to every member of
    the coalition that exports the type, returning per-source results.
    """

    function_name: str
    type_name: str
    database_name: str
    arguments: list[Any] = field(default_factory=list)
    on_coalition: bool = False


@dataclass
class NativeQuery(WtStatement):
    """``Query <database> Native '<text>'`` — raw SQL/OQL passthrough."""

    database_name: str
    text: str


# -- definition & maintenance ------------------------------------------------------

@dataclass
class CreateCoalition(WtStatement):
    """``Create Coalition <name> With Information '<topic>'``."""

    name: str
    information: str


@dataclass
class DissolveCoalition(WtStatement):
    """``Dissolve Coalition <name>``."""

    name: str


@dataclass
class AdvertiseSource(WtStatement):
    """The paper's advertisement block as a statement::

        Advertise Source <name> Information '<t>' Documentation '<url>'
            Location '<host>' Wrapper '<wrapper>' Interface T1, T2
    """

    name: str
    information: str
    documentation: Optional[str] = None
    location: Optional[str] = None
    wrapper: Optional[str] = None
    interface: list[str] = field(default_factory=list)


@dataclass
class JoinCoalition(WtStatement):
    """``Join Database <db> To Coalition <coalition>``."""

    database_name: str
    coalition_name: str


@dataclass
class LeaveCoalition(WtStatement):
    """``Leave Database <db> From Coalition <coalition>``."""

    database_name: str
    coalition_name: str


@dataclass
class CreateServiceLink(WtStatement):
    """``Create Service Link From Coalition|Database <a>
    To Coalition|Database <b> [With Description '<d>']``."""

    from_kind: str
    from_name: str
    to_kind: str
    to_name: str
    description: Optional[str] = None


@dataclass
class DropServiceLink(WtStatement):
    """``Drop Service Link From Coalition|Database <a> To ... <b>``."""

    from_kind: str
    from_name: str
    to_kind: str
    to_name: str
