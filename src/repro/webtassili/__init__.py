"""The WebTassili language: lexer, AST, and parser.

WebTassili is the paper's special-purpose language for exploring the
information space (finding coalitions, displaying classes/instances/
documentation/access information), querying data through exported
functions or native passthrough, and maintaining the space (coalition
and service-link definition, advertisements, membership).
"""

from repro.webtassili import ast
from repro.webtassili.lexer import Token, TokenType, tokenize
from repro.webtassili.parser import Parser, parse

__all__ = ["ast", "parse", "Parser", "tokenize", "Token", "TokenType"]
