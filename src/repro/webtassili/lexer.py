"""Tokenizer for the WebTassili language.

WebTassili statements read like prose (``Display Document of Instance
Royal Brisbane Hospital Of Class Research;``): keywords are
case-insensitive, names may span several bare words, and string
literals use single quotes.  The lexer therefore emits WORD tokens and
lets the parser decide which words are keywords in context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import WebTassiliSyntaxError


class TokenType(enum.Enum):
    WORD = "WORD"
    STRING = "STRING"
    NUMBER = "NUMBER"
    PUNCT = "PUNCT"
    EOF = "EOF"


#: Words that terminate a multi-word name when scanned in name position.
KEYWORDS = frozenset({
    "FIND", "DISPLAY", "CONNECT", "QUERY", "INVOKE", "CREATE", "DISSOLVE",
    "ADVERTISE", "JOIN", "LEAVE", "DROP", "WITH", "INFORMATION", "TO",
    "COALITION", "COALITIONS", "DATABASE", "DATABASES", "SUBCLASSES",
    "INSTANCES", "DOCUMENT", "DOCUMENTATION", "ACCESS", "INTERFACE",
    "SERVICE", "LINK", "LINKS", "OF", "CLASS", "INSTANCE", "ON", "NATIVE",
    "FROM", "SOURCE", "SOURCES", "TYPE", "FOR", "LOCATION", "WRAPPER",
    "DESCRIPTION", "STRUCTURE",
    "AND",
})

_PUNCTUATION = "();,.="


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    @property
    def upper(self) -> str:
        """Upper-cased value for keyword comparison (WORD tokens only)."""
        return str(self.value).upper()


def tokenize(text: str) -> list[Token]:
    """Tokenize one WebTassili statement."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "'":
            end = position + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise WebTassiliSyntaxError(
                        "unterminated string literal", column=position)
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), position))
            position = end + 1
            continue
        if char.isdigit() or (char == "-" and position + 1 < length
                              and text[position + 1].isdigit()):
            end = position + 1
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            raw = text[position:end]
            value: Any = float(raw) if "." in raw else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, position))
            position = end
            continue
        if char.isalpha() or char == "_":
            end = position + 1
            while end < length and (text[end].isalnum() or text[end] in "_-"):
                end += 1
            tokens.append(Token(TokenType.WORD, text[position:end], position))
            position = end
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, char, position))
            position += 1
            continue
        raise WebTassiliSyntaxError(
            f"unexpected character {char!r}", column=position)
    tokens.append(Token(TokenType.EOF, None, length))
    return tokens
