"""JDBC-over-IIOP bridge.

The paper's CORBA server objects use JDBC to reach relational stores;
symmetrically, a client may reach a *remote* database through a CORBA
object.  This module provides both halves:

* :class:`DatabaseServant` — a CORBA servant wrapping an engine
  (relational :class:`~repro.sql.engine.Database` here; object stores
  get their own servants in :mod:`repro.wrappers`), exposing
  ``execute`` / ``banner`` / ``table_names``;
* :class:`RemoteDriver` — a gateway driver whose URLs
  (``jdbc:iiop:<name>``) resolve through a naming service to a servant
  IOR, yielding :class:`RemoteConnection` objects whose statements
  travel as GIOP requests.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import GatewayError
from repro.gateway.api import Connection
from repro.gateway.drivers import parse_url
from repro.orb.idl import InterfaceBuilder, InterfaceDef
from repro.orb.ior import Ior
from repro.orb.naming import NamingClient
from repro.orb.orb import Orb, Proxy
from repro.sql.engine import Database
from repro.sql.result import ResultSet

#: The CORBA interface of a remote database server object.
DATABASE_INTERFACE: InterfaceDef = (
    InterfaceBuilder("DatabaseServer", module="webfindit",
                     doc="SQL access to one wrapped database")
    .operation("execute", "sql", "params",
               doc="Run one statement; returns {columns, rows, rowcount}")
    .operation("banner", doc="Vendor banner of the wrapped database")
    .operation("table_names", doc="Visible table names")
    .build())


def result_to_wire(result: ResultSet) -> dict[str, Any]:
    """Encode a ResultSet as a CDR-marshallable struct."""
    return {
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "rowcount": result.rowcount,
    }


def result_from_wire(payload: dict[str, Any]) -> ResultSet:
    """Decode the struct produced by :func:`result_to_wire`."""
    return ResultSet(columns=list(payload.get("columns", [])),
                     rows=[tuple(row) for row in payload.get("rows", [])],
                     rowcount=int(payload.get("rowcount", 0)))


class DatabaseServant:
    """CORBA servant exposing one relational database."""

    def __init__(self, database: Database):
        self._database = database

    def execute(self, sql: str, params: list[Any]) -> dict[str, Any]:
        result = self._database.execute(sql, params or None)
        return result_to_wire(result)

    def banner(self) -> str:
        return self._database.banner

    def table_names(self) -> list[str]:
        return self._database.table_names()


def serve_database(orb: Orb, database: Database,
                   object_name: Optional[str] = None) -> Ior:
    """Activate a :class:`DatabaseServant` for *database* on *orb*."""
    servant = DatabaseServant(database)
    return orb.activate(servant, DATABASE_INTERFACE,
                        object_name=object_name or database.name)


class RemoteConnection(Connection):
    """A DB-API connection whose statements cross the ORB."""

    def __init__(self, url: str, proxy: Proxy):
        super().__init__(url)
        self._proxy = proxy

    def _run(self, sql: str, params: list[Any]) -> ResultSet:
        self._check_open()
        payload = self._proxy.invoke("execute", sql, params)
        if not isinstance(payload, dict):
            raise GatewayError(
                f"remote database returned malformed payload: {payload!r}")
        return result_from_wire(payload)

    @property
    def banner(self) -> str:
        return self._proxy.invoke("banner")

    def table_names(self) -> list[str]:
        return list(self._proxy.invoke("table_names"))


class RemoteDriver:
    """Resolves ``jdbc:iiop:<name>`` URLs through a naming service."""

    def __init__(self, orb: Orb, naming: NamingClient,
                 name_prefix: str = "webfindit/db/"):
        self._orb = orb
        self._naming = naming
        self._prefix = name_prefix

    def accepts(self, url: str) -> bool:
        try:
            subprotocol, __, __ = parse_url(url)
        except GatewayError:
            return False
        return subprotocol == "iiop"

    def connect(self, url: str) -> RemoteConnection:
        __, __, database_name = parse_url(url)
        ior = self._naming.resolve(self._prefix + database_name)
        proxy = self._orb.proxy(ior, DATABASE_INTERFACE)
        return RemoteConnection(url, proxy)
