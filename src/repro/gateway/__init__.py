"""JDBC-style database connectivity (DB-API 2.0 shaped).

* :func:`~repro.gateway.api.connect` + :class:`~repro.gateway.api.DriverManager`
* :class:`~repro.gateway.drivers.LocalDriver` — in-process engines
* :class:`~repro.gateway.bridge.RemoteDriver` — databases reached over IIOP
"""

from repro.gateway.api import (Connection, Cursor, DriverManager, connect,
                               default_manager)
from repro.gateway.bridge import (DATABASE_INTERFACE, DatabaseServant,
                                  RemoteConnection, RemoteDriver,
                                  result_from_wire, result_to_wire,
                                  serve_database)
from repro.gateway.drivers import (LocalConnection, LocalDriver,
                                   make_vendor_drivers, parse_url)

__all__ = [
    "connect", "Connection", "Cursor", "DriverManager", "default_manager",
    "LocalDriver", "LocalConnection", "make_vendor_drivers", "parse_url",
    "RemoteDriver", "RemoteConnection", "DatabaseServant", "serve_database",
    "DATABASE_INTERFACE", "result_to_wire", "result_from_wire",
]
