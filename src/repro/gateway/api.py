"""A DB-API-2.0-shaped connectivity layer (the role JDBC plays in the paper).

``connect(url)`` hands back a :class:`Connection` whose cursors execute
SQL against whatever a registered driver resolves the URL to — an
in-process engine, or a remote database server object reached over the
ORB (see :mod:`repro.gateway.bridge`).

URLs follow the JDBC convention::

    jdbc:<subprotocol>:<database>            e.g.  jdbc:oracle:RBH
    jdbc:<subprotocol>://<host>/<database>   e.g.  jdbc:msql://dba.icis.qut.edu.au/Medibank
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.errors import ConnectionClosed, DriverNotFound, GatewayError
from repro.sql.result import ResultSet

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


class Cursor:
    """A DB-API cursor over one connection."""

    arraysize = 1

    def __init__(self, connection: "Connection"):
        self._connection = connection
        self._result: Optional[ResultSet] = None
        self._position = 0
        self._closed = False

    # -- metadata ---------------------------------------------------------------

    @property
    def description(self) -> Optional[list[tuple]]:
        """DB-API 7-tuples (name, type_code, ..., null_ok) per column."""
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None)
                for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        """Rows affected by the last statement (-1 before any execute)."""
        if self._result is None:
            return -1
        return self._result.rowcount

    # -- execution -------------------------------------------------------------

    def execute(self, sql: str,
                parameters: Optional[Sequence[Any]] = None) -> "Cursor":
        """Execute one SQL statement with optional ``?`` parameters."""
        self._check_open()
        self._result = self._connection._run(sql, list(parameters or []))
        self._position = 0
        return self

    def executemany(self, sql: str,
                    seq_of_parameters: Iterable[Sequence[Any]]) -> "Cursor":
        """Execute once per parameter sequence."""
        self._check_open()
        total = 0
        for parameters in seq_of_parameters:
            result = self._connection._run(sql, list(parameters))
            total += result.rowcount
        self._result = ResultSet.empty(total)
        self._position = 0
        return self

    # -- fetching ----------------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        """Next row, or None when exhausted."""
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """Up to *size* rows (default :attr:`arraysize`)."""
        count = size if size is not None else self.arraysize
        rows = self._rows()
        chunk = rows[self._position:self._position + count]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        """All remaining rows."""
        rows = self._rows()
        chunk = rows[self._position:]
        self._position = len(rows)
        return chunk

    def _rows(self) -> list[tuple]:
        self._check_open()
        if self._result is None:
            raise GatewayError("no query has been executed on this cursor")
        return self._result.rows

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosed("cursor is closed")
        self._connection._check_open()

    def __iter__(self):
        row = self.fetchone()
        while row is not None:
            yield row
            row = self.fetchone()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Connection:
    """A DB-API connection produced by a driver.

    Subclasses (one per driver style) implement ``_run`` and the
    metadata properties; everything user-facing lives here.
    """

    def __init__(self, url: str):
        self.url = url
        self._closed = False

    # -- to be provided by drivers ------------------------------------------------

    def _run(self, sql: str, params: list[Any]) -> ResultSet:
        raise NotImplementedError  # pragma: no cover - interface

    @property
    def banner(self) -> str:
        """Product banner of the underlying database."""
        raise NotImplementedError  # pragma: no cover - interface

    def table_names(self) -> list[str]:
        """Names of the tables visible through this connection."""
        raise NotImplementedError  # pragma: no cover - interface

    # -- DB-API surface -------------------------------------------------------------

    def cursor(self) -> Cursor:
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str,
                parameters: Optional[Sequence[Any]] = None) -> Cursor:
        """Shortcut: create a cursor and execute in one step."""
        cursor = self.cursor()
        cursor.execute(sql, parameters)
        return cursor

    def commit(self) -> None:
        self._check_open()
        self._run("COMMIT", [])

    def rollback(self) -> None:
        self._check_open()
        self._run("ROLLBACK", [])

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosed(f"connection to {self.url!r} is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, *rest) -> None:
        self.close()


class DriverManager:
    """Registry of drivers, mirroring ``java.sql.DriverManager``."""

    def __init__(self) -> None:
        self._drivers: list = []

    def register(self, driver) -> None:
        """Register a driver instance (checked in registration order)."""
        self._drivers.append(driver)

    def connect(self, url: str) -> Connection:
        """Open a connection using the first driver accepting *url*."""
        for driver in self._drivers:
            if driver.accepts(url):
                return driver.connect(url)
        raise DriverNotFound(f"no registered driver accepts {url!r}")

    def drivers(self) -> list:
        return list(self._drivers)


#: The default, process-wide driver manager.
default_manager = DriverManager()


def connect(url: str, manager: Optional[DriverManager] = None) -> Connection:
    """Module-level ``connect``, as DB-API prescribes."""
    return (manager or default_manager).connect(url)
