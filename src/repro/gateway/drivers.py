"""Gateway drivers for in-process relational engines.

One driver class per vendor subprotocol (``jdbc:oracle:``,
``jdbc:msql:``, ``jdbc:db2:``, ``jdbc:sybase:``) plus a generic
``jdbc:repro:`` driver.  Each driver owns a registry of
:class:`~repro.sql.engine.Database` instances keyed by database name,
the way a JDBC driver resolves the database part of its URL.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.errors import GatewayError
from repro.gateway.api import Connection
from repro.sql.engine import Database
from repro.sql.result import ResultSet

_URL_RE = re.compile(
    r"^jdbc:(?P<subprotocol>[a-z0-9]+):(?://(?P<host>[^/]+)/)?(?P<database>.+)$")


def parse_url(url: str) -> tuple[str, Optional[str], str]:
    """Split a JDBC-style URL into (subprotocol, host, database)."""
    match = _URL_RE.match(url)
    if match is None:
        raise GatewayError(f"malformed connection URL {url!r}")
    return (match.group("subprotocol"), match.group("host"),
            match.group("database"))


class LocalConnection(Connection):
    """A connection bound directly to an in-process engine."""

    def __init__(self, url: str, database: Database):
        super().__init__(url)
        self._database = database

    def _run(self, sql: str, params: list[Any]) -> ResultSet:
        self._check_open()
        return self._database.execute(sql, params or None)

    @property
    def banner(self) -> str:
        return self._database.banner

    def table_names(self) -> list[str]:
        return self._database.table_names()


class LocalDriver:
    """A driver resolving URLs to registered in-process databases."""

    def __init__(self, subprotocol: str, dialect_name: Optional[str] = None):
        self.subprotocol = subprotocol
        self.dialect_name = dialect_name
        self._databases: dict[str, Database] = {}

    def register_database(self, database: Database) -> None:
        """Make *database* reachable as ``jdbc:<subprotocol>:<name>``."""
        if self.dialect_name is not None \
                and database.dialect.name != self.dialect_name:
            raise GatewayError(
                f"driver {self.subprotocol!r} serves {self.dialect_name!r} "
                f"databases; {database.name!r} speaks "
                f"{database.dialect.name!r}")
        key = database.name.lower()
        if key in self._databases:
            raise GatewayError(
                f"database {database.name!r} already registered on "
                f"driver {self.subprotocol!r}")
        self._databases[key] = database

    def accepts(self, url: str) -> bool:
        try:
            subprotocol, __, __ = parse_url(url)
        except GatewayError:
            return False
        return subprotocol == self.subprotocol

    def connect(self, url: str) -> LocalConnection:
        __, __, database_name = parse_url(url)
        database = self._databases.get(database_name.lower())
        if database is None:
            raise GatewayError(
                f"driver {self.subprotocol!r} knows no database "
                f"{database_name!r}")
        return LocalConnection(url, database)

    def database_names(self) -> list[str]:
        return sorted(db.name for db in self._databases.values())


def make_vendor_drivers() -> dict[str, LocalDriver]:
    """One LocalDriver per built-in dialect, keyed by subprotocol."""
    return {
        "oracle": LocalDriver("oracle", "oracle"),
        "msql": LocalDriver("msql", "msql"),
        "db2": LocalDriver("db2", "db2"),
        "sybase": LocalDriver("sybase", "sybase"),
        "repro": LocalDriver("repro", None),
    }
