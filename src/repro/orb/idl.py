"""Interface definitions — the role of CORBA IDL.

CORBA separates interface from implementation with IDL; here an
:class:`InterfaceDef` plays that role.  Each interface has a repository
id (``IDL:webfindit/CoDatabase:1.0``), a set of operations with named
parameters, and optional inheritance.  Servants are validated against
their interface when activated, and incoming requests are checked
against the operation table — an unknown operation raises
:class:`~repro.errors.BadOperation` on the server side, exactly as a
real ORB rejects a request that is not part of the target's interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BadOperation, IdlError


@dataclass(frozen=True)
class ParameterDef:
    """One operation parameter.  *mode* is ``in`` in this subset (CORBA
    also has ``out``/``inout``, which Java-era mappings discouraged)."""

    name: str
    mode: str = "in"


@dataclass(frozen=True)
class OperationDef:
    """One operation of an interface."""

    name: str
    parameters: tuple[ParameterDef, ...] = ()
    oneway: bool = False
    doc: str = ""

    @property
    def arity(self) -> int:
        return len(self.parameters)


@dataclass
class InterfaceDef:
    """A named interface with a repository id and operation table."""

    name: str
    repository_id: str
    operations: dict[str, OperationDef] = field(default_factory=dict)
    bases: tuple["InterfaceDef", ...] = ()
    doc: str = ""

    def operation(self, name: str) -> OperationDef:
        """Look up an operation, searching base interfaces."""
        found = self.find_operation(name)
        if found is None:
            raise BadOperation(
                f"interface {self.name!r} has no operation {name!r}")
        return found

    def find_operation(self, name: str) -> Optional[OperationDef]:
        if name in self.operations:
            return self.operations[name]
        for base in self.bases:
            found = base.find_operation(name)
            if found is not None:
                return found
        return None

    def all_operations(self) -> dict[str, OperationDef]:
        """Own + inherited operations (own definitions win)."""
        merged: dict[str, OperationDef] = {}
        for base in self.bases:
            merged.update(base.all_operations())
        merged.update(self.operations)
        return merged

    def validate_servant(self, servant: object) -> None:
        """Check that *servant* implements every operation."""
        missing = [name for name in self.all_operations()
                   if not callable(getattr(servant, name, None))]
        if missing:
            raise IdlError(
                f"servant {type(servant).__name__} does not implement "
                f"{sorted(missing)} of interface {self.name!r}")


class InterfaceBuilder:
    """Fluent construction of an :class:`InterfaceDef`.

    Example::

        CO_DATABASE = (InterfaceBuilder("CoDatabase", module="webfindit")
                       .operation("find_coalitions", "information_type")
                       .operation("describe", "name")
                       .build())
    """

    def __init__(self, name: str, module: str = "repro", version: str = "1.0",
                 doc: str = ""):
        if not name or not name[0].isalpha():
            raise IdlError(f"invalid interface name {name!r}")
        self._name = name
        self._repository_id = f"IDL:{module}/{name}:{version}"
        self._operations: dict[str, OperationDef] = {}
        self._bases: tuple[InterfaceDef, ...] = ()
        self._doc = doc

    def operation(self, name: str, *parameters: str, oneway: bool = False,
                  doc: str = "") -> "InterfaceBuilder":
        """Add an operation with the given parameter names."""
        if name in self._operations:
            raise IdlError(f"duplicate operation {name!r}")
        self._operations[name] = OperationDef(
            name=name,
            parameters=tuple(ParameterDef(p) for p in parameters),
            oneway=oneway, doc=doc)
        return self

    def extends(self, *bases: InterfaceDef) -> "InterfaceBuilder":
        """Declare base interfaces."""
        self._bases = self._bases + tuple(bases)
        return self

    def build(self) -> InterfaceDef:
        return InterfaceDef(name=self._name,
                            repository_id=self._repository_id,
                            operations=dict(self._operations),
                            bases=self._bases, doc=self._doc)


class InterfaceRepository:
    """Registry of interfaces keyed by repository id (CORBA's IFR)."""

    def __init__(self) -> None:
        self._by_id: dict[str, InterfaceDef] = {}

    def register(self, interface: InterfaceDef) -> InterfaceDef:
        existing = self._by_id.get(interface.repository_id)
        if existing is not None and existing is not interface:
            raise IdlError(
                f"repository id {interface.repository_id!r} already registered")
        self._by_id[interface.repository_id] = interface
        return interface

    def lookup(self, repository_id: str) -> InterfaceDef:
        interface = self._by_id.get(repository_id)
        if interface is None:
            raise IdlError(f"unknown repository id {repository_id!r}")
        return interface

    def __contains__(self, repository_id: str) -> bool:
        return repository_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)
