"""ORB product flavours.

The WebFINDIT prototype deliberately mixed three commercial ORBs —
Orbix (C++), OrbixWeb (Java) and VisiBroker for Java — to demonstrate
CORBA 2.0 IIOP interoperability.  We model each product as a configured
:class:`~repro.orb.orb.Orb` carrying its vendor identity; requests
between different products increment cross-product counters on both the
ORB and the transport, which is what bench S4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import OrbError
from repro.orb.orb import Orb
from repro.orb.transport import Transport


@dataclass(frozen=True)
class OrbProduct:
    """Static identity of one ORB product."""

    name: str
    vendor: str
    language: str
    version: str

    @property
    def banner(self) -> str:
        return f"{self.name} {self.version} ({self.vendor}, {self.language})"


#: The three products used in the paper's prototype (§5), plus JavaIDL
#: which the paper mentions as the JDK 1.2 beta ORB.
ORBIX = OrbProduct(name="Orbix", vendor="IONA", language="C++", version="2")
ORBIXWEB = OrbProduct(name="OrbixWeb", vendor="IONA", language="Java",
                      version="3")
VISIBROKER = OrbProduct(name="VisiBroker for Java", vendor="Inprise",
                        language="Java", version="3.2")
JAVAIDL = OrbProduct(name="JavaIDL", vendor="Sun", language="Java",
                     version="1.2beta")

PRODUCTS: dict[str, OrbProduct] = {
    product.name.lower(): product
    for product in (ORBIX, ORBIXWEB, VISIBROKER, JAVAIDL)
}


def get_product(name: str) -> OrbProduct:
    """Look up a product by (case-insensitive) name."""
    product = PRODUCTS.get(name.lower())
    if product is None:
        raise OrbError(f"unknown ORB product {name!r}; known: "
                       f"{sorted(PRODUCTS)}")
    return product


def create_orb(product: OrbProduct | str, transport: Transport,
               name: Optional[str] = None, host: str = "localhost",
               port: Optional[int] = None) -> Orb:
    """Instantiate an ORB of the given product on a shared transport."""
    if isinstance(product, str):
        product = get_product(product)
    orb_name = name or product.name.lower().replace(" ", "-")
    return Orb(name=orb_name, transport=transport, host=host, port=port,
               product=product.name, vendor=product.vendor,
               language=product.language)
