"""A from-scratch CORBA-style ORB substrate.

Implements the middleware stack of the paper's communication layer:
CDR marshalling, GIOP message framing, IORs, in-memory and TCP (IIOP)
transports, an ORB with object adapter and proxies, a naming service,
and the three ORB product flavours used by the WebFINDIT prototype.
"""

from repro.orb.cdr import CdrDecoder, CdrEncoder, decode_any, encode_any
from repro.orb.giop import (MessageType, ReplyMessage, ReplyStatus,
                            RequestMessage, decode_message, encode_message)
from repro.orb.idl import (InterfaceBuilder, InterfaceDef, InterfaceRepository,
                           OperationDef)
from repro.orb.ior import IiopProfile, Ior, make_ior
from repro.orb.naming import (NAMING_INTERFACE, NamingClient, NamingServant,
                              start_naming_service)
from repro.orb.orb import Orb, Proxy, RemoteSystemError
from repro.orb.products import (JAVAIDL, ORBIX, ORBIXWEB, PRODUCTS, VISIBROKER,
                                OrbProduct, create_orb, get_product)
from repro.orb.transport import (InMemoryNetwork, TcpTransport, Transport,
                                 TransportMetrics)

__all__ = [
    "CdrEncoder", "CdrDecoder", "encode_any", "decode_any",
    "RequestMessage", "ReplyMessage", "ReplyStatus", "MessageType",
    "encode_message", "decode_message",
    "InterfaceBuilder", "InterfaceDef", "InterfaceRepository", "OperationDef",
    "Ior", "IiopProfile", "make_ior",
    "Orb", "Proxy", "RemoteSystemError",
    "InMemoryNetwork", "TcpTransport", "Transport", "TransportMetrics",
    "OrbProduct", "ORBIX", "ORBIXWEB", "VISIBROKER", "JAVAIDL", "PRODUCTS",
    "create_orb", "get_product",
    "NamingServant", "NamingClient", "NAMING_INTERFACE",
    "start_naming_service",
]
