"""Interoperable Object References (IORs).

An IOR names a CORBA object independently of the ORB that created it:
a repository type id plus one or more IIOP profiles (host, port, object
key).  IORs stringify to the classic ``IOR:<hex>`` form so they can be
passed through naming services, pasted into configuration, or shipped
inside other messages — exactly how WebFINDIT's co-database records
point at database server objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder


@dataclass(frozen=True)
class IiopProfile:
    """One way to reach the object: an IIOP endpoint plus object key."""

    host: str
    port: int
    object_key: bytes

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)


@dataclass(frozen=True)
class Ior:
    """A typed, transportable object reference."""

    type_id: str
    profiles: tuple[IiopProfile, ...] = field(default_factory=tuple)

    @property
    def primary(self) -> IiopProfile:
        """The first profile (the one clients try first)."""
        if not self.profiles:
            raise MarshalError(f"IOR {self.type_id!r} has no profiles")
        return self.profiles[0]

    def to_string(self) -> str:
        """Stringify to the standard ``IOR:<hex>`` form."""
        encoder = CdrEncoder()
        encoder.write_string(self.type_id)
        encoder.write_ulong(len(self.profiles))
        for profile in self.profiles:
            encoder.write_string(profile.host)
            encoder.write_ushort(profile.port)
            encoder.write_octets(profile.object_key)
        return "IOR:" + encoder.getvalue().hex()

    @classmethod
    def from_string(cls, text: str) -> "Ior":
        """Parse an ``IOR:<hex>`` string."""
        if not text.startswith("IOR:"):
            raise MarshalError(f"not an IOR string: {text[:16]!r}")
        try:
            raw = bytes.fromhex(text[4:])
        except ValueError as exc:
            raise MarshalError("IOR string is not valid hex") from exc
        decoder = CdrDecoder(raw)
        type_id = decoder.read_string()
        count = decoder.read_ulong()
        profiles = []
        for _ in range(count):
            host = decoder.read_string()
            port = decoder.read_ushort()
            object_key = decoder.read_octets()
            profiles.append(IiopProfile(host=host, port=port,
                                        object_key=object_key))
        return cls(type_id=type_id, profiles=tuple(profiles))

    def __str__(self) -> str:
        return self.to_string()


def make_ior(type_id: str, host: str, port: int, object_key: bytes) -> Ior:
    """Build a single-profile IOR."""
    return Ior(type_id=type_id,
               profiles=(IiopProfile(host=host, port=port,
                                     object_key=object_key),))
