"""Transports carrying GIOP messages between ORBs.

Two interchangeable transports:

* :class:`InMemoryNetwork` — a process-local IIOP fabric.  Endpoints
  register handlers; requests are delivered synchronously as *bytes*
  (messages are genuinely marshalled, so the full encode/decode path is
  exercised) while message and byte counters accumulate for the
  scalability benchmarks.
* :class:`TcpTransport` — real IIOP-over-TCP on the loopback interface,
  framing messages with the GIOP header's size field.  Connections are
  kept alive and pooled per endpoint by default (CORBA 2.0 permits
  either connection reuse or per-call connections); pass
  ``pooled=False`` for the per-call behaviour benchmarks use as a
  baseline.

Both expose the same two operations: ``register`` a server endpoint and
``send`` a request to an endpoint, returning the reply bytes.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.deadline import Deadline, current_policy
from repro.errors import CommFailure, DeadlineExceeded
from repro.orb.giop import HEADER_SIZE

#: A server-side message handler: request bytes in, reply bytes out
#: (None for oneway messages).
Handler = Callable[[bytes], Optional[bytes]]

Endpoint = tuple[str, int]


@dataclass
class TransportMetrics:
    """Counters accumulated by a transport, consumed by benchmarks.

    Transports serve many client threads at once (``ThreadingTCPServer``
    on the server side, parallel discovery fan-out on the client side),
    so every update happens under one lock — unlocked ``+=`` on these
    counters loses increments under contention.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_endpoint: dict[Endpoint, int] = field(default_factory=dict)
    #: TCP connection accounting (always zero on the in-memory fabric).
    connections_opened: int = 0
    connections_reused: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, endpoint: Endpoint, request_size: int,
               reply_size: int) -> None:
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += request_size
            self.bytes_received += reply_size
            self.per_endpoint[endpoint] = \
                self.per_endpoint.get(endpoint, 0) + 1

    def record_connection(self, reused: bool) -> None:
        with self._lock:
            if reused:
                self.connections_reused += 1
            else:
                self.connections_opened += 1

    def reset(self) -> None:
        with self._lock:
            self.messages_sent = 0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.per_endpoint.clear()
            self.connections_opened = 0
            self.connections_reused = 0


class Transport:
    """Abstract transport interface."""

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        raise NotImplementedError  # pragma: no cover - interface

    def unregister(self, endpoint: Endpoint) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        raise NotImplementedError  # pragma: no cover - interface


class InMemoryNetwork(Transport):
    """A synchronous, in-process network of GIOP endpoints."""

    def __init__(self) -> None:
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()
        self._next_port = 20000

    def allocate_port(self) -> int:
        """Hand out a fresh port number for auto-assigned endpoints."""
        with self._lock:
            port = self._next_port
            self._next_port += 1
            return port

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        with self._lock:
            if endpoint in self._handlers:
                raise CommFailure(f"endpoint {endpoint!r} already bound")
            self._handlers[endpoint] = handler
        return endpoint

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._handlers.pop(endpoint, None)

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        # The lookup must happen under the lock: concurrent
        # register/unregister during parallel discovery must not let a
        # sender observe a torn view of the handler table.
        with self._lock:
            handler = self._handlers.get(endpoint)
        if handler is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        reply = handler(data)
        if reply is None:
            reply = b""
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def endpoints(self) -> list[Endpoint]:
        """Currently bound endpoints."""
        with self._lock:
            return list(self._handlers)


def _read_exact(connection: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = connection.recv(remaining)
        if not chunk:
            raise CommFailure("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_giop_frame(connection: socket.socket) -> bytes:
    """Read one GIOP message (header + body) from a socket."""
    header = _read_exact(connection, HEADER_SIZE)
    little_endian = bool(header[6] & 1)
    size = int.from_bytes(header[8:12], "little" if little_endian else "big")
    body = _read_exact(connection, size) if size else b""
    return header + body


def _close_quietly(connection: socket.socket) -> None:
    try:
        connection.close()
    except OSError:  # pragma: no cover - close failures are ignorable
        pass


class _GiopRequestHandler(socketserver.BaseRequestHandler):
    """Serves one client connection for its lifetime.

    Frames keep arriving on the same socket until the peer closes it
    (keep-alive IIOP) — pooled clients amortise the TCP handshake over
    many requests, per-call clients simply close after one frame.
    """

    def handle(self) -> None:
        transport: TcpTransport = self.server.transport  # type: ignore[attr-defined]
        endpoint = self.server.server_address  # type: ignore[attr-defined]
        while True:
            try:
                data = read_giop_frame(self.request)
            except CommFailure:
                return  # peer closed (or died) between frames
            handler = transport.handler_for((endpoint[0], endpoint[1]))
            if handler is None:
                return
            if transport.latency > 0:
                time.sleep(transport.latency)
            reply = handler(data)
            if reply:
                try:
                    self.request.sendall(reply)
                except OSError:
                    return


class _GiopServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # Parallel discovery fan-out opens bursts of simultaneous
    # connections; the socketserver default backlog of 5 drops the
    # overflow SYNs, stalling clients on kernel retransmit timers.
    request_queue_size = 64


class _ConnectionPool:
    """Idle keep-alive connections, bounded per endpoint.

    ``checkout`` hands an idle connection to exactly one caller (or
    None); ``checkin`` returns it, closing it instead when the endpoint
    already holds ``max_idle`` spares or the pool is closed.
    """

    def __init__(self, max_idle: int = 8):
        self.max_idle = max_idle
        self._idle: dict[Endpoint, deque[socket.socket]] = {}
        self._lock = threading.Lock()
        self._closed = False

    def checkout(self, endpoint: Endpoint) -> Optional[socket.socket]:
        with self._lock:
            spares = self._idle.get(endpoint)
            if spares:
                return spares.popleft()
        return None

    def checkin(self, endpoint: Endpoint,
                connection: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                spares = self._idle.setdefault(endpoint, deque())
                if len(spares) < self.max_idle:
                    spares.append(connection)
                    return
        _close_quietly(connection)

    def idle_count(self, endpoint: Optional[Endpoint] = None) -> int:
        with self._lock:
            if endpoint is not None:
                return len(self._idle.get(endpoint, ()))
            return sum(len(spares) for spares in self._idle.values())

    def discard(self, endpoint: Endpoint) -> None:
        """Drop (and close) every idle connection to *endpoint*."""
        with self._lock:
            spares = self._idle.pop(endpoint, None)
        for connection in spares or ():
            _close_quietly(connection)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            spares = [connection for queue in self._idle.values()
                      for connection in queue]
            self._idle.clear()
        for connection in spares:
            _close_quietly(connection)


class TcpTransport(Transport):
    """Real IIOP-over-TCP on localhost.

    Each registered endpoint gets its own threaded TCP server.  By
    default clients keep connections alive in a per-endpoint pool of at
    most *pool_size* spares: a request checks a connection out, does its
    round-trip, and checks it back in, so the steady state costs zero
    TCP handshakes.  A pooled connection that has gone stale (the server
    restarted, the peer dropped it) is discarded — and the request is
    retried once on a fresh connection **only when the current call is
    flagged idempotent** (see :mod:`repro.deadline`): once bytes went
    out on a connection, the server may already have applied the
    request, so a blind resend could execute it twice.  Non-idempotent
    calls surface the failure instead.  ``pooled=False`` restores the
    connect-per-call behaviour, which benches use as the baseline.

    The constructor's *timeout* is only the default: each ``send``
    bounds its socket timeout by the remaining budget of the calling
    thread's :class:`~repro.deadline.Deadline`, so a discovery query's
    total budget propagates down to every socket operation.
    """

    def __init__(self, host: str = "127.0.0.1", timeout: float = 5.0,
                 pooled: bool = True, pool_size: int = 8,
                 latency: float = 0.0):
        self.host = host
        self.timeout = timeout
        self.pooled = pooled
        #: Simulated one-way WAN delay (seconds) applied server-side to
        #: every request.  The paper's federation spans Internet sites;
        #: loopback is the degenerate zero-latency case, so benches set
        #: this to model realistic inter-site RTTs.  Sleeping releases
        #: the GIL, so concurrent requests overlap the delay exactly as
        #: real network waits would.
        self.latency = latency
        self._pool = _ConnectionPool(max_idle=pool_size) if pooled else None
        self._servers: dict[Endpoint, _GiopServer] = {}
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        # Logical hostnames ("dba.icis.qut.edu.au") are DNS names the
        # 1999 deployment resolved; on one machine every endpoint binds
        # the transport's local interface, and the OS-assigned port
        # keeps endpoints (and therefore IORs) distinct.
        __, port = endpoint
        server = _GiopServer((self.host, port), _GiopRequestHandler)
        server.transport = self  # type: ignore[attr-defined]
        bound = (self.host, server.server_address[1])
        with self._lock:
            self._servers[bound] = server
            self._handlers[bound] = handler
        thread = threading.Thread(target=server.serve_forever,
                                  name=f"giop-{bound[1]}", daemon=True)
        thread.start()
        return bound

    def handler_for(self, endpoint: Endpoint) -> Optional[Handler]:
        with self._lock:
            return self._handlers.get(endpoint)

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            server = self._servers.pop(endpoint, None)
            self._handlers.pop(endpoint, None)
        if self._pool is not None:
            self._pool.discard(endpoint)
        if server is not None:
            server.shutdown()
            server.server_close()

    def _roundtrip(self, connection: socket.socket, data: bytes) -> bytes:
        connection.sendall(data)
        return read_giop_frame(connection)

    def _effective_timeout(self) -> tuple[float, Optional[Deadline]]:
        """Socket timeout for this call: the constructor default,
        tightened to the calling thread's remaining deadline budget."""
        deadline = current_policy().deadline
        if deadline is None:
            return self.timeout, None
        return min(self.timeout, deadline.require("IIOP request")), deadline

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        timeout, deadline = self._effective_timeout()
        if self._pool is not None:
            pooled = self._pool.checkout(endpoint)
            if pooled is not None:
                try:
                    pooled.settimeout(timeout)
                    reply = self._roundtrip(pooled, data)
                except (OSError, CommFailure) as exc:
                    # Stale keep-alive connection.  The request may
                    # already have gone out on it — the server could
                    # have applied it and only the reply been lost —
                    # so resending on a fresh connection is gated on
                    # the caller having declared this call idempotent
                    # (the metadata reads of the discovery hot path).
                    _close_quietly(pooled)
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceeded(
                            f"IIOP request to {endpoint!r} overran its "
                            f"deadline: {exc}") from exc
                    if not current_policy().idempotent:
                        raise CommFailure(
                            f"IIOP send to {endpoint!r} failed on a "
                            f"pooled connection; not resending a "
                            f"non-idempotent request ({exc})") from exc
                else:
                    self._pool.checkin(endpoint, pooled)
                    self.metrics.record_connection(reused=True)
                    self.metrics.record(endpoint, len(data), len(reply))
                    return reply
        try:
            connection = socket.create_connection(endpoint,
                                                  timeout=timeout)
        except OSError as exc:
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"IIOP connect to {endpoint!r} overran its deadline: "
                    f"{exc}") from exc
            raise CommFailure(
                f"IIOP connect to {endpoint!r} failed: {exc}") from exc
        try:
            reply = self._roundtrip(connection, data)
        except (OSError, CommFailure) as exc:
            _close_quietly(connection)
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"IIOP request to {endpoint!r} overran its deadline: "
                    f"{exc}") from exc
            raise CommFailure(
                f"IIOP send to {endpoint!r} failed: {exc}") from exc
        if self._pool is not None:
            self._pool.checkin(endpoint, connection)
        else:
            _close_quietly(connection)
        self.metrics.record_connection(reused=False)
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def idle_connections(self, endpoint: Optional[Endpoint] = None) -> int:
        """Spare pooled connections (for tests and pool tuning)."""
        if self._pool is None:
            return 0
        return self._pool.idle_count(endpoint)

    def close(self) -> None:
        """Shut down every server this transport started."""
        if self._pool is not None:
            self._pool.close()
        for endpoint in list(self._servers):
            self.unregister(endpoint)
