"""Transports carrying GIOP messages between ORBs.

Two interchangeable transports:

* :class:`InMemoryNetwork` — a process-local IIOP fabric.  Endpoints
  register handlers; requests are delivered synchronously as *bytes*
  (messages are genuinely marshalled, so the full encode/decode path is
  exercised) while message and byte counters accumulate for the
  scalability benchmarks.
* :class:`TcpTransport` — real IIOP-over-TCP on the loopback interface,
  framing messages with the GIOP header's size field.  Connections are
  kept alive and pooled per endpoint by default (CORBA 2.0 permits
  either connection reuse or per-call connections); pass
  ``pooled=False`` for the per-call behaviour benchmarks use as a
  baseline.

:class:`TcpTransport` runs in one of two I/O modes:

* **threaded** (the legacy mode) — a ``ThreadingTCPServer`` per
  endpoint, one handler thread per accepted connection, and one reader
  thread per pipelined client stripe;
* **event-loop** (``loop=True``, or ``REPRO_TRANSPORT_LOOP=1``) — a
  single ``selectors``-based reader/writer thread demultiplexes every
  server-side connection *and* every pipelined client channel.
  Servant dispatch runs on a small bounded worker pool so application
  code never blocks the loop; replies are posted back to the loop for
  non-blocking, batched writes (small GIOP frames queued for the same
  connection coalesce into one ``send``).  See ``docs/event-loop.md``.

Both expose the same two operations: ``register`` a server endpoint and
``send`` a request to an endpoint, returning the reply bytes.
"""

from __future__ import annotations

import heapq
import itertools
import os
import selectors
import socket
import socketserver
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.deadline import Deadline, current_policy
from repro.errors import CommFailure, DeadlineExceeded, MarshalError
from repro.orb.giop import (HEADER_SIZE, busy_reply, peek_frame_size,
                            peek_reply_id, peek_request,
                            peek_request_admission)
from repro.orb.overload import AdmissionController, OverloadPolicy

#: A server-side message handler: request bytes in, reply bytes out
#: (None for oneway messages).
Handler = Callable[[bytes], Optional[bytes]]

Endpoint = tuple[str, int]


@dataclass
class TransportMetrics:
    """Counters accumulated by a transport, consumed by benchmarks.

    Transports serve many client threads at once (``ThreadingTCPServer``
    on the server side, parallel discovery fan-out on the client side),
    so every update happens under one lock — unlocked ``+=`` on these
    counters loses increments under contention.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_endpoint: dict[Endpoint, int] = field(default_factory=dict)
    #: TCP connection accounting (always zero on the in-memory fabric).
    connections_opened: int = 0
    connections_reused: int = 0
    #: Pipelining accounting: requests submitted while at least one
    #: other request was already in flight on the same connection, the
    #: deepest in-flight depth any connection reached, callers that
    #: gave up waiting for a matched reply (stalls), and requests that
    #: found every stripe at its depth cap (overflows, served on a
    #: dedicated serial round-trip instead).
    requests_pipelined: int = 0
    max_in_flight: int = 0
    pipeline_stalls: int = 0
    pipeline_overflows: int = 0
    #: Event-loop write batching: flushes that coalesced more than one
    #: queued frame into a single ``send``, and how many frames rode
    #: along in them beyond the first.
    batch_flushes: int = 0
    frames_batched: int = 0
    #: ``pipelined="auto"`` endpoints promoted serial -> striped after
    #: concurrent in-flight demand was observed.
    auto_promotions: int = 0
    #: Admission control: requests shed under overload (queue cap,
    #: brownout, CoDel sojourn) and requests dropped because their
    #: caller's deadline budget was already spent — each answered with
    #: a BUSY reply instead of a servant dispatch.
    requests_shed: int = 0
    requests_expired: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, endpoint: Endpoint, request_size: int,
               reply_size: int) -> None:
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += request_size
            self.bytes_received += reply_size
            self.per_endpoint[endpoint] = \
                self.per_endpoint.get(endpoint, 0) + 1

    def record_connection(self, reused: bool) -> None:
        with self._lock:
            if reused:
                self.connections_reused += 1
            else:
                self.connections_opened += 1

    def record_pipeline(self, depth: int) -> None:
        with self._lock:
            if depth > 1:
                self.requests_pipelined += 1
            if depth > self.max_in_flight:
                self.max_in_flight = depth

    def record_stall(self) -> None:
        with self._lock:
            self.pipeline_stalls += 1

    def record_overflow(self) -> None:
        with self._lock:
            self.pipeline_overflows += 1

    def record_batch(self, frames: int) -> None:
        """One flush wrote *frames* coalesced frames in a single send.

        Called from the event-loop thread while worker threads are
        recording dispatch counters — the shared lock is what keeps
        mixed loop/worker updates coherent.
        """
        with self._lock:
            if frames > 1:
                self.batch_flushes += 1
                self.frames_batched += frames - 1

    def record_auto_promotion(self) -> None:
        with self._lock:
            self.auto_promotions += 1

    def record_shed(self, reason: str) -> None:
        with self._lock:
            if reason == "deadline":
                self.requests_expired += 1
            else:
                self.requests_shed += 1

    def snapshot(self) -> dict[str, int]:
        """All counters, read atomically under the lock.

        Field-by-field reads can tear across a concurrent update (the
        loop thread flushing while a worker records a dispatch);
        benchmarks and tests that compare related counters should read
        one snapshot instead.
        """
        with self._lock:
            return {
                "messages_sent": self.messages_sent,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "connections_opened": self.connections_opened,
                "connections_reused": self.connections_reused,
                "requests_pipelined": self.requests_pipelined,
                "max_in_flight": self.max_in_flight,
                "pipeline_stalls": self.pipeline_stalls,
                "pipeline_overflows": self.pipeline_overflows,
                "batch_flushes": self.batch_flushes,
                "frames_batched": self.frames_batched,
                "auto_promotions": self.auto_promotions,
                "requests_shed": self.requests_shed,
                "requests_expired": self.requests_expired,
                "per_endpoint": {f"{host}:{port}": count
                                 for (host, port), count
                                 in self.per_endpoint.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self.messages_sent = 0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.per_endpoint.clear()
            self.connections_opened = 0
            self.connections_reused = 0
            self.requests_pipelined = 0
            self.max_in_flight = 0
            self.pipeline_stalls = 0
            self.pipeline_overflows = 0
            self.batch_flushes = 0
            self.frames_batched = 0
            self.auto_promotions = 0
            self.requests_shed = 0
            self.requests_expired = 0


class Transport:
    """Abstract transport interface."""

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        raise NotImplementedError  # pragma: no cover - interface

    def unregister(self, endpoint: Endpoint) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        raise NotImplementedError  # pragma: no cover - interface


class InMemoryNetwork(Transport):
    """A synchronous, in-process network of GIOP endpoints."""

    def __init__(self) -> None:
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()
        self._next_port = 20000

    def allocate_port(self) -> int:
        """Hand out a fresh port number for auto-assigned endpoints."""
        with self._lock:
            port = self._next_port
            self._next_port += 1
            return port

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        with self._lock:
            if endpoint in self._handlers:
                raise CommFailure(f"endpoint {endpoint!r} already bound")
            self._handlers[endpoint] = handler
        return endpoint

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._handlers.pop(endpoint, None)

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        # The lookup must happen under the lock: concurrent
        # register/unregister during parallel discovery must not let a
        # sender observe a torn view of the handler table.
        with self._lock:
            handler = self._handlers.get(endpoint)
        if handler is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        reply = handler(data)
        if reply is None:
            reply = b""
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def endpoints(self) -> list[Endpoint]:
        """Currently bound endpoints."""
        with self._lock:
            return list(self._handlers)


def _read_exact(connection: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = connection.recv(remaining)
        except TimeoutError:
            raise  # deadline machinery upstack maps timeouts itself
        except OSError as exc:
            # A reset peer is the same condition as a closed one — the
            # counterpart died between (or mid) frames.
            raise CommFailure(f"connection reset mid-message: {exc}") \
                from exc
        if not chunk:
            raise CommFailure("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_giop_frame(connection: socket.socket) -> bytes:
    """Read one GIOP message (header + body) from a socket."""
    header = _read_exact(connection, HEADER_SIZE)
    little_endian = bool(header[6] & 1)
    size = int.from_bytes(header[8:12], "little" if little_endian else "big")
    body = _read_exact(connection, size) if size else b""
    return header + body


def _close_quietly(connection: socket.socket) -> None:
    try:
        connection.close()
    except OSError:  # pragma: no cover - close failures are ignorable
        pass


#: A frame sliced out of a receive buffer: ``bytes`` when it arrived in
#: (or spans) whole chunks, a zero-copy ``memoryview`` otherwise.
Frame = Union[bytes, memoryview]


class FrameBuffer:
    """Reassembles GIOP frames from an arbitrarily-chunked byte stream.

    ``feed`` whatever ``recv`` returned — one byte or a jumbo coalesced
    write — and ``next_frame`` slices complete frames back out.  The
    received chunks are kept immutable and *referenced*, never joined
    wholesale: a frame wholly inside one chunk comes back as a
    ``memoryview`` of it (or the chunk itself when they coincide —
    the common case once the peer batches one frame per send), and
    only a frame spanning chunk boundaries pays one join of exactly
    its own bytes.  This replaces both the byte-at-a-time header
    ``recv(1)`` loop and the ``b"".join`` reassembly the threaded
    readers used on the hot path.

    Not thread-safe: each connection's buffer is owned by one reader
    (a channel's reader thread, or the event loop).
    """

    __slots__ = ("_chunks", "_offset", "_size")

    def __init__(self) -> None:
        self._chunks: deque[bytes] = deque()
        self._offset = 0  # consumed prefix of _chunks[0]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def feed(self, data: bytes) -> None:
        if data:
            self._chunks.append(data)
            self._size += len(data)

    def next_frame(self) -> Optional[Frame]:
        """The next complete GIOP frame, or None until more bytes come.

        Raises :class:`~repro.errors.MarshalError` when the buffered
        header is not GIOP — the stream can never be resynchronised and
        the connection must be dropped.
        """
        if self._size < HEADER_SIZE:
            return None
        total = peek_frame_size(self._peek_header())
        if self._size < total:
            return None
        return self._take(total)

    # ------------------------------------------------------------ internals --

    def _peek_header(self) -> Frame:
        first = self._chunks[0]
        if len(first) - self._offset >= HEADER_SIZE:
            return memoryview(first)[self._offset:self._offset + HEADER_SIZE]
        parts: list[bytes] = []
        need = HEADER_SIZE
        offset = self._offset
        for chunk in self._chunks:
            take = min(len(chunk) - offset, need)
            parts.append(chunk[offset:offset + take])
            need -= take
            offset = 0
            if need == 0:
                break
        return b"".join(parts)

    def _take(self, count: int) -> Frame:
        first = self._chunks[0]
        available = len(first) - self._offset
        self._size -= count
        if available >= count:
            if self._offset == 0 and available == count:
                self._chunks.popleft()
                return first
            frame = memoryview(first)[self._offset:self._offset + count]
            self._offset += count
            if self._offset == len(first):
                self._chunks.popleft()
                self._offset = 0
            return frame
        parts = []
        remaining = count
        while remaining:
            chunk = self._chunks[0]
            take = min(len(chunk) - self._offset, remaining)
            parts.append(memoryview(chunk)[self._offset:self._offset + take])
            remaining -= take
            self._offset += take
            if self._offset == len(chunk):
                self._chunks.popleft()
                self._offset = 0
        return b"".join(parts)


class _GiopRequestHandler(socketserver.BaseRequestHandler):
    """Serves one client connection for its lifetime.

    Frames keep arriving on the same socket until the peer closes it
    (keep-alive IIOP) — pooled clients amortise the TCP handshake over
    many requests, per-call clients simply close after one frame.

    On a **pipelined** transport the client may have many requests in
    flight on this one socket, so frames are dispatched to a
    per-connection worker pool: request processing (and the modelled
    ``latency`` sleeps) overlaps, and replies go back as they finish —
    possibly out of request order, which GIOP permits because clients
    match replies by ``request_id``.  The pool's threads persist for
    the connection's life (spawning a thread per frame costs more than
    a small request round-trip).  A per-connection write lock keeps
    concurrently-finished reply frames from interleaving on the wire.
    """

    def handle(self) -> None:
        transport: TcpTransport = self.server.transport  # type: ignore[attr-defined]
        endpoint = self.server.server_address  # type: ignore[attr-defined]
        write_lock = threading.Lock()
        workers: Optional[ThreadPoolExecutor] = None
        in_flight: dict[Future, Any] = {}
        if transport.pipelined:
            workers = ThreadPoolExecutor(
                max_workers=transport.connection_workers
                or transport.pipeline_depth,
                thread_name_prefix=f"giop-worker-{endpoint[1]}")
        admission = transport.admission
        try:
            while True:
                try:
                    data = read_giop_frame(self.request)
                except CommFailure:
                    return  # peer closed (or died) between frames
                handler = transport.handler_for((endpoint[0], endpoint[1]))
                if handler is None:
                    return
                ticket = None
                if admission.enabled:
                    budget, traffic_class = peek_request_admission(data)
                    ticket, reason = admission.enqueue(budget, traffic_class)
                    if reason is not None:
                        transport.metrics.record_shed(reason)
                        self._send_busy(data, reason, write_lock)
                        continue
                if workers is not None:
                    future = workers.submit(self._serve_one, transport,
                                            handler, data, write_lock,
                                            ticket)
                    in_flight[future] = ticket

                    # The abandon must happen *here*, not in a sweep
                    # after shutdown(): this callback pops the future
                    # from ``in_flight`` as soon as it settles, so a
                    # later sweep would never see cancelled entries and
                    # their queue slots would leak on the
                    # transport-shared admission controller.
                    def _settle(f: Future, t=ticket) -> None:
                        in_flight.pop(f, None)
                        if t is not None and f.cancelled():
                            admission.abandon(t)

                    future.add_done_callback(_settle)
                else:
                    self._serve_one(transport, handler, data, write_lock,
                                    ticket)
        finally:
            if workers is not None:
                # Drain, don't abandon: a dispatch already running may
                # hold servant-side locks (journal group commit, the
                # registry lock) — give it a bounded window to finish.
                # Queued-but-unstarted frames are cancelled: their
                # caller's connection is gone, the work is dead, and
                # each one's done-callback abandons its admission
                # ticket so the shared controller gets its slot back.
                workers.shutdown(wait=False, cancel_futures=True)
                pending = [future for future in list(in_flight)
                           if not future.done()]
                if pending:
                    _wait_futures(pending, timeout=_DRAIN_TIMEOUT)

    def _serve_one(self, transport: "TcpTransport", handler: Handler,
                   data: bytes, write_lock: threading.Lock,
                   ticket=None) -> None:
        if ticket is not None:
            reason = transport.admission.dequeue(ticket)
            if reason is not None:
                transport.metrics.record_shed(reason)
                self._send_busy(data, reason, write_lock)
                return
        if transport.latency > 0:
            time.sleep(transport.latency)
        try:
            reply = handler(data)
        except Exception:  # noqa: BLE001 - undecodable frame: the
            _close_quietly(self.request)  # stream is poisoned, drop it
            return
        if reply:
            try:
                with write_lock:
                    self.request.sendall(reply)
            except OSError:
                _close_quietly(self.request)

    def _send_busy(self, data: bytes, reason: str,
                   write_lock: threading.Lock) -> None:
        """Answer a shed request with a BUSY reply (cheap: no servant
        dispatch, no modelled latency — shedding must cost less than
        serving, or it cannot protect anything)."""
        reply = busy_reply(data, reason)
        if reply is None:
            return  # oneway or unattributable: shed silently
        try:
            with write_lock:
                self.request.sendall(reply)
        except OSError:
            _close_quietly(self.request)


#: How long transport teardown waits for in-flight servant dispatches
#: before giving up on them: long enough for a journal group commit,
#: short enough that closing a transport never hangs a test run.
_DRAIN_TIMEOUT = 2.0


class _GiopServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # Parallel discovery fan-out opens bursts of simultaneous
    # connections; the socketserver default backlog of 5 drops the
    # overflow SYNs, stalling clients on kernel retransmit timers.
    # This is only the default — ``TcpTransport(accept_backlog=...)``
    # overrides it per instance before the listen socket activates.
    request_queue_size = 64


class _ConnectionPool:
    """Idle keep-alive connections, bounded per endpoint.

    ``checkout`` hands an idle connection to exactly one caller (or
    None); ``checkin`` returns it, closing it instead when the endpoint
    already holds ``max_idle`` spares or the pool is closed.
    """

    def __init__(self, max_idle: int = 8):
        self.max_idle = max_idle
        self._idle: dict[Endpoint, deque[socket.socket]] = {}
        self._lock = threading.Lock()
        self._closed = False

    def checkout(self, endpoint: Endpoint) -> Optional[socket.socket]:
        with self._lock:
            spares = self._idle.get(endpoint)
            if spares:
                return spares.popleft()
        return None

    def checkin(self, endpoint: Endpoint,
                connection: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                spares = self._idle.setdefault(endpoint, deque())
                if len(spares) < self.max_idle:
                    spares.append(connection)
                    return
        _close_quietly(connection)

    def idle_count(self, endpoint: Optional[Endpoint] = None) -> int:
        with self._lock:
            if endpoint is not None:
                return len(self._idle.get(endpoint, ()))
            return sum(len(spares) for spares in self._idle.values())

    def discard(self, endpoint: Endpoint) -> None:
        """Drop (and close) every idle connection to *endpoint*."""
        with self._lock:
            spares = self._idle.pop(endpoint, None)
        for connection in spares or ():
            _close_quietly(connection)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            spares = [connection for queue in self._idle.values()
                      for connection in queue]
            self._idle.clear()
        for connection in spares:
            _close_quietly(connection)


#: Floor for the socket timeout on pipelined connections: reads happen
#: in slices of at least this much, so a caller with a nearly-spent
#: deadline cannot force a mid-frame timeout that would desync framing
#: for every other request on the connection.
_MIN_READ_SLICE = 0.1

#: How much one recv pulls off a socket on the framed read paths.
_RECV_SIZE = 256 * 1024


def _as_bytes(frame: Frame) -> bytes:
    return frame if isinstance(frame, bytes) else bytes(frame)


class _ChannelDead(Exception):
    """The pipelined connection died before this request was sent."""

    def __init__(self, cause: Exception):
        super().__init__(str(cause))
        self.cause = cause


class _RequestIdBusy(Exception):
    """This request id is already in flight on the chosen connection."""


class _PendingReply:
    """One caller's wait slot: filled by the reader, or failed."""

    __slots__ = ("event", "frame", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.frame: Optional[Frame] = None
        self.error: Optional[Exception] = None


class _PipelinedChannel:
    """One GIOP connection carrying multiple in-flight requests.

    Callers ``submit`` a frame (serialized by a send lock) and receive
    a wait slot; a dedicated reader thread reads reply frames as they
    arrive — in whatever order the server finished them — and delivers
    each to the slot whose ``request_id`` it answers.  A read error,
    peer close, or unattributable frame kills the channel: every
    pending caller is failed with the same cause (their replies can no
    longer arrive on this stream), and the owning transport discards
    only this stripe.
    """

    def __init__(self, endpoint: Endpoint, connection: socket.socket):
        self.endpoint = endpoint
        self._sock = connection
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _PendingReply] = {}
        self._dead: Optional[Exception] = None
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"giop-pipe-{endpoint[1]}")
        self._reader.start()

    @property
    def dead(self) -> bool:
        return self._dead is not None

    def in_flight(self) -> int:
        with self._state_lock:
            return len(self._pending)

    def submit(self, request_id: int, data: bytes,
               timeout: float) -> tuple[_PendingReply, int]:
        """Register *request_id* and send *data*; returns the wait slot
        and the in-flight depth at submission (for metrics)."""
        slot = _PendingReply()
        with self._state_lock:
            if self._dead is not None:
                raise _ChannelDead(self._dead)
            if request_id in self._pending:
                raise _RequestIdBusy(request_id)
            self._pending[request_id] = slot
            depth = len(self._pending)
        try:
            with self._send_lock:
                self._sock.settimeout(max(timeout, _MIN_READ_SLICE))
                self._sock.sendall(data)
        except OSError as exc:
            # A failed (possibly partial) send poisons the framing for
            # everything behind it: the whole channel is dead, but the
            # error each pending caller sees names their own request.
            self._forget(request_id)
            self._kill(exc)
            raise
        return slot, depth

    def cancel(self, request_id: int) -> None:
        """Stop waiting for *request_id* (stall timeout): a late reply
        for it will be read and dropped, keeping the stream in sync."""
        self._forget(request_id)

    def close(self) -> None:
        self._closed = True
        _close_quietly(self._sock)  # wakes the reader, which kills us

    # ------------------------------------------------------------- internals --

    def _forget(self, request_id: int) -> None:
        with self._state_lock:
            self._pending.pop(request_id, None)

    def _kill(self, cause: Exception) -> None:
        with self._state_lock:
            if self._dead is None:
                self._dead = cause
            doomed = list(self._pending.values())
            self._pending.clear()
        for slot in doomed:
            slot.error = cause
            slot.event.set()
        _close_quietly(self._sock)

    def _read_loop(self) -> None:
        # Frames are sliced out of a growable buffer fed by large
        # recvs: the old implementation read the first header byte with
        # recv(1) in a loop — one syscall per byte between frames.
        # Timeouts while the buffer sits on a frame boundary are benign
        # (an idle keep-alive connection); a timeout with a partial
        # frame buffered is fatal, because the stream can no longer be
        # resynchronised.
        buffer = FrameBuffer()
        try:
            while True:
                frame = buffer.next_frame()
                if frame is None:
                    try:
                        chunk = self._sock.recv(_RECV_SIZE)
                    except TimeoutError:
                        if self._closed:
                            raise CommFailure(
                                "pipelined connection closed") from None
                        if len(buffer):
                            raise CommFailure(
                                f"timed out mid-frame on pipelined "
                                f"connection to {self.endpoint!r}") from None
                        continue
                    if not chunk:
                        raise CommFailure("connection closed by peer")
                    buffer.feed(chunk)
                    continue
                request_id = peek_reply_id(frame)
                if request_id is None:
                    raise CommFailure(
                        f"unattributable frame on pipelined connection "
                        f"to {self.endpoint!r}")
                with self._state_lock:
                    slot = self._pending.pop(request_id, None)
                if slot is not None:
                    slot.frame = frame
                    slot.event.set()
                # No slot: the caller cancelled (stall timeout) and the
                # reply arrived late — drop it, framing stays in sync.
        except (OSError, CommFailure, MarshalError) as exc:
            self._kill(CommFailure(f"pipelined connection to "
                                   f"{self.endpoint!r} broke: {exc}")
                       if not isinstance(exc, CommFailure) else exc)


#: Listen backlog for event-loop endpoints.  The loop drains accepts in
#: a tight non-blocking burst, so a storm of connecting clients queues
#: here instead of hitting kernel SYN retransmit timers.
_LOOP_BACKLOG = 512


def _loop_default() -> bool:
    """Process-wide default for ``TcpTransport(loop=...)``: CI's
    transport-mode matrix flips whole suites to the event loop by
    exporting ``REPRO_TRANSPORT_LOOP=1`` without touching any test."""
    return os.environ.get("REPRO_TRANSPORT_LOOP", "").lower() in (
        "1", "true", "yes", "event-loop", "eventloop")


def _shed_default() -> bool:
    """Process-wide default for ``TcpTransport(overload=...)``: CI's
    overload matrix turns admission control on for whole suites by
    exporting ``REPRO_SHEDDING=1``.  Off unless asked for — shedding
    changes observable behaviour (BUSY replies) and must never
    surprise a test that queues deliberately."""
    return os.environ.get("REPRO_SHEDDING", "").lower() in (
        "1", "true", "yes", "on")


class _EventLoop:
    """One ``selectors`` thread demultiplexing every socket the
    transport owns: listeners, accepted server connections, and
    pipelined client channels.

    Everything that touches the selector or a stream's write queue runs
    on the loop thread; other threads get in via :meth:`call_soon`
    (append a callback, wake the selector through a socketpair) or
    :meth:`call_later` (a monotonic timer heap — how the modelled WAN
    ``latency`` delays replies without parking a worker thread).  Each
    iteration drains ready I/O, then callbacks, then due timers, and
    only then flushes connections with queued output — that final flush
    is the frame-batching window: every frame enqueued for the same
    connection during the iteration leaves in one ``send``.
    """

    def __init__(self, batch_flush: int, metrics: TransportMetrics,
                 name: str = "giop-loop"):
        self.batch_flush = batch_flush
        self.metrics = metrics
        self._selector = selectors.DefaultSelector()
        wake_recv, wake_send = socket.socketpair()
        wake_recv.setblocking(False)
        wake_send.setblocking(False)
        self._wake_recv, self._wake_send = wake_recv, wake_send
        self._selector.register(wake_recv, selectors.EVENT_READ,
                                self._drain_wakeups)
        self._callbacks: deque[tuple[Callable, tuple]] = deque()
        self._callback_lock = threading.Lock()
        self._timers: list[tuple[float, int, Callable, tuple]] = []
        self._timer_seq = itertools.count()
        self._dirty: set["_LoopStream"] = set()
        self._running = True
        self._thread = threading.Thread(target=self._run, name=name,
                                        daemon=True)
        self._thread.start()

    @property
    def running(self) -> bool:
        return self._running

    def on_loop_thread(self) -> bool:
        return threading.current_thread() is self._thread

    # ------------------------------------------------- cross-thread entry --

    def call_soon(self, fn: Callable, *args: Any) -> None:
        with self._callback_lock:
            self._callbacks.append((fn, args))
        self._wake()

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        due = time.monotonic() + delay
        with self._callback_lock:
            heapq.heappush(self._timers,
                           (due, next(self._timer_seq), fn, args))
        self._wake()

    def call_soon_sync(self, fn: Callable, *args: Any,
                       timeout: float = 5.0) -> Any:
        """Run *fn* on the loop thread and wait for its result.  Falls
        back to running inline when the loop is already stopped (then
        nothing else touches the selector concurrently)."""
        if self.on_loop_thread() or not self._running:
            return fn(*args)
        done = threading.Event()
        box: dict[str, Any] = {}

        def runner() -> None:
            try:
                box["result"] = fn(*args)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc
            finally:
                done.set()

        self.call_soon(runner)
        done.wait(timeout)
        if "error" in box:
            raise box["error"]
        return box.get("result")

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wake()
        if not self.on_loop_thread():
            self._thread.join(timeout=5.0)

    # ------------------------------------------------- loop-thread only --

    def register_stream(self, sock: socket.socket, events: int,
                        callback: Callable[[int], None]) -> None:
        self._selector.register(sock, events, callback)

    def modify_stream(self, sock: socket.socket, events: int,
                      callback: Callable[[int], None]) -> None:
        self._selector.modify(sock, events, callback)

    def unregister_stream(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass

    def mark_dirty(self, stream: "_LoopStream") -> None:
        self._dirty.add(stream)

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # a wakeup is already pending (or the loop is gone)

    def _drain_wakeups(self, mask: int) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _run(self) -> None:
        while self._running:
            with self._callback_lock:
                have_callbacks = bool(self._callbacks)
                next_due = self._timers[0][0] if self._timers else None
            if have_callbacks:
                timeout: Optional[float] = 0.0
            elif next_due is not None:
                timeout = max(0.0, next_due - time.monotonic())
            else:
                timeout = None
            try:
                events = self._selector.select(timeout)
            except OSError:  # pragma: no cover - fd closed mid-select
                events = []
            for key, mask in events:
                try:
                    key.data(mask)
                except Exception:  # noqa: BLE001 - a broken stream
                    pass  # must never take the whole loop down
            self._run_callbacks()
            self._run_timers()
            self._flush_dirty()
        self._teardown()

    def _run_callbacks(self) -> None:
        while True:
            with self._callback_lock:
                if not self._callbacks:
                    return
                fn, args = self._callbacks.popleft()
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 - see _run
                pass

    def _run_timers(self) -> None:
        while True:
            with self._callback_lock:
                if not self._timers \
                        or self._timers[0][0] > time.monotonic():
                    return
                __, __, fn, args = heapq.heappop(self._timers)
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 - see _run
                pass

    def _flush_dirty(self) -> None:
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, set()
        for stream in dirty:
            stream.flush()

    def _teardown(self) -> None:
        for key in list(self._selector.get_map().values()):
            if key.fileobj not in (self._wake_recv, self._wake_send):
                _close_quietly(key.fileobj)  # type: ignore[arg-type]
        self._selector.close()
        _close_quietly(self._wake_recv)
        _close_quietly(self._wake_send)


class _LoopStream:
    """A non-blocking socket driven by the event loop, with a write
    queue whose flush coalesces queued frames into batched sends."""

    def __init__(self, loop: _EventLoop, sock: socket.socket):
        self.loop = loop
        self.sock = sock
        self._out: deque[Frame] = deque()
        self._out_view: Optional[memoryview] = None
        self._write_interest = False
        self._stream_closed = False

    # Loop-thread only from here down.

    def register(self) -> None:
        if self._stream_closed:
            return
        self.loop.register_stream(self.sock, selectors.EVENT_READ,
                                  self._on_event)

    def _on_event(self, mask: int) -> None:
        if self._stream_closed:
            return
        if mask & selectors.EVENT_READ:
            self.on_readable()
        if mask & selectors.EVENT_WRITE and not self._stream_closed:
            self.flush()

    def on_readable(self) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def on_write_error(self, exc: OSError) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def enqueue(self, data: Frame) -> None:
        if self._stream_closed:
            return
        self._out.append(data)
        self.loop.mark_dirty(self)

    def flush(self) -> None:
        """Write as much queued output as the socket accepts, frames
        batched: everything enqueued since the last flush leaves in as
        few ``send`` calls as ``batch_flush`` allows."""
        if self._stream_closed:
            return
        try:
            while True:
                if self._out_view is None:
                    if not self._out:
                        break
                    self._out_view = memoryview(self._next_batch())
                sent = self.sock.send(self._out_view)
                if sent == len(self._out_view):
                    self._out_view = None
                else:
                    # Kernel buffer full: keep the remainder for the
                    # next writability event.
                    self._out_view = self._out_view[sent:]
                    break
        except (BlockingIOError, InterruptedError):
            pass
        except OSError as exc:
            self.on_write_error(exc)
            return
        self._set_write_interest(self._out_view is not None
                                 or bool(self._out))

    def _next_batch(self) -> bytes:
        if len(self._out) == 1:
            return _as_bytes(self._out.popleft())
        batch: list[bytes] = []
        size = 0
        while self._out and size < self.loop.batch_flush:
            piece = self._out.popleft()
            batch.append(_as_bytes(piece))
            size += len(piece)
        if len(batch) == 1:
            return batch[0]
        self.loop.metrics.record_batch(len(batch))
        return b"".join(batch)

    def _set_write_interest(self, want: bool) -> None:
        if want == self._write_interest or self._stream_closed:
            return
        self._write_interest = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        try:
            self.loop.modify_stream(self.sock, events, self._on_event)
        except (KeyError, ValueError, OSError):  # pragma: no cover
            pass

    def close_stream(self) -> None:
        if self._stream_closed:
            return
        self._stream_closed = True
        self.loop.unregister_stream(self.sock)
        _close_quietly(self.sock)
        self._out.clear()
        self._out_view = None


class _LoopServerConnection(_LoopStream):
    """One accepted server-side connection: reads are sliced into
    frames and dispatched to the transport's worker pool; replies are
    posted back by the workers and leave through the batched flush."""

    def __init__(self, loop: _EventLoop, transport: "TcpTransport",
                 listener: "_LoopListener", sock: socket.socket):
        super().__init__(loop, sock)
        self.transport = transport
        self.listener = listener
        self.endpoint = listener.endpoint
        self.buffer = FrameBuffer()

    def on_readable(self) -> None:
        while True:
            try:
                chunk = self.sock.recv(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.close()
                return
            if not chunk:
                self.close()
                return
            self.buffer.feed(chunk)
            if len(chunk) < _RECV_SIZE:
                break
        while True:
            try:
                frame = self.buffer.next_frame()
            except MarshalError:
                # Not a GIOP stream (or desynchronised): poisoned.
                self.close()
                return
            if frame is None:
                return
            self.transport._dispatch_loop_frame(self, frame)

    def on_write_error(self, exc: OSError) -> None:
        self.close()

    def close(self) -> None:
        self.listener.connections.discard(self)
        self.close_stream()


class _LoopListener:
    """A non-blocking listening socket: accepts drain in one burst and
    each accepted connection joins the loop — no thread per client."""

    def __init__(self, loop: _EventLoop, transport: "TcpTransport",
                 endpoint: Endpoint, sock: socket.socket):
        self.loop = loop
        self.transport = transport
        self.endpoint = endpoint
        self.sock = sock
        self.connections: set[_LoopServerConnection] = set()
        self._closed = False

    def register(self) -> None:
        if not self._closed:
            self.loop.register_stream(self.sock, selectors.EVENT_READ,
                                      self._on_event)

    def _on_event(self, mask: int) -> None:
        while not self._closed:
            try:
                conn_sock, __ = self.sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            conn_sock.setblocking(False)
            try:
                conn_sock.setsockopt(socket.IPPROTO_TCP,
                                     socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - not fatal
                pass
            connection = _LoopServerConnection(self.loop, self.transport,
                                               self, conn_sock)
            self.connections.add(connection)
            connection.register()

    def close(self) -> None:
        """Loop-thread only (via call_soon_sync from unregister)."""
        if self._closed:
            return
        self._closed = True
        self.loop.unregister_stream(self.sock)
        _close_quietly(self.sock)
        for connection in list(self.connections):
            connection.close()
        self.connections.clear()


class _LoopChannel(_LoopStream):
    """A pipelined client channel multiplexed on the event loop.

    Duck-types :class:`_PipelinedChannel` (``submit`` / ``cancel`` /
    ``close`` / ``dead`` / ``in_flight``) so the transport's stripe
    checkout, overflow, and fault-attribution machinery is shared
    verbatim between the threaded and event-loop modes.  The
    differences: there is no reader thread (the loop delivers reply
    frames), and the send happens asynchronously on the loop — so a
    write failure surfaces through each pending caller's slot (the
    same path as a mid-pipeline connection death) rather than as a
    synchronous ``OSError`` from ``submit``.
    """

    def __init__(self, loop: _EventLoop, endpoint: Endpoint,
                 sock: socket.socket):
        super().__init__(loop, sock)
        self.endpoint = endpoint
        self.buffer = FrameBuffer()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _PendingReply] = {}
        self._dead_cause: Optional[Exception] = None
        loop.call_soon(self.register)

    # ----------------------------------------------- channel API (any thread) --

    @property
    def dead(self) -> bool:
        return self._dead_cause is not None

    def in_flight(self) -> int:
        with self._state_lock:
            return len(self._pending)

    def submit(self, request_id: int, data: bytes,
               timeout: float) -> tuple[_PendingReply, int]:
        slot = _PendingReply()
        with self._state_lock:
            if self._dead_cause is not None:
                raise _ChannelDead(self._dead_cause)
            if request_id in self._pending:
                raise _RequestIdBusy(request_id)
            self._pending[request_id] = slot
            depth = len(self._pending)
        self.loop.call_soon(self.enqueue, data)
        return slot, depth

    def cancel(self, request_id: int) -> None:
        with self._state_lock:
            self._pending.pop(request_id, None)

    def close(self) -> None:
        self._kill(CommFailure(
            f"pipelined connection to {self.endpoint!r} closed"))

    def _kill(self, cause: Exception) -> None:
        """Any thread: fail every pending caller *now* (so checkout
        sees ``dead`` immediately), then tear the socket down on the
        loop thread where the selector lives."""
        with self._state_lock:
            if self._dead_cause is None:
                self._dead_cause = cause
            doomed = list(self._pending.values())
            self._pending.clear()
        for slot in doomed:
            slot.error = cause
            slot.event.set()
        if self.loop.running:
            self.loop.call_soon(self.close_stream)
        else:
            self.close_stream()

    # ------------------------------------------------------- loop thread --

    def on_readable(self) -> None:
        while True:
            try:
                chunk = self.sock.recv(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._kill(CommFailure(
                    f"pipelined connection to {self.endpoint!r} broke: "
                    f"{exc}"))
                return
            if not chunk:
                self._kill(CommFailure("connection closed by peer"))
                return
            self.buffer.feed(chunk)
            if len(chunk) < _RECV_SIZE:
                break
        while True:
            try:
                frame = self.buffer.next_frame()
            except MarshalError as exc:
                self._kill(CommFailure(
                    f"pipelined connection to {self.endpoint!r} broke: "
                    f"{exc}"))
                return
            if frame is None:
                return
            request_id = peek_reply_id(frame)
            if request_id is None:
                self._kill(CommFailure(
                    f"unattributable frame on pipelined connection to "
                    f"{self.endpoint!r}"))
                return
            with self._state_lock:
                slot = self._pending.pop(request_id, None)
            if slot is not None:
                slot.frame = frame
                slot.event.set()
            # No slot: cancelled caller's late reply — drop it.

    def on_write_error(self, exc: OSError) -> None:
        self._kill(CommFailure(
            f"pipelined connection to {self.endpoint!r} broke: {exc}"))


#: Either pipelined-channel implementation; they share the submit /
#: cancel / close / dead / in_flight contract.
_AnyChannel = Union[_PipelinedChannel, _LoopChannel]


class TcpTransport(Transport):
    """Real IIOP-over-TCP on localhost.

    Each registered endpoint gets its own threaded TCP server.  By
    default clients keep connections alive in a per-endpoint pool of at
    most *pool_size* spares: a request checks a connection out, does its
    round-trip, and checks it back in, so the steady state costs zero
    TCP handshakes.  A pooled connection that has gone stale (the server
    restarted, the peer dropped it) is discarded — and the request is
    retried once on a fresh connection **only when the current call is
    flagged idempotent** (see :mod:`repro.deadline`): once bytes went
    out on a connection, the server may already have applied the
    request, so a blind resend could execute it twice.  Non-idempotent
    calls surface the failure instead.  ``pooled=False`` restores the
    connect-per-call behaviour, which benches use as the baseline.

    The constructor's *timeout* is only the default: each ``send``
    bounds its socket timeout by the remaining budget of the calling
    thread's :class:`~repro.deadline.Deadline`, so a discovery query's
    total budget propagates down to every socket operation.

    With ``pipelined=True`` the client side switches from one
    round-trip per checked-out connection to **GIOP request
    pipelining**: concurrent callers share *stripes* connections per
    endpoint, each carrying up to *pipeline_depth* requests in flight
    at once, with replies matched back to callers by ``request_id``
    (out-of-order reply delivery is allowed — the server dispatches
    concurrently and answers as it finishes).  Requests that find every
    stripe at its depth cap overflow onto a dedicated serial
    round-trip rather than queueing.  A connection that dies
    mid-pipeline fails exactly the requests that were in flight *on
    it* — each caller gets its own failure, the idempotence gate
    decides per caller whether a resend is safe, and only the dead
    stripe is discarded (healthy sibling stripes keep their traffic).
    See ``docs/pipelining.md``.

    ``pipelined="auto"`` starts every endpoint serial and promotes it
    to striped pipelining permanently the first time two callers are
    observed in ``send`` to the same endpoint at once — the signal that
    a shared multiplexed connection beats per-caller round-trips.
    ``stripes``/``pipeline_depth`` then act as tuning hints for the
    promoted regime (``stripes`` defaults to 4 in auto mode).

    ``loop=True`` (or ``REPRO_TRANSPORT_LOOP=1``) selects the
    event-loop I/O mode; ``loop_workers`` bounds the servant dispatch
    pool and ``batch_flush`` caps how many queued bytes one flush
    coalesces into a single ``send``.  See ``docs/event-loop.md``.
    """

    _instance_seq = itertools.count(1)

    def __init__(self, host: str = "127.0.0.1", timeout: float = 5.0,
                 pooled: bool = True, pool_size: int = 8,
                 latency: float = 0.0,
                 pipelined: Union[bool, str] = False,
                 stripes: Optional[int] = None, pipeline_depth: int = 32,
                 loop: Optional[bool] = None, loop_workers: int = 6,
                 batch_flush: int = 64 * 1024, auto_threshold: int = 2,
                 accept_backlog: Optional[int] = None,
                 connection_workers: Optional[int] = None,
                 overload: Optional[OverloadPolicy] = None):
        if pipelined not in (False, True, "auto"):
            raise ValueError(
                f"pipelined must be False, True, or 'auto', "
                f"got {pipelined!r}")
        self.host = host
        self.timeout = timeout
        self.pooled = pooled
        self.pipelined = pipelined
        #: Pipelined connections per endpoint; concurrent callers are
        #: spread across stripes by least-loaded choice, and a new
        #: stripe is only opened when every existing one is busy.
        #: Unset, it defaults to 1 — except in auto mode, where a
        #: promoted endpoint goes straight to 4-way striping.
        if stripes is None:
            stripes = 4 if pipelined == "auto" else 1
        self.stripes = max(1, int(stripes))
        #: Max requests in flight per pipelined connection.
        self.pipeline_depth = max(1, int(pipeline_depth))
        #: Simulated one-way WAN delay (seconds) applied server-side to
        #: every request.  The paper's federation spans Internet sites;
        #: loopback is the degenerate zero-latency case, so benches set
        #: this to model realistic inter-site RTTs.  In threaded mode
        #: the handler sleeps (releasing the GIL, so concurrent
        #: requests overlap the delay); in event-loop mode the reply is
        #: delayed on the loop's timer heap instead, so the wait
        #: occupies no worker thread at all.
        self.latency = latency
        #: Event-loop mode, defaulting from ``REPRO_TRANSPORT_LOOP``.
        self.loop_enabled = _loop_default() if loop is None else bool(loop)
        self.loop_workers = max(1, int(loop_workers))
        self.batch_flush = max(1, int(batch_flush))
        #: Listen backlog for every endpoint this transport binds.
        #: Unset, the mode defaults apply (64 threaded, 512 loop).
        self.accept_backlog = (None if accept_backlog is None
                               else max(1, int(accept_backlog)))
        #: Per-connection dispatch pool size in threaded pipelined
        #: mode.  Unset, it tracks ``pipeline_depth`` (the pre-existing
        #: behaviour: enough workers that a full pipeline never queues).
        self.connection_workers = (None if connection_workers is None
                                   else max(1, int(connection_workers)))
        #: Server-side admission control, defaulting from
        #: ``REPRO_SHEDDING``.  Disabled, the controller is never
        #: consulted and the dispatch paths are byte-identical to a
        #: transport built before it existed.
        if overload is None:
            overload = OverloadPolicy(shed=_shed_default())
        self.admission = AdmissionController(overload)
        #: Concurrent senders to one endpoint that trigger an auto
        #: promotion (2 = the first time any overlap is observed).
        self.auto_threshold = max(2, int(auto_threshold))
        self._pool = _ConnectionPool(max_idle=pool_size) if pooled else None
        self._channels: dict[Endpoint, list[_AnyChannel]] = {}
        self._channels_lock = threading.Lock()
        self._servers: dict[Endpoint, _GiopServer] = {}
        self._listeners: dict[Endpoint, _LoopListener] = {}
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self._auto_lock = threading.Lock()
        self._auto_inflight: dict[Endpoint, int] = {}
        self._auto_promoted: set[Endpoint] = set()
        self._seq = next(TcpTransport._instance_seq)
        self._loop_name = f"giop-loop-{self._seq}"
        self._worker_prefix = f"giop-exec-{self._seq}"
        self._event_loop: Optional[_EventLoop] = None
        self._workers: Optional[ThreadPoolExecutor] = None
        #: In-flight loop-worker dispatches, so close() can drain them
        #: with a bounded timeout instead of abandoning them mid-write.
        self._loop_futures: set[Future] = set()
        self._loop_lock = threading.Lock()
        self.metrics = TransportMetrics()

    def _ensure_loop(self) -> _EventLoop:
        with self._loop_lock:
            if self._event_loop is None or not self._event_loop.running:
                self._event_loop = _EventLoop(self.batch_flush,
                                              self.metrics,
                                              name=self._loop_name)
                self._workers = ThreadPoolExecutor(
                    max_workers=self.loop_workers,
                    thread_name_prefix=self._worker_prefix)
            return self._event_loop

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        # Logical hostnames ("dba.icis.qut.edu.au") are DNS names the
        # 1999 deployment resolved; on one machine every endpoint binds
        # the transport's local interface, and the OS-assigned port
        # keeps endpoints (and therefore IORs) distinct.
        __, port = endpoint
        if self.loop_enabled:
            return self._register_loop(port, handler)
        # bind_and_activate=False so the instance's accept backlog is
        # in place before ``listen`` runs.
        server = _GiopServer((self.host, port), _GiopRequestHandler,
                             bind_and_activate=False)
        if self.accept_backlog is not None:
            server.request_queue_size = self.accept_backlog
        try:
            server.server_bind()
            server.server_activate()
        except OSError as exc:
            server.server_close()
            raise CommFailure(
                f"cannot bind {(self.host, port)!r}: {exc}") from exc
        server.transport = self  # type: ignore[attr-defined]
        bound = (self.host, server.server_address[1])
        with self._lock:
            self._servers[bound] = server
            self._handlers[bound] = handler
        thread = threading.Thread(target=server.serve_forever,
                                  name=f"giop-{bound[1]}", daemon=True)
        thread.start()
        return bound

    def _register_loop(self, port: int, handler: Handler) -> Endpoint:
        # Bind synchronously (so the OS-assigned port is known before
        # returning), then hand the listener to the loop to accept on.
        loop = self._ensure_loop()
        try:
            sock = socket.create_server(
                (self.host, port),
                backlog=self.accept_backlog or _LOOP_BACKLOG)
        except OSError as exc:
            raise CommFailure(
                f"cannot bind {(self.host, port)!r}: {exc}") from exc
        sock.setblocking(False)
        bound = (self.host, sock.getsockname()[1])
        listener = _LoopListener(loop, self, bound, sock)
        with self._lock:
            self._listeners[bound] = listener
            self._handlers[bound] = handler
        loop.call_soon(listener.register)
        return bound

    def handler_for(self, endpoint: Endpoint) -> Optional[Handler]:
        with self._lock:
            return self._handlers.get(endpoint)

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            server = self._servers.pop(endpoint, None)
            listener = self._listeners.pop(endpoint, None)
            self._handlers.pop(endpoint, None)
        if self._pool is not None:
            self._pool.discard(endpoint)
        with self._channels_lock:
            channels = self._channels.pop(endpoint, [])
        for channel in channels:
            channel.close()
        if server is not None:
            server.shutdown()
            server.server_close()
        if listener is not None and self._event_loop is not None:
            self._event_loop.call_soon_sync(listener.close)

    # ---------------------------------------------------- event-loop server --

    def _dispatch_loop_frame(self, connection: _LoopServerConnection,
                             frame: Frame) -> None:
        """Loop thread: hand one decoded-off-the-wire frame to the
        worker pool.  The loop never runs servant code itself — and
        admission control runs *here*, so shed requests cost the loop a
        service-context peek instead of a worker-pool slot."""
        handler = self.handler_for(connection.endpoint)
        if handler is None or self._workers is None:
            connection.close()
            return
        ticket = None
        if self.admission.enabled:
            budget, traffic_class = peek_request_admission(frame)
            ticket, reason = self.admission.enqueue(budget, traffic_class)
            if reason is not None:
                self.metrics.record_shed(reason)
                shed_reply = busy_reply(frame, reason)
                if shed_reply is not None:
                    connection.enqueue(shed_reply)
                return
        try:
            future = self._workers.submit(self._serve_loop_frame,
                                          connection, handler, frame,
                                          ticket)
        except RuntimeError:  # pool shut down mid-close
            if ticket is not None:
                self.admission.abandon(ticket)
            connection.close()
            return
        self._loop_futures.add(future)

        # Mirrors the threaded path: a future cancelled by
        # ``close()``'s shutdown(cancel_futures=True) never reaches
        # ``_serve_loop_frame``, so its admission slot must be
        # released here or it leaks on the shared controller.
        def _settle(f: Future, t=ticket) -> None:
            self._loop_futures.discard(f)
            if t is not None and f.cancelled():
                self.admission.abandon(t)

        future.add_done_callback(_settle)

    def _serve_loop_frame(self, connection: _LoopServerConnection,
                          handler: Handler, frame: Frame,
                          ticket=None) -> None:
        """Worker thread: run the servant, post the reply back to the
        loop.  The modelled WAN ``latency`` is applied as a timer delay
        on the reply rather than a worker sleep — a storm of delayed
        requests parks on the loop's heap, not on scarce threads."""
        loop = self._event_loop
        if ticket is not None:
            reason = self.admission.dequeue(ticket)
            if reason is not None:
                self.metrics.record_shed(reason)
                shed_reply = busy_reply(frame, reason)
                if shed_reply is not None and loop is not None:
                    loop.call_soon(connection.enqueue, shed_reply)
                return
        try:
            reply = handler(frame)
        except Exception:  # noqa: BLE001 - undecodable frame: the
            if loop is not None:  # stream is poisoned, drop it
                loop.call_soon(connection.close)
            return
        if reply and loop is not None:
            if self.latency > 0:
                loop.call_later(self.latency, connection.enqueue, reply)
            else:
                loop.call_soon(connection.enqueue, reply)

    def server_thread_count(self) -> int:
        """OS threads this transport's event-loop server side is using
        (the loop plus started workers) — what the storm bench bounds."""
        return sum(1 for thread in threading.enumerate()
                   if thread.name == self._loop_name
                   or thread.name.startswith(self._worker_prefix))

    def _roundtrip(self, connection: socket.socket, data: bytes) -> bytes:
        connection.sendall(data)
        return read_giop_frame(connection)

    def _effective_timeout(self) -> tuple[float, Optional[Deadline]]:
        """Socket timeout for this call: the constructor default,
        tightened to the calling thread's remaining deadline budget."""
        deadline = current_policy().deadline
        if deadline is None:
            return self.timeout, None
        return min(self.timeout, deadline.require("IIOP request")), deadline

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        timeout, deadline = self._effective_timeout()
        # First attempts refill the caller's retry budget per endpoint;
        # transparent resends (stale pool, dead stripe) draw it down.
        # A send re-entered by a policy-level retry (attempt > 1) is
        # itself a retry, not a first attempt: refilling for it would
        # let retry-heavy traffic mint the tokens funding its own
        # retries, overstating the ratio cap.
        policy = current_policy()
        budget = policy.retry_budget
        if budget is not None and policy.attempt == 1:
            budget.note_attempt(f"{endpoint[0]}:{endpoint[1]}")
        use_pipeline = self.pipelined is True
        tracking_auto = False
        if self.pipelined == "auto":
            use_pipeline, tracking_auto = self._auto_enter(endpoint)
        try:
            if use_pipeline:
                request_id, response_expected = peek_request(data)
                if request_id is not None:
                    return self._send_pipelined(endpoint, data, request_id,
                                                response_expected, timeout,
                                                deadline)
                # Frames without a request id cannot be matched to a
                # reply: give them a dedicated serial round-trip.
            return self._send_serial(endpoint, data, timeout, deadline)
        finally:
            if tracking_auto:
                self._auto_leave(endpoint)

    def _auto_enter(self, endpoint: Endpoint) -> tuple[bool, bool]:
        """Auto mode, on the way into ``send``: returns
        ``(use_pipeline, tracking)``.  An endpoint not yet promoted has
        its concurrent-sender count bumped; reaching the threshold
        promotes it permanently (including for this very call)."""
        with self._auto_lock:
            if endpoint in self._auto_promoted:
                return True, False
            depth = self._auto_inflight.get(endpoint, 0) + 1
            self._auto_inflight[endpoint] = depth
            if depth < self.auto_threshold:
                return False, True
            self._auto_promoted.add(endpoint)
        self.metrics.record_auto_promotion()
        return True, True

    def _auto_leave(self, endpoint: Endpoint) -> None:
        with self._auto_lock:
            remaining = self._auto_inflight.get(endpoint, 0) - 1
            if remaining > 0:
                self._auto_inflight[endpoint] = remaining
            else:
                self._auto_inflight.pop(endpoint, None)

    def pipelining_active(self, endpoint: Endpoint) -> bool:
        """Whether requests to *endpoint* currently pipeline (always in
        ``pipelined=True`` mode; in auto mode, once promoted)."""
        if self.pipelined is True:
            return True
        if self.pipelined != "auto":
            return False
        with self._auto_lock:
            return endpoint in self._auto_promoted

    def _send_serial(self, endpoint: Endpoint, data: bytes,
                     timeout: float, deadline: Optional[Deadline]) -> bytes:
        if self._pool is not None:
            pooled = self._pool.checkout(endpoint)
            if pooled is not None:
                try:
                    pooled.settimeout(timeout)
                    reply = self._roundtrip(pooled, data)
                except (OSError, CommFailure) as exc:
                    # Stale keep-alive connection.  The request may
                    # already have gone out on it — the server could
                    # have applied it and only the reply been lost —
                    # so resending on a fresh connection is gated on
                    # the caller having declared this call idempotent
                    # (the metadata reads of the discovery hot path).
                    _close_quietly(pooled)
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceeded(
                            f"IIOP request to {endpoint!r} overran its "
                            f"deadline: {exc}") from exc
                    if not current_policy().idempotent:
                        raise CommFailure(
                            f"IIOP send to {endpoint!r} failed on a "
                            f"pooled connection; not resending a "
                            f"non-idempotent request ({exc})") from exc
                    self._charge_resend(endpoint, exc)
                else:
                    self._pool.checkin(endpoint, pooled)
                    self.metrics.record_connection(reused=True)
                    self.metrics.record(endpoint, len(data), len(reply))
                    return reply
        try:
            connection = socket.create_connection(endpoint,
                                                  timeout=timeout)
        except OSError as exc:
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"IIOP connect to {endpoint!r} overran its deadline: "
                    f"{exc}") from exc
            raise CommFailure(
                f"IIOP connect to {endpoint!r} failed: {exc}") from exc
        try:
            reply = self._roundtrip(connection, data)
        except (OSError, CommFailure) as exc:
            _close_quietly(connection)
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"IIOP request to {endpoint!r} overran its deadline: "
                    f"{exc}") from exc
            raise CommFailure(
                f"IIOP send to {endpoint!r} failed: {exc}") from exc
        if self._pool is not None:
            self._pool.checkin(endpoint, connection)
        else:
            _close_quietly(connection)
        self.metrics.record_connection(reused=False)
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    # ------------------------------------------------------- pipelined client --

    def _send_pipelined(self, endpoint: Endpoint, data: bytes,
                        request_id: int, response_expected: bool,
                        timeout: float,
                        deadline: Optional[Deadline]) -> bytes:
        """One request through a shared pipelined connection.

        Mirrors the serial path's resend contract: a failure *after*
        the request's bytes may have gone out is only retried (once, on
        a fresh serial connection) when the caller declared the call
        idempotent; a failure *before* anything was sent is freely
        retried on a sibling stripe.
        """
        attempts = 0
        while True:
            attempts += 1
            channel, opened = self._checkout_channel(endpoint, timeout,
                                                     deadline)
            if channel is None:
                # Every stripe is at its depth cap: overflow to a
                # dedicated serial round-trip instead of queueing.
                self.metrics.record_overflow()
                return self._send_serial(endpoint, data, timeout, deadline)
            try:
                slot, depth = channel.submit(request_id, data, timeout)
            except _RequestIdBusy:
                # Another caller already has this id in flight here
                # (hand-crafted frames can collide); never cross wires.
                return self._send_serial(endpoint, data, timeout, deadline)
            except _ChannelDead as exc:
                # Died before our bytes went out: a sibling (or fresh)
                # stripe is always safe to try.
                self._drop_channel(endpoint, channel)
                if attempts <= self.stripes + 1:
                    continue
                raise CommFailure(
                    f"no live pipelined connection to {endpoint!r}: "
                    f"{exc.cause}") from exc.cause
            except OSError as exc:
                # The send itself failed — bytes may be on the wire.
                self._drop_channel(endpoint, channel)
                self._gate_resend(endpoint, exc, deadline)
                return self._send_serial(endpoint, data, timeout, deadline)
            break
        self.metrics.record_connection(reused=not opened)
        self.metrics.record_pipeline(depth)
        if not response_expected:
            self.metrics.record(endpoint, len(data), 0)
            return b""
        if not slot.event.wait(timeout):
            channel.cancel(request_id)
            if slot.frame is not None:  # delivered in the cancel race
                self.metrics.record(endpoint, len(data), len(slot.frame))
                return _as_bytes(slot.frame)
            self.metrics.record_stall()
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"pipelined IIOP request {request_id} to {endpoint!r} "
                    f"overran its deadline (no matching reply within "
                    f"{timeout:.3f}s)")
            raise CommFailure(
                f"pipeline stall: no reply for request {request_id} from "
                f"{endpoint!r} within {timeout:.3f}s")
        if slot.error is not None:
            # The connection died with our request in flight.  Only
            # this stripe is discarded; whether a resend is safe is the
            # caller's (idempotence) call, exactly as for a stale
            # pooled connection.
            self._drop_channel(endpoint, channel)
            self._gate_resend(endpoint, slot.error, deadline)
            return self._send_serial(endpoint, data, timeout, deadline)
        reply = _as_bytes(slot.frame) if slot.frame is not None else b""
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def _checkout_channel(self, endpoint: Endpoint, timeout: float,
                          deadline: Optional[Deadline]
                          ) -> tuple[Optional[_AnyChannel], bool]:
        """The least-loaded live stripe for *endpoint* (opening a new
        one while under the stripe cap and all existing stripes are
        busy), as ``(channel, opened)``.  ``(None, False)`` means every
        stripe is at :attr:`pipeline_depth` (overflow)."""
        with self._channels_lock:
            channels = [channel
                        for channel in self._channels.get(endpoint, ())
                        if not channel.dead]
            self._channels[endpoint] = channels
            best = min(channels, key=lambda channel: channel.in_flight(),
                       default=None)
            if best is not None:
                load = best.in_flight()
                if load == 0 or len(channels) >= self.stripes:
                    if load >= self.pipeline_depth:
                        return None, False
                    return best, False
            try:
                connection = socket.create_connection(endpoint,
                                                      timeout=timeout)
            except OSError as exc:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceeded(
                        f"IIOP connect to {endpoint!r} overran its "
                        f"deadline: {exc}") from exc
                raise CommFailure(
                    f"IIOP connect to {endpoint!r} failed: {exc}") from exc
            channel: _AnyChannel
            if self.loop_enabled:
                connection.setblocking(False)
                try:
                    connection.setsockopt(socket.IPPROTO_TCP,
                                          socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - not fatal
                    pass
                channel = _LoopChannel(self._ensure_loop(), endpoint,
                                       connection)
            else:
                channel = _PipelinedChannel(endpoint, connection)
            channels.append(channel)
            return channel, True

    def _drop_channel(self, endpoint: Endpoint,
                      channel: _AnyChannel) -> None:
        """Discard one dead stripe.  Healthy sibling stripes — and the
        requests in flight on them — are untouched."""
        with self._channels_lock:
            channels = self._channels.get(endpoint)
            if channels and channel in channels:
                channels.remove(channel)
        channel.close()

    def _gate_resend(self, endpoint: Endpoint, cause: Exception,
                     deadline: Optional[Deadline]) -> None:
        """Raise unless the current call may be resent: the request may
        already have executed server-side, so only an idempotence vouch
        (see :mod:`repro.deadline`) permits a second copy."""
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"IIOP request to {endpoint!r} overran its deadline: "
                f"{cause}") from cause
        if not current_policy().idempotent:
            raise CommFailure(
                f"IIOP send to {endpoint!r} failed on a pipelined "
                f"connection; not resending a non-idempotent request "
                f"({cause})") from cause
        self._charge_resend(endpoint, cause)

    def _charge_resend(self, endpoint: Endpoint, cause: Exception) -> None:
        """Withdraw one retry token for a transparent resend; without a
        token the failure surfaces instead — even "free" transport
        retries must stay inside the caller's retry budget, or a busy
        endpoint sees its offered load multiply exactly when it can
        least afford it."""
        budget = current_policy().retry_budget
        if budget is not None \
                and not budget.try_acquire(f"{endpoint[0]}:{endpoint[1]}"):
            raise CommFailure(
                f"retry budget exhausted for {endpoint!r}; not resending "
                f"({cause})") from cause

    def stripe_count(self, endpoint: Endpoint) -> int:
        """Live pipelined connections to *endpoint* (tests, tuning)."""
        with self._channels_lock:
            return sum(1 for channel in self._channels.get(endpoint, ())
                       if not channel.dead)

    def pipeline_in_flight(self, endpoint: Endpoint) -> int:
        """Requests currently in flight across *endpoint*'s stripes."""
        with self._channels_lock:
            return sum(channel.in_flight()
                       for channel in self._channels.get(endpoint, ())
                       if not channel.dead)

    def idle_connections(self, endpoint: Optional[Endpoint] = None) -> int:
        """Spare pooled connections (for tests and pool tuning)."""
        if self._pool is None:
            return 0
        return self._pool.idle_count(endpoint)

    def close(self) -> None:
        """Shut down every server this transport started."""
        if self._pool is not None:
            self._pool.close()
        with self._channels_lock:
            channels = [channel for stripes in self._channels.values()
                        for channel in stripes]
            self._channels.clear()
        for channel in channels:
            channel.close()
        for endpoint in list(self._servers) + list(self._listeners):
            self.unregister(endpoint)
        with self._loop_lock:
            loop, self._event_loop = self._event_loop, None
            workers, self._workers = self._workers, None
        if workers is not None:
            # Same teardown contract as the per-connection pools: let
            # running dispatches finish within a bounded window (they
            # may hold journal/registry locks), cancel the queued rest.
            workers.shutdown(wait=False, cancel_futures=True)
            pending = [future for future in list(self._loop_futures)
                       if not future.done()]
            if pending:
                _wait_futures(pending, timeout=_DRAIN_TIMEOUT)
        if loop is not None:
            loop.stop()
