"""Transports carrying GIOP messages between ORBs.

Two interchangeable transports:

* :class:`InMemoryNetwork` — a process-local IIOP fabric.  Endpoints
  register handlers; requests are delivered synchronously as *bytes*
  (messages are genuinely marshalled, so the full encode/decode path is
  exercised) while message and byte counters accumulate for the
  scalability benchmarks.
* :class:`TcpTransport` — real IIOP-over-TCP on the loopback interface,
  framing messages with the GIOP header's size field.  Connections are
  kept alive and pooled per endpoint by default (CORBA 2.0 permits
  either connection reuse or per-call connections); pass
  ``pooled=False`` for the per-call behaviour benchmarks use as a
  baseline.

Both expose the same two operations: ``register`` a server endpoint and
``send`` a request to an endpoint, returning the reply bytes.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.deadline import Deadline, current_policy
from repro.errors import CommFailure, DeadlineExceeded
from repro.orb.giop import HEADER_SIZE, peek_reply_id, peek_request

#: A server-side message handler: request bytes in, reply bytes out
#: (None for oneway messages).
Handler = Callable[[bytes], Optional[bytes]]

Endpoint = tuple[str, int]


@dataclass
class TransportMetrics:
    """Counters accumulated by a transport, consumed by benchmarks.

    Transports serve many client threads at once (``ThreadingTCPServer``
    on the server side, parallel discovery fan-out on the client side),
    so every update happens under one lock — unlocked ``+=`` on these
    counters loses increments under contention.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_endpoint: dict[Endpoint, int] = field(default_factory=dict)
    #: TCP connection accounting (always zero on the in-memory fabric).
    connections_opened: int = 0
    connections_reused: int = 0
    #: Pipelining accounting: requests submitted while at least one
    #: other request was already in flight on the same connection, the
    #: deepest in-flight depth any connection reached, callers that
    #: gave up waiting for a matched reply (stalls), and requests that
    #: found every stripe at its depth cap (overflows, served on a
    #: dedicated serial round-trip instead).
    requests_pipelined: int = 0
    max_in_flight: int = 0
    pipeline_stalls: int = 0
    pipeline_overflows: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, endpoint: Endpoint, request_size: int,
               reply_size: int) -> None:
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += request_size
            self.bytes_received += reply_size
            self.per_endpoint[endpoint] = \
                self.per_endpoint.get(endpoint, 0) + 1

    def record_connection(self, reused: bool) -> None:
        with self._lock:
            if reused:
                self.connections_reused += 1
            else:
                self.connections_opened += 1

    def record_pipeline(self, depth: int) -> None:
        with self._lock:
            if depth > 1:
                self.requests_pipelined += 1
            if depth > self.max_in_flight:
                self.max_in_flight = depth

    def record_stall(self) -> None:
        with self._lock:
            self.pipeline_stalls += 1

    def record_overflow(self) -> None:
        with self._lock:
            self.pipeline_overflows += 1

    def reset(self) -> None:
        with self._lock:
            self.messages_sent = 0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.per_endpoint.clear()
            self.connections_opened = 0
            self.connections_reused = 0
            self.requests_pipelined = 0
            self.max_in_flight = 0
            self.pipeline_stalls = 0
            self.pipeline_overflows = 0


class Transport:
    """Abstract transport interface."""

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        raise NotImplementedError  # pragma: no cover - interface

    def unregister(self, endpoint: Endpoint) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        raise NotImplementedError  # pragma: no cover - interface


class InMemoryNetwork(Transport):
    """A synchronous, in-process network of GIOP endpoints."""

    def __init__(self) -> None:
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()
        self._next_port = 20000

    def allocate_port(self) -> int:
        """Hand out a fresh port number for auto-assigned endpoints."""
        with self._lock:
            port = self._next_port
            self._next_port += 1
            return port

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        with self._lock:
            if endpoint in self._handlers:
                raise CommFailure(f"endpoint {endpoint!r} already bound")
            self._handlers[endpoint] = handler
        return endpoint

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._handlers.pop(endpoint, None)

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        # The lookup must happen under the lock: concurrent
        # register/unregister during parallel discovery must not let a
        # sender observe a torn view of the handler table.
        with self._lock:
            handler = self._handlers.get(endpoint)
        if handler is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        reply = handler(data)
        if reply is None:
            reply = b""
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def endpoints(self) -> list[Endpoint]:
        """Currently bound endpoints."""
        with self._lock:
            return list(self._handlers)


def _read_exact(connection: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = connection.recv(remaining)
        if not chunk:
            raise CommFailure("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_giop_frame(connection: socket.socket) -> bytes:
    """Read one GIOP message (header + body) from a socket."""
    header = _read_exact(connection, HEADER_SIZE)
    little_endian = bool(header[6] & 1)
    size = int.from_bytes(header[8:12], "little" if little_endian else "big")
    body = _read_exact(connection, size) if size else b""
    return header + body


def _close_quietly(connection: socket.socket) -> None:
    try:
        connection.close()
    except OSError:  # pragma: no cover - close failures are ignorable
        pass


class _GiopRequestHandler(socketserver.BaseRequestHandler):
    """Serves one client connection for its lifetime.

    Frames keep arriving on the same socket until the peer closes it
    (keep-alive IIOP) — pooled clients amortise the TCP handshake over
    many requests, per-call clients simply close after one frame.

    On a **pipelined** transport the client may have many requests in
    flight on this one socket, so frames are dispatched to a
    per-connection worker pool: request processing (and the modelled
    ``latency`` sleeps) overlaps, and replies go back as they finish —
    possibly out of request order, which GIOP permits because clients
    match replies by ``request_id``.  The pool's threads persist for
    the connection's life (spawning a thread per frame costs more than
    a small request round-trip).  A per-connection write lock keeps
    concurrently-finished reply frames from interleaving on the wire.
    """

    def handle(self) -> None:
        transport: TcpTransport = self.server.transport  # type: ignore[attr-defined]
        endpoint = self.server.server_address  # type: ignore[attr-defined]
        write_lock = threading.Lock()
        workers: Optional[ThreadPoolExecutor] = None
        if transport.pipelined:
            workers = ThreadPoolExecutor(
                max_workers=transport.pipeline_depth,
                thread_name_prefix=f"giop-worker-{endpoint[1]}")
        try:
            while True:
                try:
                    data = read_giop_frame(self.request)
                except CommFailure:
                    return  # peer closed (or died) between frames
                handler = transport.handler_for((endpoint[0], endpoint[1]))
                if handler is None:
                    return
                if workers is not None:
                    workers.submit(self._serve_one, transport, handler,
                                   data, write_lock)
                else:
                    self._serve_one(transport, handler, data, write_lock)
        finally:
            if workers is not None:
                workers.shutdown(wait=False)

    def _serve_one(self, transport: "TcpTransport", handler: Handler,
                   data: bytes, write_lock: threading.Lock) -> None:
        if transport.latency > 0:
            time.sleep(transport.latency)
        try:
            reply = handler(data)
        except Exception:  # noqa: BLE001 - undecodable frame: the
            _close_quietly(self.request)  # stream is poisoned, drop it
            return
        if reply:
            try:
                with write_lock:
                    self.request.sendall(reply)
            except OSError:
                _close_quietly(self.request)


class _GiopServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # Parallel discovery fan-out opens bursts of simultaneous
    # connections; the socketserver default backlog of 5 drops the
    # overflow SYNs, stalling clients on kernel retransmit timers.
    request_queue_size = 64


class _ConnectionPool:
    """Idle keep-alive connections, bounded per endpoint.

    ``checkout`` hands an idle connection to exactly one caller (or
    None); ``checkin`` returns it, closing it instead when the endpoint
    already holds ``max_idle`` spares or the pool is closed.
    """

    def __init__(self, max_idle: int = 8):
        self.max_idle = max_idle
        self._idle: dict[Endpoint, deque[socket.socket]] = {}
        self._lock = threading.Lock()
        self._closed = False

    def checkout(self, endpoint: Endpoint) -> Optional[socket.socket]:
        with self._lock:
            spares = self._idle.get(endpoint)
            if spares:
                return spares.popleft()
        return None

    def checkin(self, endpoint: Endpoint,
                connection: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                spares = self._idle.setdefault(endpoint, deque())
                if len(spares) < self.max_idle:
                    spares.append(connection)
                    return
        _close_quietly(connection)

    def idle_count(self, endpoint: Optional[Endpoint] = None) -> int:
        with self._lock:
            if endpoint is not None:
                return len(self._idle.get(endpoint, ()))
            return sum(len(spares) for spares in self._idle.values())

    def discard(self, endpoint: Endpoint) -> None:
        """Drop (and close) every idle connection to *endpoint*."""
        with self._lock:
            spares = self._idle.pop(endpoint, None)
        for connection in spares or ():
            _close_quietly(connection)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            spares = [connection for queue in self._idle.values()
                      for connection in queue]
            self._idle.clear()
        for connection in spares:
            _close_quietly(connection)


#: Floor for the socket timeout on pipelined connections: reads happen
#: in slices of at least this much, so a caller with a nearly-spent
#: deadline cannot force a mid-frame timeout that would desync framing
#: for every other request on the connection.
_MIN_READ_SLICE = 0.1


class _ChannelDead(Exception):
    """The pipelined connection died before this request was sent."""

    def __init__(self, cause: Exception):
        super().__init__(str(cause))
        self.cause = cause


class _RequestIdBusy(Exception):
    """This request id is already in flight on the chosen connection."""


class _PendingReply:
    """One caller's wait slot: filled by the reader, or failed."""

    __slots__ = ("event", "frame", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.frame: Optional[bytes] = None
        self.error: Optional[Exception] = None


class _PipelinedChannel:
    """One GIOP connection carrying multiple in-flight requests.

    Callers ``submit`` a frame (serialized by a send lock) and receive
    a wait slot; a dedicated reader thread reads reply frames as they
    arrive — in whatever order the server finished them — and delivers
    each to the slot whose ``request_id`` it answers.  A read error,
    peer close, or unattributable frame kills the channel: every
    pending caller is failed with the same cause (their replies can no
    longer arrive on this stream), and the owning transport discards
    only this stripe.
    """

    def __init__(self, endpoint: Endpoint, connection: socket.socket):
        self.endpoint = endpoint
        self._sock = connection
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _PendingReply] = {}
        self._dead: Optional[Exception] = None
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"giop-pipe-{endpoint[1]}")
        self._reader.start()

    @property
    def dead(self) -> bool:
        return self._dead is not None

    def in_flight(self) -> int:
        with self._state_lock:
            return len(self._pending)

    def submit(self, request_id: int, data: bytes,
               timeout: float) -> tuple[_PendingReply, int]:
        """Register *request_id* and send *data*; returns the wait slot
        and the in-flight depth at submission (for metrics)."""
        slot = _PendingReply()
        with self._state_lock:
            if self._dead is not None:
                raise _ChannelDead(self._dead)
            if request_id in self._pending:
                raise _RequestIdBusy(request_id)
            self._pending[request_id] = slot
            depth = len(self._pending)
        try:
            with self._send_lock:
                self._sock.settimeout(max(timeout, _MIN_READ_SLICE))
                self._sock.sendall(data)
        except OSError as exc:
            # A failed (possibly partial) send poisons the framing for
            # everything behind it: the whole channel is dead, but the
            # error each pending caller sees names their own request.
            self._forget(request_id)
            self._kill(exc)
            raise
        return slot, depth

    def cancel(self, request_id: int) -> None:
        """Stop waiting for *request_id* (stall timeout): a late reply
        for it will be read and dropped, keeping the stream in sync."""
        self._forget(request_id)

    def close(self) -> None:
        self._closed = True
        _close_quietly(self._sock)  # wakes the reader, which kills us

    # ------------------------------------------------------------- internals --

    def _forget(self, request_id: int) -> None:
        with self._state_lock:
            self._pending.pop(request_id, None)

    def _kill(self, cause: Exception) -> None:
        with self._state_lock:
            if self._dead is None:
                self._dead = cause
            doomed = list(self._pending.values())
            self._pending.clear()
        for slot in doomed:
            slot.error = cause
            slot.event.set()
        _close_quietly(self._sock)

    def _read_loop(self) -> None:
        try:
            while True:
                frame = self._read_frame()
                request_id = peek_reply_id(frame)
                if request_id is None:
                    raise CommFailure(
                        f"unattributable frame on pipelined connection "
                        f"to {self.endpoint!r}")
                with self._state_lock:
                    slot = self._pending.pop(request_id, None)
                if slot is not None:
                    slot.frame = frame
                    slot.event.set()
                # No slot: the caller cancelled (stall timeout) and the
                # reply arrived late — drop it, framing stays in sync.
        except (OSError, CommFailure) as exc:
            self._kill(CommFailure(f"pipelined connection to "
                                   f"{self.endpoint!r} broke: {exc}")
                       if not isinstance(exc, CommFailure) else exc)

    def _read_frame(self) -> bytes:
        first = self._recv_between_frames()
        header = first + self._read_exact(HEADER_SIZE - 1)
        little_endian = bool(header[6] & 1)
        size = int.from_bytes(header[8:12],
                              "little" if little_endian else "big")
        body = self._read_exact(size) if size else b""
        return header + body

    def _recv_between_frames(self) -> bytes:
        """First byte of the next frame.  Timeouts *between* frames are
        benign (an idle keep-alive connection); once a frame has
        started, :meth:`_read_exact` treats a timeout as fatal because
        the stream can no longer be resynchronised."""
        while True:
            try:
                chunk = self._sock.recv(1)
            except TimeoutError:
                if self._closed:
                    raise CommFailure("pipelined connection closed")
                continue
            if not chunk:
                raise CommFailure("connection closed by peer")
            return chunk

    def _read_exact(self, count: int) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining > 0:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise CommFailure("connection closed mid-message")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


class TcpTransport(Transport):
    """Real IIOP-over-TCP on localhost.

    Each registered endpoint gets its own threaded TCP server.  By
    default clients keep connections alive in a per-endpoint pool of at
    most *pool_size* spares: a request checks a connection out, does its
    round-trip, and checks it back in, so the steady state costs zero
    TCP handshakes.  A pooled connection that has gone stale (the server
    restarted, the peer dropped it) is discarded — and the request is
    retried once on a fresh connection **only when the current call is
    flagged idempotent** (see :mod:`repro.deadline`): once bytes went
    out on a connection, the server may already have applied the
    request, so a blind resend could execute it twice.  Non-idempotent
    calls surface the failure instead.  ``pooled=False`` restores the
    connect-per-call behaviour, which benches use as the baseline.

    The constructor's *timeout* is only the default: each ``send``
    bounds its socket timeout by the remaining budget of the calling
    thread's :class:`~repro.deadline.Deadline`, so a discovery query's
    total budget propagates down to every socket operation.

    With ``pipelined=True`` the client side switches from one
    round-trip per checked-out connection to **GIOP request
    pipelining**: concurrent callers share *stripes* connections per
    endpoint, each carrying up to *pipeline_depth* requests in flight
    at once, with replies matched back to callers by ``request_id``
    (out-of-order reply delivery is allowed — the server dispatches
    concurrently and answers as it finishes).  Requests that find every
    stripe at its depth cap overflow onto a dedicated serial
    round-trip rather than queueing.  A connection that dies
    mid-pipeline fails exactly the requests that were in flight *on
    it* — each caller gets its own failure, the idempotence gate
    decides per caller whether a resend is safe, and only the dead
    stripe is discarded (healthy sibling stripes keep their traffic).
    See ``docs/pipelining.md``.
    """

    def __init__(self, host: str = "127.0.0.1", timeout: float = 5.0,
                 pooled: bool = True, pool_size: int = 8,
                 latency: float = 0.0, pipelined: bool = False,
                 stripes: int = 1, pipeline_depth: int = 32):
        self.host = host
        self.timeout = timeout
        self.pooled = pooled
        self.pipelined = pipelined
        #: Pipelined connections per endpoint; concurrent callers are
        #: spread across stripes by least-loaded choice, and a new
        #: stripe is only opened when every existing one is busy.
        self.stripes = max(1, int(stripes))
        #: Max requests in flight per pipelined connection.
        self.pipeline_depth = max(1, int(pipeline_depth))
        #: Simulated one-way WAN delay (seconds) applied server-side to
        #: every request.  The paper's federation spans Internet sites;
        #: loopback is the degenerate zero-latency case, so benches set
        #: this to model realistic inter-site RTTs.  Sleeping releases
        #: the GIL, so concurrent requests overlap the delay exactly as
        #: real network waits would.
        self.latency = latency
        self._pool = _ConnectionPool(max_idle=pool_size) if pooled else None
        self._channels: dict[Endpoint, list[_PipelinedChannel]] = {}
        self._channels_lock = threading.Lock()
        self._servers: dict[Endpoint, _GiopServer] = {}
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        # Logical hostnames ("dba.icis.qut.edu.au") are DNS names the
        # 1999 deployment resolved; on one machine every endpoint binds
        # the transport's local interface, and the OS-assigned port
        # keeps endpoints (and therefore IORs) distinct.
        __, port = endpoint
        server = _GiopServer((self.host, port), _GiopRequestHandler)
        server.transport = self  # type: ignore[attr-defined]
        bound = (self.host, server.server_address[1])
        with self._lock:
            self._servers[bound] = server
            self._handlers[bound] = handler
        thread = threading.Thread(target=server.serve_forever,
                                  name=f"giop-{bound[1]}", daemon=True)
        thread.start()
        return bound

    def handler_for(self, endpoint: Endpoint) -> Optional[Handler]:
        with self._lock:
            return self._handlers.get(endpoint)

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            server = self._servers.pop(endpoint, None)
            self._handlers.pop(endpoint, None)
        if self._pool is not None:
            self._pool.discard(endpoint)
        with self._channels_lock:
            channels = self._channels.pop(endpoint, [])
        for channel in channels:
            channel.close()
        if server is not None:
            server.shutdown()
            server.server_close()

    def _roundtrip(self, connection: socket.socket, data: bytes) -> bytes:
        connection.sendall(data)
        return read_giop_frame(connection)

    def _effective_timeout(self) -> tuple[float, Optional[Deadline]]:
        """Socket timeout for this call: the constructor default,
        tightened to the calling thread's remaining deadline budget."""
        deadline = current_policy().deadline
        if deadline is None:
            return self.timeout, None
        return min(self.timeout, deadline.require("IIOP request")), deadline

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        timeout, deadline = self._effective_timeout()
        if self.pipelined:
            request_id, response_expected = peek_request(data)
            if request_id is not None:
                return self._send_pipelined(endpoint, data, request_id,
                                            response_expected, timeout,
                                            deadline)
            # Frames without a request id cannot be matched to a reply:
            # give them a dedicated serial round-trip.
        return self._send_serial(endpoint, data, timeout, deadline)

    def _send_serial(self, endpoint: Endpoint, data: bytes,
                     timeout: float, deadline: Optional[Deadline]) -> bytes:
        if self._pool is not None:
            pooled = self._pool.checkout(endpoint)
            if pooled is not None:
                try:
                    pooled.settimeout(timeout)
                    reply = self._roundtrip(pooled, data)
                except (OSError, CommFailure) as exc:
                    # Stale keep-alive connection.  The request may
                    # already have gone out on it — the server could
                    # have applied it and only the reply been lost —
                    # so resending on a fresh connection is gated on
                    # the caller having declared this call idempotent
                    # (the metadata reads of the discovery hot path).
                    _close_quietly(pooled)
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceeded(
                            f"IIOP request to {endpoint!r} overran its "
                            f"deadline: {exc}") from exc
                    if not current_policy().idempotent:
                        raise CommFailure(
                            f"IIOP send to {endpoint!r} failed on a "
                            f"pooled connection; not resending a "
                            f"non-idempotent request ({exc})") from exc
                else:
                    self._pool.checkin(endpoint, pooled)
                    self.metrics.record_connection(reused=True)
                    self.metrics.record(endpoint, len(data), len(reply))
                    return reply
        try:
            connection = socket.create_connection(endpoint,
                                                  timeout=timeout)
        except OSError as exc:
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"IIOP connect to {endpoint!r} overran its deadline: "
                    f"{exc}") from exc
            raise CommFailure(
                f"IIOP connect to {endpoint!r} failed: {exc}") from exc
        try:
            reply = self._roundtrip(connection, data)
        except (OSError, CommFailure) as exc:
            _close_quietly(connection)
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"IIOP request to {endpoint!r} overran its deadline: "
                    f"{exc}") from exc
            raise CommFailure(
                f"IIOP send to {endpoint!r} failed: {exc}") from exc
        if self._pool is not None:
            self._pool.checkin(endpoint, connection)
        else:
            _close_quietly(connection)
        self.metrics.record_connection(reused=False)
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    # ------------------------------------------------------- pipelined client --

    def _send_pipelined(self, endpoint: Endpoint, data: bytes,
                        request_id: int, response_expected: bool,
                        timeout: float,
                        deadline: Optional[Deadline]) -> bytes:
        """One request through a shared pipelined connection.

        Mirrors the serial path's resend contract: a failure *after*
        the request's bytes may have gone out is only retried (once, on
        a fresh serial connection) when the caller declared the call
        idempotent; a failure *before* anything was sent is freely
        retried on a sibling stripe.
        """
        attempts = 0
        while True:
            attempts += 1
            channel, opened = self._checkout_channel(endpoint, timeout,
                                                     deadline)
            if channel is None:
                # Every stripe is at its depth cap: overflow to a
                # dedicated serial round-trip instead of queueing.
                self.metrics.record_overflow()
                return self._send_serial(endpoint, data, timeout, deadline)
            try:
                slot, depth = channel.submit(request_id, data, timeout)
            except _RequestIdBusy:
                # Another caller already has this id in flight here
                # (hand-crafted frames can collide); never cross wires.
                return self._send_serial(endpoint, data, timeout, deadline)
            except _ChannelDead as exc:
                # Died before our bytes went out: a sibling (or fresh)
                # stripe is always safe to try.
                self._drop_channel(endpoint, channel)
                if attempts <= self.stripes + 1:
                    continue
                raise CommFailure(
                    f"no live pipelined connection to {endpoint!r}: "
                    f"{exc.cause}") from exc.cause
            except OSError as exc:
                # The send itself failed — bytes may be on the wire.
                self._drop_channel(endpoint, channel)
                self._gate_resend(endpoint, exc, deadline)
                return self._send_serial(endpoint, data, timeout, deadline)
            break
        self.metrics.record_connection(reused=not opened)
        self.metrics.record_pipeline(depth)
        if not response_expected:
            self.metrics.record(endpoint, len(data), 0)
            return b""
        if not slot.event.wait(timeout):
            channel.cancel(request_id)
            if slot.frame is not None:  # delivered in the cancel race
                self.metrics.record(endpoint, len(data), len(slot.frame))
                return slot.frame
            self.metrics.record_stall()
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"pipelined IIOP request {request_id} to {endpoint!r} "
                    f"overran its deadline (no matching reply within "
                    f"{timeout:.3f}s)")
            raise CommFailure(
                f"pipeline stall: no reply for request {request_id} from "
                f"{endpoint!r} within {timeout:.3f}s")
        if slot.error is not None:
            # The connection died with our request in flight.  Only
            # this stripe is discarded; whether a resend is safe is the
            # caller's (idempotence) call, exactly as for a stale
            # pooled connection.
            self._drop_channel(endpoint, channel)
            self._gate_resend(endpoint, slot.error, deadline)
            return self._send_serial(endpoint, data, timeout, deadline)
        reply = slot.frame or b""
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def _checkout_channel(self, endpoint: Endpoint, timeout: float,
                          deadline: Optional[Deadline]
                          ) -> tuple[Optional[_PipelinedChannel], bool]:
        """The least-loaded live stripe for *endpoint* (opening a new
        one while under the stripe cap and all existing stripes are
        busy), as ``(channel, opened)``.  ``(None, False)`` means every
        stripe is at :attr:`pipeline_depth` (overflow)."""
        with self._channels_lock:
            channels = [channel
                        for channel in self._channels.get(endpoint, ())
                        if not channel.dead]
            self._channels[endpoint] = channels
            best = min(channels, key=_PipelinedChannel.in_flight,
                       default=None)
            if best is not None:
                load = best.in_flight()
                if load == 0 or len(channels) >= self.stripes:
                    if load >= self.pipeline_depth:
                        return None, False
                    return best, False
            try:
                connection = socket.create_connection(endpoint,
                                                      timeout=timeout)
            except OSError as exc:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceeded(
                        f"IIOP connect to {endpoint!r} overran its "
                        f"deadline: {exc}") from exc
                raise CommFailure(
                    f"IIOP connect to {endpoint!r} failed: {exc}") from exc
            channel = _PipelinedChannel(endpoint, connection)
            channels.append(channel)
            return channel, True

    def _drop_channel(self, endpoint: Endpoint,
                      channel: _PipelinedChannel) -> None:
        """Discard one dead stripe.  Healthy sibling stripes — and the
        requests in flight on them — are untouched."""
        with self._channels_lock:
            channels = self._channels.get(endpoint)
            if channels and channel in channels:
                channels.remove(channel)
        channel.close()

    def _gate_resend(self, endpoint: Endpoint, cause: Exception,
                     deadline: Optional[Deadline]) -> None:
        """Raise unless the current call may be resent: the request may
        already have executed server-side, so only an idempotence vouch
        (see :mod:`repro.deadline`) permits a second copy."""
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"IIOP request to {endpoint!r} overran its deadline: "
                f"{cause}") from cause
        if not current_policy().idempotent:
            raise CommFailure(
                f"IIOP send to {endpoint!r} failed on a pipelined "
                f"connection; not resending a non-idempotent request "
                f"({cause})") from cause

    def stripe_count(self, endpoint: Endpoint) -> int:
        """Live pipelined connections to *endpoint* (tests, tuning)."""
        with self._channels_lock:
            return sum(1 for channel in self._channels.get(endpoint, ())
                       if not channel.dead)

    def pipeline_in_flight(self, endpoint: Endpoint) -> int:
        """Requests currently in flight across *endpoint*'s stripes."""
        with self._channels_lock:
            return sum(channel.in_flight()
                       for channel in self._channels.get(endpoint, ())
                       if not channel.dead)

    def idle_connections(self, endpoint: Optional[Endpoint] = None) -> int:
        """Spare pooled connections (for tests and pool tuning)."""
        if self._pool is None:
            return 0
        return self._pool.idle_count(endpoint)

    def close(self) -> None:
        """Shut down every server this transport started."""
        if self._pool is not None:
            self._pool.close()
        with self._channels_lock:
            channels = [channel for stripes in self._channels.values()
                        for channel in stripes]
            self._channels.clear()
        for channel in channels:
            channel.close()
        for endpoint in list(self._servers):
            self.unregister(endpoint)
