"""Transports carrying GIOP messages between ORBs.

Two interchangeable transports:

* :class:`InMemoryNetwork` — a process-local IIOP fabric.  Endpoints
  register handlers; requests are delivered synchronously as *bytes*
  (messages are genuinely marshalled, so the full encode/decode path is
  exercised) while message and byte counters accumulate for the
  scalability benchmarks.
* :class:`TcpTransport` — real IIOP-over-TCP on the loopback interface,
  framing messages with the GIOP header's size field.

Both expose the same two operations: ``register`` a server endpoint and
``send`` a request to an endpoint, returning the reply bytes.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import CommFailure
from repro.orb.giop import HEADER_SIZE

#: A server-side message handler: request bytes in, reply bytes out
#: (None for oneway messages).
Handler = Callable[[bytes], Optional[bytes]]

Endpoint = tuple[str, int]


@dataclass
class TransportMetrics:
    """Counters accumulated by a transport, consumed by benchmarks."""

    messages_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_endpoint: dict[Endpoint, int] = field(default_factory=dict)

    def record(self, endpoint: Endpoint, request_size: int,
               reply_size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += request_size
        self.bytes_received += reply_size
        self.per_endpoint[endpoint] = self.per_endpoint.get(endpoint, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.per_endpoint.clear()


class Transport:
    """Abstract transport interface."""

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        raise NotImplementedError  # pragma: no cover - interface

    def unregister(self, endpoint: Endpoint) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        raise NotImplementedError  # pragma: no cover - interface


class InMemoryNetwork(Transport):
    """A synchronous, in-process network of GIOP endpoints."""

    def __init__(self) -> None:
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()
        self._next_port = 20000

    def allocate_port(self) -> int:
        """Hand out a fresh port number for auto-assigned endpoints."""
        with self._lock:
            port = self._next_port
            self._next_port += 1
            return port

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        with self._lock:
            if endpoint in self._handlers:
                raise CommFailure(f"endpoint {endpoint!r} already bound")
            self._handlers[endpoint] = handler
        return endpoint

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._handlers.pop(endpoint, None)

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        handler = self._handlers.get(endpoint)
        if handler is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        reply = handler(data)
        if reply is None:
            reply = b""
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def endpoints(self) -> list[Endpoint]:
        """Currently bound endpoints."""
        return list(self._handlers)


def _read_exact(connection: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = connection.recv(remaining)
        if not chunk:
            raise CommFailure("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_giop_frame(connection: socket.socket) -> bytes:
    """Read one GIOP message (header + body) from a socket."""
    header = _read_exact(connection, HEADER_SIZE)
    little_endian = bool(header[6] & 1)
    size = int.from_bytes(header[8:12], "little" if little_endian else "big")
    body = _read_exact(connection, size) if size else b""
    return header + body


class _GiopRequestHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        transport: TcpTransport = self.server.transport  # type: ignore[attr-defined]
        try:
            data = read_giop_frame(self.request)
        except CommFailure:
            return
        endpoint = self.server.server_address  # type: ignore[attr-defined]
        handler = transport.handler_for((endpoint[0], endpoint[1]))
        if handler is None:
            return
        reply = handler(data)
        if reply:
            self.request.sendall(reply)


class _GiopServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpTransport(Transport):
    """Real IIOP-over-TCP on localhost.

    Each registered endpoint gets its own threaded TCP server.  Clients
    open a fresh connection per request (CORBA 2.0 permits either
    connection reuse or per-call connections; per-call keeps this
    implementation simple and deterministic).
    """

    def __init__(self, host: str = "127.0.0.1", timeout: float = 5.0):
        self.host = host
        self.timeout = timeout
        self._servers: dict[Endpoint, _GiopServer] = {}
        self._handlers: dict[Endpoint, Handler] = {}
        self._lock = threading.RLock()
        self.metrics = TransportMetrics()

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        # Logical hostnames ("dba.icis.qut.edu.au") are DNS names the
        # 1999 deployment resolved; on one machine every endpoint binds
        # the transport's local interface, and the OS-assigned port
        # keeps endpoints (and therefore IORs) distinct.
        __, port = endpoint
        server = _GiopServer((self.host, port), _GiopRequestHandler)
        server.transport = self  # type: ignore[attr-defined]
        bound = (self.host, server.server_address[1])
        with self._lock:
            self._servers[bound] = server
            self._handlers[bound] = handler
        thread = threading.Thread(target=server.serve_forever,
                                  name=f"giop-{bound[1]}", daemon=True)
        thread.start()
        return bound

    def handler_for(self, endpoint: Endpoint) -> Optional[Handler]:
        return self._handlers.get(endpoint)

    def unregister(self, endpoint: Endpoint) -> None:
        with self._lock:
            server = self._servers.pop(endpoint, None)
            self._handlers.pop(endpoint, None)
        if server is not None:
            server.shutdown()
            server.server_close()

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        try:
            with socket.create_connection(endpoint,
                                          timeout=self.timeout) as connection:
                connection.sendall(data)
                reply = read_giop_frame(connection)
        except OSError as exc:
            raise CommFailure(f"IIOP send to {endpoint!r} failed: {exc}") from exc
        self.metrics.record(endpoint, len(data), len(reply))
        return reply

    def close(self) -> None:
        """Shut down every server this transport started."""
        for endpoint in list(self._servers):
            self.unregister(endpoint)
