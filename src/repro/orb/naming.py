"""A CORBA-style Naming Service.

Objects publish their stringified IORs under hierarchical names
(``webfindit/codb/Royal Brisbane Hospital``); clients resolve names to
object references.  The naming service is itself a CORBA object: it is
activated on an ORB and spoken to through GIOP like everything else,
so ``resolve`` calls count as real middleware traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NamingError
from repro.orb.idl import InterfaceBuilder, InterfaceDef
from repro.orb.ior import Ior
from repro.orb.orb import Orb, Proxy

#: The naming service interface (CosNaming, reduced).
NAMING_INTERFACE: InterfaceDef = (
    InterfaceBuilder("NamingService", module="cosnaming",
                     doc="Hierarchical name -> IOR binding")
    .operation("bind", "name", "ior", doc="Bind a new name (error if bound)")
    .operation("rebind", "name", "ior", doc="Bind, replacing any binding")
    .operation("resolve", "name", doc="IOR string bound to name")
    .operation("resolve_with_generation", "name",
               doc="IOR string plus the binding's generation counter")
    .operation("unbind", "name", doc="Remove a binding")
    .operation("list_names", "prefix", doc="All bound names under prefix")
    .operation("namespace_generation", "prefix",
               doc="Summed binding generations under prefix")
    .build())


class NamingServant:
    """Server-side implementation of the naming service.

    Every binding carries a **generation counter**: 1 when first bound,
    bumped atomically by each ``rebind``.  A client that cached an IOR
    (and a proxy built from it) can therefore tell, in one resolve,
    whether the name was re-bound behind its back — the stale-IOR
    window a restarted server would otherwise leave open.
    """

    def __init__(self) -> None:
        self._bindings: dict[str, str] = {}
        self._generations: dict[str, int] = {}

    def bind(self, name: str, ior: str) -> bool:
        if name in self._bindings:
            raise NamingError(f"name {name!r} already bound")
        self._bindings[name] = ior
        self._generations[name] = self._generations.get(name, 0) + 1
        return True

    def rebind(self, name: str, ior: str) -> bool:
        # The binding and its generation move together: a resolver can
        # never observe the new IOR with the old generation or vice
        # versa (the servant is dispatched one request at a time).
        self._bindings[name] = ior
        self._generations[name] = self._generations.get(name, 0) + 1
        return True

    def resolve(self, name: str) -> str:
        ior = self._bindings.get(name)
        if ior is None:
            raise NamingError(f"name {name!r} not bound")
        return ior

    def resolve_with_generation(self, name: str) -> dict:
        return {"ior": self.resolve(name),
                "generation": self._generations.get(name, 0)}

    def unbind(self, name: str) -> bool:
        if name not in self._bindings:
            raise NamingError(f"name {name!r} not bound")
        del self._bindings[name]
        return True

    def list_names(self, prefix: str) -> list[str]:
        return sorted(name for name in self._bindings
                      if name.startswith(prefix))

    def namespace_generation(self, prefix: str) -> int:
        """Summed generation counters of every binding under *prefix*.

        A monotonic change detector for a whole namespace: each new
        ``bind`` and each ``rebind`` adds one, so a sharded-registry
        client can watch ``webfindit/registry/`` with a single resolve
        instead of polling every ``shard<i>`` binding.
        """
        return sum(generation
                   for name, generation in self._generations.items()
                   if name.startswith(prefix) and name in self._bindings)


class NamingClient:
    """Typed client wrapper over a naming-service proxy."""

    def __init__(self, proxy: Proxy):
        self._proxy = proxy

    def bind(self, name: str, ior: Ior) -> None:
        self._proxy.invoke("bind", name, ior.to_string())

    def rebind(self, name: str, ior: Ior) -> None:
        self._proxy.invoke("rebind", name, ior.to_string())

    def resolve(self, name: str) -> Ior:
        return Ior.from_string(self._proxy.invoke("resolve", name))

    def resolve_with_generation(self, name: str) -> tuple[Ior, int]:
        """Resolve *name* to ``(ior, generation)``.

        The generation lets callers that cache IORs/proxies detect a
        ``rebind`` (e.g. a co-database server that restarted on a new
        endpoint) and atomically drop their stale cache entry.
        """
        payload = self._proxy.invoke("resolve_with_generation", name)
        return (Ior.from_string(payload["ior"]),
                int(payload.get("generation", 0)))

    def resolve_proxy(self, orb: Orb, name: str,
                      interface: Optional[InterfaceDef] = None) -> Proxy:
        """Resolve *name* and wrap the result as a stub on *orb*."""
        return orb.proxy(self.resolve(name), interface)

    def unbind(self, name: str) -> None:
        self._proxy.invoke("unbind", name)

    def list_names(self, prefix: str = "") -> list[str]:
        return list(self._proxy.invoke("list_names", prefix))

    def namespace_generation(self, prefix: str = "") -> int:
        return int(self._proxy.invoke("namespace_generation", prefix))


def start_naming_service(orb: Orb) -> tuple[Ior, NamingClient]:
    """Activate a naming service on *orb*; returns (IOR, local client)."""
    servant = NamingServant()
    ior = orb.activate(servant, NAMING_INTERFACE, object_name="NameService")
    client = NamingClient(orb.proxy(ior, NAMING_INTERFACE))
    return ior, client
