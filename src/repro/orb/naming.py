"""A CORBA-style Naming Service.

Objects publish their stringified IORs under hierarchical names
(``webfindit/codb/Royal Brisbane Hospital``); clients resolve names to
object references.  The naming service is itself a CORBA object: it is
activated on an ORB and spoken to through GIOP like everything else,
so ``resolve`` calls count as real middleware traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NamingError
from repro.orb.idl import InterfaceBuilder, InterfaceDef
from repro.orb.ior import Ior
from repro.orb.orb import Orb, Proxy

#: The naming service interface (CosNaming, reduced).
NAMING_INTERFACE: InterfaceDef = (
    InterfaceBuilder("NamingService", module="cosnaming",
                     doc="Hierarchical name -> IOR binding")
    .operation("bind", "name", "ior", doc="Bind a new name (error if bound)")
    .operation("rebind", "name", "ior", doc="Bind, replacing any binding")
    .operation("resolve", "name", doc="IOR string bound to name")
    .operation("unbind", "name", doc="Remove a binding")
    .operation("list_names", "prefix", doc="All bound names under prefix")
    .build())


class NamingServant:
    """Server-side implementation of the naming service."""

    def __init__(self) -> None:
        self._bindings: dict[str, str] = {}

    def bind(self, name: str, ior: str) -> bool:
        if name in self._bindings:
            raise NamingError(f"name {name!r} already bound")
        self._bindings[name] = ior
        return True

    def rebind(self, name: str, ior: str) -> bool:
        self._bindings[name] = ior
        return True

    def resolve(self, name: str) -> str:
        ior = self._bindings.get(name)
        if ior is None:
            raise NamingError(f"name {name!r} not bound")
        return ior

    def unbind(self, name: str) -> bool:
        if name not in self._bindings:
            raise NamingError(f"name {name!r} not bound")
        del self._bindings[name]
        return True

    def list_names(self, prefix: str) -> list[str]:
        return sorted(name for name in self._bindings
                      if name.startswith(prefix))


class NamingClient:
    """Typed client wrapper over a naming-service proxy."""

    def __init__(self, proxy: Proxy):
        self._proxy = proxy

    def bind(self, name: str, ior: Ior) -> None:
        self._proxy.invoke("bind", name, ior.to_string())

    def rebind(self, name: str, ior: Ior) -> None:
        self._proxy.invoke("rebind", name, ior.to_string())

    def resolve(self, name: str) -> Ior:
        return Ior.from_string(self._proxy.invoke("resolve", name))

    def resolve_proxy(self, orb: Orb, name: str,
                      interface: Optional[InterfaceDef] = None) -> Proxy:
        """Resolve *name* and wrap the result as a stub on *orb*."""
        return orb.proxy(self.resolve(name), interface)

    def unbind(self, name: str) -> None:
        self._proxy.invoke("unbind", name)

    def list_names(self, prefix: str = "") -> list[str]:
        return list(self._proxy.invoke("list_names", prefix))


def start_naming_service(orb: Orb) -> tuple[Ior, NamingClient]:
    """Activate a naming service on *orb*; returns (IOR, local client)."""
    servant = NamingServant()
    ior = orb.activate(servant, NAMING_INTERFACE, object_name="NameService")
    client = NamingClient(orb.proxy(ior, NAMING_INTERFACE))
    return ior, client
