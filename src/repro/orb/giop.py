"""GIOP message framing (the General Inter-ORB Protocol).

CORBA 2.0 defines GIOP message formats carried over any transport;
IIOP is GIOP over TCP.  We implement the messages the request/reply
path needs:

* ``Request`` — request id, response-expected flag, object key,
  operation name, CDR-encoded arguments;
* ``Reply`` — request id, reply status (NO_EXCEPTION / USER_EXCEPTION /
  SYSTEM_EXCEPTION / LOCATION_FORWARD), CDR-encoded body;
* ``LocateRequest`` / ``LocateReply`` — liveness probes for object keys;
* ``CloseConnection`` and ``MessageError``.

Every message starts with the 12-octet GIOP header: the ``GIOP`` magic,
protocol version, a flags octet (bit 0 = little-endian), the message
type, and the body size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder

MAGIC = b"GIOP"
VERSION = (1, 0)
HEADER_SIZE = 12


class MessageType(enum.IntEnum):
    """GIOP message type octet."""

    REQUEST = 0
    REPLY = 1
    CANCEL_REQUEST = 2
    LOCATE_REQUEST = 3
    LOCATE_REPLY = 4
    CLOSE_CONNECTION = 5
    MESSAGE_ERROR = 6


class ReplyStatus(enum.IntEnum):
    """Status carried in a Reply header."""

    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2
    LOCATION_FORWARD = 3
    #: Extension: the server refused the request under overload (shed
    #: from the admission queue, or its deadline budget was already
    #: spent on arrival).  Distinct from SYSTEM_EXCEPTION so clients
    #: can apply retry *budgets* instead of eager failure handling.
    BUSY = 4


class LocateStatus(enum.IntEnum):
    """Status carried in a LocateReply."""

    UNKNOWN_OBJECT = 0
    OBJECT_HERE = 1
    OBJECT_FORWARD = 2


@dataclass
class RequestMessage:
    """A GIOP Request."""

    request_id: int
    object_key: bytes
    operation: str
    arguments: list[Any] = field(default_factory=list)
    response_expected: bool = True
    #: Service context: (id, value) pairs; we use it to carry the calling
    #: ORB's product name for interop accounting, as real ORBs carry
    #: transaction/codeset contexts.
    service_context: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class ReplyMessage:
    """A GIOP Reply."""

    request_id: int
    status: ReplyStatus
    body: Any = None
    service_context: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class LocateRequestMessage:
    """A GIOP LocateRequest."""

    request_id: int
    object_key: bytes


@dataclass
class LocateReplyMessage:
    """A GIOP LocateReply."""

    request_id: int
    status: LocateStatus


Message = (RequestMessage | ReplyMessage | LocateRequestMessage
           | LocateReplyMessage)


def _encode_header(encoder: CdrEncoder, message_type: MessageType,
                   body: bytes) -> bytes:
    header = bytearray()
    header += MAGIC
    header.append(VERSION[0])
    header.append(VERSION[1])
    header.append(1 if encoder.little_endian else 0)
    header.append(int(message_type))
    size = len(body).to_bytes(4, "little" if encoder.little_endian else "big")
    header += size
    return bytes(header) + body


def _encode_service_context(encoder: CdrEncoder,
                            context: list[tuple[int, str]]) -> None:
    encoder.write_ulong(len(context))
    for context_id, value in context:
        encoder.write_ulong(context_id)
        encoder.write_string(value)


def _decode_service_context(decoder: CdrDecoder) -> list[tuple[int, str]]:
    count = decoder.read_ulong()
    return [(decoder.read_ulong(), decoder.read_string())
            for _ in range(count)]


def encode_message(message: Message, little_endian: bool = False) -> bytes:
    """Serialize *message* to GIOP bytes (header + CDR body)."""
    # Body positions are computed relative to the end of the 12-octet
    # header, which is itself 8-aligned, so alignment stays consistent.
    encoder = CdrEncoder(little_endian)
    if isinstance(message, RequestMessage):
        message_type = MessageType.REQUEST
        _encode_service_context(encoder, message.service_context)
        encoder.write_ulong(message.request_id)
        encoder.write_boolean(message.response_expected)
        encoder.write_octets(message.object_key)
        encoder.write_string(message.operation)
        encoder.write_ulong(len(message.arguments))
        for argument in message.arguments:
            encoder.write_any(argument)
    elif isinstance(message, ReplyMessage):
        message_type = MessageType.REPLY
        _encode_service_context(encoder, message.service_context)
        encoder.write_ulong(message.request_id)
        encoder.write_ulong(int(message.status))
        encoder.write_any(message.body)
    elif isinstance(message, LocateRequestMessage):
        message_type = MessageType.LOCATE_REQUEST
        encoder.write_ulong(message.request_id)
        encoder.write_octets(message.object_key)
    elif isinstance(message, LocateReplyMessage):
        message_type = MessageType.LOCATE_REPLY
        encoder.write_ulong(message.request_id)
        encoder.write_ulong(int(message.status))
    else:
        raise MarshalError(f"cannot encode {type(message).__name__}")
    return _encode_header(encoder, message_type, encoder.getvalue())


#: Cap on the body size a peeked header may announce before the stream
#: is treated as desynchronised (a frame this large is never legitimate
#: here and would otherwise stall reassembly buffering gigabytes).
MAX_FRAME_BODY = 64 * 1024 * 1024

Buffer = bytes | bytearray | memoryview


def peek_frame_size(header: Buffer) -> int:
    """Total frame length (header + body) announced by a GIOP header.

    Reads the size field straight out of *header* — which may be a
    ``memoryview`` into a receive buffer — without copying or decoding
    anything else.  Raises :class:`MarshalError` when the 12 octets are
    not a plausible GIOP header, so framing code can poison the stream
    instead of mis-slicing every frame behind it.
    """
    if len(header) < HEADER_SIZE:
        raise MarshalError(
            f"GIOP header needs {HEADER_SIZE} octets, got {len(header)}")
    if header[:4] != MAGIC:
        raise MarshalError(f"bad GIOP magic {bytes(header[:4])!r}")
    little_endian = bool(header[6] & 1)
    size = int.from_bytes(header[8:12], "little" if little_endian else "big")
    if size > MAX_FRAME_BODY:
        raise MarshalError(f"implausible GIOP body size {size}")
    return HEADER_SIZE + size


def decode_message(data: Buffer) -> Message:
    """Parse GIOP bytes (or a zero-copy ``memoryview``) into a message
    object."""
    if len(data) < HEADER_SIZE:
        raise MarshalError("GIOP message shorter than its header")
    if data[:4] != MAGIC:
        raise MarshalError(f"bad GIOP magic {bytes(data[:4])!r}")
    major, minor = data[4], data[5]
    if (major, minor) != VERSION:
        raise MarshalError(f"unsupported GIOP version {major}.{minor}")
    little_endian = bool(data[6] & 1)
    try:
        message_type = MessageType(data[7])
    except ValueError as exc:
        raise MarshalError(f"unknown GIOP message type {data[7]}") from exc
    size = int.from_bytes(data[8:12], "little" if little_endian else "big")
    if len(data) - HEADER_SIZE < size:
        raise MarshalError(
            f"GIOP body truncated: header says {size}, "
            f"got {len(data) - HEADER_SIZE}")
    decoder = CdrDecoder(data[HEADER_SIZE:HEADER_SIZE + size], little_endian)
    if message_type is MessageType.REQUEST:
        context = _decode_service_context(decoder)
        request_id = decoder.read_ulong()
        response_expected = decoder.read_boolean()
        object_key = decoder.read_octets()
        operation = decoder.read_string()
        argument_count = decoder.read_ulong()
        arguments = [decoder.read_any() for _ in range(argument_count)]
        return RequestMessage(request_id=request_id, object_key=object_key,
                              operation=operation, arguments=arguments,
                              response_expected=response_expected,
                              service_context=context)
    if message_type is MessageType.REPLY:
        context = _decode_service_context(decoder)
        request_id = decoder.read_ulong()
        status_code = decoder.read_ulong()
        try:
            status = ReplyStatus(status_code)
        except ValueError as exc:
            raise MarshalError(f"unknown reply status {status_code}") from exc
        body = decoder.read_any()
        return ReplyMessage(request_id=request_id, status=status, body=body,
                            service_context=context)
    if message_type is MessageType.LOCATE_REQUEST:
        return LocateRequestMessage(request_id=decoder.read_ulong(),
                                    object_key=decoder.read_octets())
    if message_type is MessageType.LOCATE_REPLY:
        request_id = decoder.read_ulong()
        status_code = decoder.read_ulong()
        try:
            locate_status = LocateStatus(status_code)
        except ValueError as exc:
            raise MarshalError(
                f"unknown locate status {status_code}") from exc
        return LocateReplyMessage(request_id=request_id, status=locate_status)
    raise MarshalError(f"unhandled GIOP message type {message_type!r}")


def _peek_decoder(data: Buffer) -> tuple[Optional[MessageType],
                                         Optional[CdrDecoder]]:
    """Message type and a body decoder, without decoding the body.

    Returns ``(None, None)`` for frames that are not GIOP 1.0 (the
    pipelined transport falls back to serial round-trips for those).
    """
    if len(data) < HEADER_SIZE or data[:4] != MAGIC \
            or (data[4], data[5]) != VERSION:
        return None, None
    try:
        message_type = MessageType(data[7])
    except ValueError:
        return None, None
    little_endian = bool(data[6] & 1)
    size = int.from_bytes(data[8:12], "little" if little_endian else "big")
    if len(data) - HEADER_SIZE < size:
        return None, None
    return message_type, CdrDecoder(data[HEADER_SIZE:HEADER_SIZE + size],
                                    little_endian)


def peek_request(data: Buffer) -> tuple[Optional[int], bool]:
    """``(request_id, response_expected)`` of an outgoing frame.

    Reads just far enough into the CDR body to find the request id —
    the client-side pipeline needs the id to match the eventual reply,
    and the response flag to know whether a reply will come at all.
    ``(None, True)`` means the frame carries no request id (it cannot
    be pipelined and must use a dedicated serial round-trip).
    """
    message_type, decoder = _peek_decoder(data)
    if decoder is None:
        return None, True
    try:
        if message_type is MessageType.REQUEST:
            _decode_service_context(decoder)
            request_id = decoder.read_ulong()
            return request_id, decoder.read_boolean()
        if message_type is MessageType.LOCATE_REQUEST:
            return decoder.read_ulong(), True
    except MarshalError:
        return None, True
    return None, True


def peek_reply_id(data: Buffer) -> Optional[int]:
    """The request id an incoming Reply/LocateReply frame answers.

    ``None`` means the frame is not a reply (or is damaged beyond
    attribution): a pipelined connection cannot deliver it to any
    waiter and must treat the stream as broken.
    """
    message_type, decoder = _peek_decoder(data)
    if decoder is None:
        return None
    try:
        if message_type is MessageType.REPLY:
            _decode_service_context(decoder)
            return decoder.read_ulong()
        if message_type is MessageType.LOCATE_REPLY:
            return decoder.read_ulong()
    except MarshalError:
        return None
    return None


#: Service-context id we use to carry the calling ORB product (mirrors
#: how real ORBs tunnel vendor contexts).
ORB_PRODUCT_CONTEXT = 0xBEEF

#: Remaining deadline budget, in seconds, measured when the request was
#: marshalled.  Carried as a *relative* budget (not an absolute expiry)
#: so it stays meaningful across machines with unsynchronised clocks.
DEADLINE_BUDGET_CONTEXT = 0xD15C

#: Traffic class of the request ("interactive"/"background"); absent
#: means interactive.  Overloaded servers shed background first.
TRAFFIC_CLASS_CONTEXT = 0x7C1A


def peek_request_admission(data: Buffer) -> tuple[Optional[float], str]:
    """``(deadline_budget_seconds, traffic_class)`` of a Request frame.

    Decodes only the service-context list at the head of the body —
    the server's admission controller runs this on every frame *before*
    dispatch, so it must not pay for argument decoding.  Frames that
    are not requests, carry no overload contexts, or are damaged
    default to ``(None, "interactive")``: never shed what cannot be
    read.
    """
    message_type, decoder = _peek_decoder(data)
    if decoder is None or message_type is not MessageType.REQUEST:
        return None, "interactive"
    budget: Optional[float] = None
    traffic_class = "interactive"
    try:
        for context_id, value in _decode_service_context(decoder):
            if context_id == DEADLINE_BUDGET_CONTEXT:
                budget = float(value)
            elif context_id == TRAFFIC_CLASS_CONTEXT:
                traffic_class = value
    except (MarshalError, ValueError):
        return None, "interactive"
    return budget, traffic_class


def busy_reply(data: Buffer, reason: str,
               little_endian: bool = False) -> Optional[bytes]:
    """A serialized ``BUSY`` reply answering the request in *data*.

    ``None`` when the frame carries no request id or expects no
    response — there is nobody to tell, so the shed is silent.
    """
    request_id, response_expected = peek_request(data)
    if request_id is None or not response_expected:
        return None
    return encode_message(
        ReplyMessage(request_id=request_id, status=ReplyStatus.BUSY,
                     body={"reason": reason}),
        little_endian=little_endian)
