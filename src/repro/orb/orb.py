"""The Object Request Broker core.

An :class:`Orb` plays both roles of a CORBA ORB:

* **server side** — an object adapter: servants are *activated* under an
  object key, the ORB listens on its transport endpoint, decodes GIOP
  requests, dispatches to the servant (validating the operation against
  the interface), and encodes replies;
* **client side** — ``string_to_object`` / :meth:`proxy` produce stubs
  whose method calls are marshalled to CDR, framed as GIOP requests and
  sent to the IOR's endpoint — whether that endpoint lives in the same
  process, another ORB product, or across a real TCP socket.

Exceptions cross the wire as CORBA distinguishes them: errors declared
in :mod:`repro.errors` travel as USER_EXCEPTION and are re-raised as the
same class on the client; anything else becomes a SYSTEM_EXCEPTION
surfaced as :class:`RemoteSystemError`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import errors
from repro.deadline import INTERACTIVE, current_policy
from repro.errors import (BadOperation, CommFailure, DeadlineExceeded,
                          MarshalError, ObjectNotExist, OrbError, ReproError,
                          ServerBusy)
from repro.orb.giop import (DEADLINE_BUDGET_CONTEXT, ORB_PRODUCT_CONTEXT,
                            TRAFFIC_CLASS_CONTEXT, LocateReplyMessage,
                            LocateRequestMessage, LocateStatus, ReplyMessage,
                            ReplyStatus, RequestMessage, decode_message,
                            encode_message)
from repro.orb.idl import InterfaceDef, InterfaceRepository
from repro.orb.ior import Ior, make_ior
from repro.orb.transport import Endpoint, InMemoryNetwork, Transport


class RemoteSystemError(OrbError):
    """A SYSTEM_EXCEPTION reply: the server failed unexpectedly."""

    def __init__(self, exception_type: str, message: str):
        super().__init__(f"{exception_type}: {message}")
        self.exception_type = exception_type
        self.remote_message = message


#: GIOP request ids need only be unique per connection, but pipelined
#: connections are shared by every client ORB on one transport — so
#: ids are drawn from a single process-wide counter, which makes them
#: unique everywhere and lets the transport match replies to callers
#: without rewriting frames.
_request_ids = itertools.count(1)


@dataclass
class OrbStats:
    """Per-ORB request counters.

    Requests on one keep-alive socket are dispatched concurrently when
    the transport pipelines (on top of the thread-per-connection server
    concurrency that always existed), so increments go through a lock —
    unlocked ``+=`` loses counts under contention.
    """

    requests_sent: int = 0
    requests_handled: int = 0
    cross_product_requests: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def note_sent(self) -> None:
        with self._lock:
            self.requests_sent += 1

    def note_handled(self, cross_product: bool = False) -> None:
        with self._lock:
            self.requests_handled += 1
            if cross_product:
                self.cross_product_requests += 1

    def reset(self) -> None:
        with self._lock:
            self.requests_sent = 0
            self.requests_handled = 0
            self.cross_product_requests = 0


class Proxy:
    """A client stub: attribute access yields remote operations.

    ``proxy.find_sources("Medical")`` marshals the call through the
    owning ORB.  The optional interface enables client-side operation
    checking before any bytes move.
    """

    def __init__(self, orb: "Orb", ior: Ior,
                 interface: Optional[InterfaceDef] = None):
        self._orb = orb
        self._ior = ior
        self._interface = interface

    @property
    def ior(self) -> Ior:
        return self._ior

    def invoke(self, operation: str, *args: Any) -> Any:
        """Invoke *operation* remotely with positional arguments."""
        if self._interface is not None:
            self._interface.operation(operation)  # raises BadOperation early
        return self._orb.invoke(self._ior, operation, list(args))

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def remote_call(*args: Any) -> Any:
            return self.invoke(name, *args)

        remote_call.__name__ = name
        return remote_call

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Proxy({self._ior.type_id}, via {self._orb.name})"


class Orb:
    """One Object Request Broker instance."""

    def __init__(self, name: str, transport: Optional[Transport] = None,
                 host: str = "localhost", port: Optional[int] = None,
                 product: str = "ReproORB", vendor: str = "repro",
                 language: str = "Python"):
        self.name = name
        self.host = host
        self.product = product
        self.vendor = vendor
        self.language = language
        self.transport = transport if transport is not None else InMemoryNetwork()
        # Duck-typed so wrappers (e.g. a fault-injecting transport) stay
        # drop-in: any fabric that pre-allocates ports is asked for one.
        allocate_port = getattr(self.transport, "allocate_port", None)
        if port is None and allocate_port is not None:
            port = allocate_port()
        if port is None:
            port = 0  # let a TCP transport pick
        self.interfaces = InterfaceRepository()
        self.stats = OrbStats()
        self._servants: dict[bytes, tuple[object, InterfaceDef]] = {}
        self._request_ids = _request_ids
        self._key_counter = itertools.count(1)
        self._lock = threading.RLock()
        #: Portable-interceptor analogues: callables invoked around the
        #: request path.  Client interceptors see outgoing
        #: RequestMessages; server interceptors see (request, reply)
        #: pairs after dispatch.  Exceptions inside interceptors
        #: propagate — they are part of the request path, as in CORBA.
        self._client_interceptors: list = []
        self._server_interceptors: list = []
        self.endpoint: Endpoint = self.transport.register(
            (host, port), self._handle_message)

    # ------------------------------------------------------------ server side --

    def activate(self, servant: object, interface: InterfaceDef,
                 object_name: Optional[str] = None) -> Ior:
        """Activate *servant* under *interface*; returns its IOR."""
        interface.validate_servant(servant)
        self.interfaces.register(interface)
        suffix = object_name or f"obj{next(self._key_counter)}"
        object_key = f"{self.name}/{interface.name}/{suffix}".encode("utf-8")
        with self._lock:
            if object_key in self._servants:
                raise OrbError(f"object key {object_key!r} already active")
            self._servants[object_key] = (servant, interface)
        return make_ior(interface.repository_id, self.endpoint[0],
                        self.endpoint[1], object_key)

    def deactivate(self, ior: Ior) -> None:
        """Remove the servant designated by *ior*."""
        with self._lock:
            self._servants.pop(ior.primary.object_key, None)

    def servant_count(self) -> int:
        return len(self._servants)

    def _handle_message(self, data: "bytes | memoryview") -> Optional[bytes]:
        # *data* may be a zero-copy ``memoryview`` sliced out of the
        # event-loop transport's receive buffer; decoding works on the
        # view in place and only materialises the values produced.
        message = decode_message(data)
        if isinstance(message, LocateRequestMessage):
            status = (LocateStatus.OBJECT_HERE
                      if message.object_key in self._servants
                      else LocateStatus.UNKNOWN_OBJECT)
            return encode_message(LocateReplyMessage(
                request_id=message.request_id, status=status))
        if not isinstance(message, RequestMessage):
            raise MarshalError(
                f"server cannot handle {type(message).__name__}")
        self.stats.note_handled(cross_product=any(
            context_id == ORB_PRODUCT_CONTEXT and value != self.product
            for context_id, value in message.service_context))
        reply = self._dispatch(message)
        for interceptor in self._server_interceptors:
            interceptor(message, reply)
        if not message.response_expected:
            return None
        return encode_message(reply)

    # -- interceptors -----------------------------------------------------------

    def add_client_interceptor(self, interceptor) -> None:
        """Register ``interceptor(request_message)`` to run before each
        outgoing request is marshalled."""
        self._client_interceptors.append(interceptor)

    def add_server_interceptor(self, interceptor) -> None:
        """Register ``interceptor(request_message, reply_message)`` to
        run after each dispatch, before the reply is marshalled."""
        self._server_interceptors.append(interceptor)

    def _dispatch(self, request: RequestMessage) -> ReplyMessage:
        entry = self._servants.get(request.object_key)
        if entry is None:
            return ReplyMessage(
                request_id=request.request_id,
                status=ReplyStatus.SYSTEM_EXCEPTION,
                body={"exception": "ObjectNotExist",
                      "message": f"no servant for key "
                                 f"{request.object_key.decode('utf-8', 'replace')!r}"})
        servant, interface = entry
        try:
            operation = interface.operation(request.operation)
            if len(request.arguments) != operation.arity:
                raise BadOperation(
                    f"{interface.name}.{request.operation} expects "
                    f"{operation.arity} arguments, got {len(request.arguments)}")
            method = getattr(servant, request.operation)
            result = method(*request.arguments)
            return ReplyMessage(request_id=request.request_id,
                                status=ReplyStatus.NO_EXCEPTION, body=result)
        except ReproError as exc:
            return ReplyMessage(
                request_id=request.request_id,
                status=ReplyStatus.USER_EXCEPTION,
                body={"exception": type(exc).__name__, "message": str(exc)})
        except Exception as exc:  # noqa: BLE001 - server boundary
            return ReplyMessage(
                request_id=request.request_id,
                status=ReplyStatus.SYSTEM_EXCEPTION,
                body={"exception": type(exc).__name__, "message": str(exc)})

    # ------------------------------------------------------------ client side --

    def invoke(self, ior: Ior, operation: str, arguments: list[Any],
               oneway: bool = False) -> Any:
        """Send one GIOP request to the object behind *ior*."""
        # Overload metadata rides in service contexts: the remaining
        # deadline budget (so a saturated server can refuse dead work
        # before dispatch) and any non-default traffic class (so it
        # sheds background housekeeping first).
        service_context = [(ORB_PRODUCT_CONTEXT, self.product)]
        policy = current_policy()
        if policy.deadline is not None:
            service_context.append(
                (DEADLINE_BUDGET_CONTEXT,
                 f"{policy.deadline.remaining():.6f}"))
        if policy.traffic_class != INTERACTIVE:
            service_context.append(
                (TRAFFIC_CLASS_CONTEXT, policy.traffic_class))
        request = RequestMessage(
            request_id=next(self._request_ids),
            object_key=ior.primary.object_key,
            operation=operation,
            arguments=arguments,
            response_expected=not oneway,
            service_context=service_context)
        for interceptor in self._client_interceptors:
            interceptor(request)
        self.stats.note_sent()
        raw_reply = self.transport.send(ior.primary.endpoint,
                                        encode_message(request))
        if oneway:
            return None
        if not raw_reply:
            raise CommFailure(f"no reply from {ior.primary.endpoint!r}")
        reply = decode_message(raw_reply)
        if not isinstance(reply, ReplyMessage):
            raise MarshalError(f"expected Reply, got {type(reply).__name__}")
        if reply.status is ReplyStatus.NO_EXCEPTION:
            return reply.body
        if reply.status is ReplyStatus.USER_EXCEPTION:
            raise _revive_user_exception(reply.body)
        if reply.status is ReplyStatus.BUSY:
            body = reply.body if isinstance(reply.body, dict) else {}
            reason = body.get("reason", "overload")
            if reason == "deadline":
                # The server saw our budget already spent: surface the
                # same error the deadline itself would have raised, so
                # no retry machinery touches it.
                raise DeadlineExceeded(
                    f"{ior.primary.endpoint!r} refused {operation}: "
                    f"deadline budget exhausted before dispatch")
            raise ServerBusy(
                f"{ior.primary.endpoint!r} shed {operation} ({reason})")
        body = reply.body if isinstance(reply.body, dict) else {}
        exception_type = body.get("exception", "Unknown")
        message = body.get("message", "")
        if exception_type == "ObjectNotExist":
            raise ObjectNotExist(message)
        raise RemoteSystemError(exception_type, message)

    def locate(self, ior: Ior) -> bool:
        """LocateRequest probe: is the object alive at its endpoint?"""
        message = LocateRequestMessage(request_id=next(self._request_ids),
                                       object_key=ior.primary.object_key)
        try:
            raw_reply = self.transport.send(ior.primary.endpoint,
                                            encode_message(message))
        except CommFailure:
            return False
        reply = decode_message(raw_reply)
        return (isinstance(reply, LocateReplyMessage)
                and reply.status is LocateStatus.OBJECT_HERE)

    def proxy(self, ior: Ior,
              interface: Optional[InterfaceDef] = None) -> Proxy:
        """A stub for the object behind *ior*."""
        if interface is None and ior.type_id in self.interfaces:
            interface = self.interfaces.lookup(ior.type_id)
        return Proxy(self, ior, interface)

    # -- CORBA-style string conversions ----------------------------------------

    def object_to_string(self, ior: Ior) -> str:
        """Stringify an object reference (CORBA ``object_to_string``)."""
        return ior.to_string()

    def string_to_object(self, text: str,
                         interface: Optional[InterfaceDef] = None) -> Proxy:
        """Parse an IOR string into a stub (CORBA ``string_to_object``)."""
        return self.proxy(Ior.from_string(text), interface)

    def shutdown(self) -> None:
        """Unbind from the transport and drop all servants."""
        self.transport.unregister(self.endpoint)
        with self._lock:
            self._servants.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Orb(name={self.name!r}, product={self.product!r}, "
                f"endpoint={self.endpoint!r}, servants={len(self._servants)})")


def _revive_user_exception(body: Any) -> ReproError:
    """Rebuild a USER_EXCEPTION as its original exception class."""
    if not isinstance(body, dict):
        return ReproError(str(body))
    exception_name = body.get("exception", "ReproError")
    message = body.get("message", "")
    exception_class = getattr(errors, exception_name, None)
    if isinstance(exception_class, type) and issubclass(exception_class,
                                                        ReproError):
        try:
            return exception_class(message)
        except TypeError:  # exception with a custom signature
            revived = ReproError(message)
            revived.__class__ = exception_class
            return revived
    return ReproError(f"{exception_name}: {message}")
