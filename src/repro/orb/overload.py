"""Server-side admission control and load shedding.

Past saturation, an ORB that accepts everything serves *nothing*: every
request waits out its deadline in the dispatch queue, the server burns
its capacity on work whose caller has already given up, and client
retries multiply the offered load — metastable congestion collapse.
The :class:`AdmissionController` defends both dispatch paths of
:class:`~repro.orb.transport.TcpTransport` (the threaded per-connection
pool and the event-loop ``loop_workers`` pool) with three complementary
checks:

* **Bounded queues** — a hard cap on requests admitted but not yet
  dispatched (``queue_limit``), with a lower cap for background
  traffic so anti-entropy and snapshot catch-up brown out before
  interactive queries do.
* **CoDel-shaped sojourn shedding** — a request picked up by a worker
  after sitting in the queue longer than ``target`` starts the clock;
  if sojourn stays above target for a full ``interval`` the controller
  enters a dropping state and sheds queue-aged requests until sojourn
  recovers.  Tracking *sojourn time* rather than queue length makes the
  signal independent of how fast the workers happen to be.
* **Deadline-aware early drop** — requests arrive carrying the
  caller's remaining budget (GIOP service context
  :data:`~repro.orb.giop.DEADLINE_BUDGET_CONTEXT`); once that budget is
  spent the work is dead, and a worker drops it at the cost of a peek
  instead of a full servant dispatch.

Every shed is answered with a distinct ``BUSY`` reply (never a silent
close), so clients can tell "the server is protecting itself" from
"the server is broken" and apply retry *budgets* rather than failover
storms.  All of it is off by default (``OverloadPolicy.shed=False`` is
never constructed implicitly); the transport behaves exactly as before
unless a policy is passed or ``REPRO_SHEDDING=1`` is set.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["OverloadPolicy", "AdmissionTicket", "AdmissionController",
           "SHED_QUEUE_FULL", "SHED_BROWNOUT", "SHED_OVERLOAD",
           "SHED_DEADLINE"]

#: Shed reasons carried in the BUSY reply body.
SHED_QUEUE_FULL = "queue-full"   # admission queue at its hard cap
SHED_BROWNOUT = "brownout"       # background refused at the soft cap
SHED_OVERLOAD = "overload"       # CoDel sojourn above target too long
SHED_DEADLINE = "deadline"       # caller's budget already spent


@dataclass(frozen=True)
class OverloadPolicy:
    """Tuning knobs for one transport's admission controller."""

    #: Master switch: when False the controller admits everything and
    #: records nothing (the transport skips it entirely).
    shed: bool = True
    #: Hard cap on admitted-but-undispatched requests.
    queue_limit: int = 256
    #: Fraction of ``queue_limit`` past which *background* requests are
    #: refused (brownout: shed housekeeping before user traffic).
    background_fraction: float = 0.5
    #: CoDel target sojourn: queueing delay below this is healthy.
    codel_target: float = 0.05
    #: How long sojourn must stay above target before shedding starts.
    codel_interval: float = 0.5


@dataclass
class AdmissionTicket:
    """Per-request state recorded at enqueue, checked at dequeue."""

    enqueued_at: float
    budget: Optional[float]   # caller's remaining seconds, or None
    traffic_class: str = "interactive"
    #: Set once the ticket has been dequeued/abandoned, so error paths
    #: can call :meth:`AdmissionController.abandon` unconditionally.
    settled: bool = field(default=False, repr=False)


class AdmissionController:
    """Thread-safe admission state shared by every connection of one
    transport endpoint (both dispatch paths feed the same instance, as
    they share the same worker capacity)."""

    def __init__(self, policy: OverloadPolicy,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._pending = 0
        # CoDel state: when sojourn first rose above target, and
        # whether we are currently in the dropping regime.
        self._first_above: Optional[float] = None
        self._dropping = False
        # Counters (read under lock via snapshot()).
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_brownout = 0
        self.shed_overload = 0
        self.shed_deadline = 0

    @property
    def enabled(self) -> bool:
        return self.policy.shed

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    # -- enqueue ----------------------------------------------------

    def enqueue(self, budget: Optional[float], traffic_class: str
                ) -> tuple[Optional[AdmissionTicket], Optional[str]]:
        """Admit a request into the dispatch queue, or shed it.

        Returns ``(ticket, None)`` on admission — the ticket must later
        be passed to :meth:`dequeue` (worker pickup) or
        :meth:`abandon` (the request never reached a worker) — or
        ``(None, reason)`` when the request is shed at the door.
        """
        now = self._clock()
        if budget is not None and budget <= 0.0:
            with self._lock:
                self.shed_deadline += 1
            return None, SHED_DEADLINE
        background = traffic_class == "background"
        with self._lock:
            limit = self.policy.queue_limit
            if self._pending >= limit:
                self.shed_queue_full += 1
                return None, SHED_QUEUE_FULL
            if background and \
                    self._pending >= limit * self.policy.background_fraction:
                self.shed_brownout += 1
                return None, SHED_BROWNOUT
            self._pending += 1
            self.admitted += 1
        return AdmissionTicket(enqueued_at=now, budget=budget,
                               traffic_class=traffic_class), None

    # -- dequeue ----------------------------------------------------

    def dequeue(self, ticket: AdmissionTicket) -> Optional[str]:
        """Run the worker-pickup checks for an admitted request.

        Returns ``None`` when the worker should go ahead and dispatch,
        or a shed reason when the request must be refused instead.
        """
        now = self._clock()
        sojourn = now - ticket.enqueued_at
        with self._lock:
            # Test-and-set under the lock: a concurrent abandon() on
            # the same ticket (error paths may call it unconditionally)
            # must not double-decrement ``_pending``.
            first = not ticket.settled
            ticket.settled = True
            if first:
                self._pending -= 1
            if ticket.budget is not None and sojourn >= ticket.budget:
                self.shed_deadline += 1
                return SHED_DEADLINE
            if sojourn < self.policy.codel_target:
                # Healthy sojourn resets the CoDel state machine.
                self._first_above = None
                self._dropping = False
                return None
            if ticket.traffic_class == "background" and self._dropping:
                self.shed_brownout += 1
                return SHED_BROWNOUT
            if self._first_above is None:
                self._first_above = now
                return None
            if self._dropping \
                    or now - self._first_above >= self.policy.codel_interval:
                self._dropping = True
                self.shed_overload += 1
                return SHED_OVERLOAD
        return None

    def abandon(self, ticket: AdmissionTicket) -> None:
        """Release an admitted request that never reached a worker
        (connection died, submit failed).  Safe to call
        unconditionally from error paths: the test-and-set runs under
        the controller lock, so racing abandon/abandon or
        abandon/dequeue settles the ticket exactly once."""
        with self._lock:
            if ticket.settled:
                return
            ticket.settled = True
            self._pending -= 1

    # -- reporting --------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            sheds = (self.shed_queue_full + self.shed_brownout
                     + self.shed_overload)
            return {
                "admitted": self.admitted,
                "pending": self._pending,
                "shed_queue_full": self.shed_queue_full,
                "shed_brownout": self.shed_brownout,
                "shed_overload": self.shed_overload,
                "shed_deadline": self.shed_deadline,
                "requests_shed": sheds,
                "requests_expired": self.shed_deadline,
            }
