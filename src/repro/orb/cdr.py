"""Common Data Representation (CDR) marshalling.

CORBA's GIOP transfers all values in CDR: primitives are aligned to
their natural size and encoded big- or little-endian as announced by
the message flags.  This module implements a faithful subset:

* aligned primitives — octet, boolean, short, long, long long, double;
* strings — unsigned long length (including NUL), UTF-8 bytes, NUL;
* sequences — unsigned long count then elements;
* and a tagged ``any`` encoding that lets the RPC layer ship Python
  values (None, bool, int, float, str, bytes, date, list, tuple, dict)
  without a compiled IDL type for each.

Encoders and decoders track absolute stream position so alignment
padding matches on both sides.
"""

from __future__ import annotations

import datetime
import struct
from typing import Any

from repro.errors import MarshalError

# Type tags for the `any` encoding (one octet each).
TAG_NULL = 0
TAG_FALSE = 1
TAG_TRUE = 2
TAG_LONG = 3          # 32-bit signed
TAG_LONGLONG = 4      # 64-bit signed
TAG_DOUBLE = 5
TAG_STRING = 6
TAG_BYTES = 7
TAG_DATE = 8          # days since epoch, as long
TAG_SEQUENCE = 9
TAG_STRUCT = 10       # string-keyed map
TAG_BIGINT = 11       # arbitrary precision: sign octet + byte count + bytes

_INT32_MIN, _INT32_MAX = -2**31, 2**31 - 1
_INT64_MIN, _INT64_MAX = -2**63, 2**63 - 1
_EPOCH = datetime.date(1970, 1, 1)


class CdrEncoder:
    """Appends CDR-encoded values to a growing buffer."""

    def __init__(self, little_endian: bool = False):
        self.little_endian = little_endian
        self._chunks: list[bytes] = []
        self._size = 0
        self._joined: bytes | None = None
        self._fmt = "<" if little_endian else ">"

    # -- low level ------------------------------------------------------------

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)
        self._joined = None

    def align(self, boundary: int) -> None:
        """Pad with zero octets to the next *boundary* multiple."""
        remainder = self._size % boundary
        if remainder:
            self._append(b"\x00" * (boundary - remainder))

    def write_octet(self, value: int) -> None:
        self._append(struct.pack("B", value & 0xFF))

    def write_boolean(self, value: bool) -> None:
        self.write_octet(1 if value else 0)

    def write_short(self, value: int) -> None:
        self.align(2)
        self._append(struct.pack(self._fmt + "h", value))

    def write_ushort(self, value: int) -> None:
        self.align(2)
        self._append(struct.pack(self._fmt + "H", value))

    def write_long(self, value: int) -> None:
        self.align(4)
        self._append(struct.pack(self._fmt + "i", value))

    def write_ulong(self, value: int) -> None:
        self.align(4)
        self._append(struct.pack(self._fmt + "I", value))

    def write_longlong(self, value: int) -> None:
        self.align(8)
        self._append(struct.pack(self._fmt + "q", value))

    def write_double(self, value: float) -> None:
        self.align(8)
        self._append(struct.pack(self._fmt + "d", value))

    def write_string(self, value: str) -> None:
        encoded = value.encode("utf-8")
        self.write_ulong(len(encoded) + 1)  # CDR counts the trailing NUL
        self._append(encoded)
        self._append(b"\x00")

    def write_octets(self, value: bytes) -> None:
        self.write_ulong(len(value))
        self._append(value)

    # -- any ---------------------------------------------------------------------

    def write_any(self, value: Any) -> None:
        """Encode an arbitrary supported Python value with a type tag."""
        if value is None:
            self.write_octet(TAG_NULL)
        elif value is True:
            self.write_octet(TAG_TRUE)
        elif value is False:
            self.write_octet(TAG_FALSE)
        elif isinstance(value, int):
            if _INT32_MIN <= value <= _INT32_MAX:
                self.write_octet(TAG_LONG)
                self.write_long(value)
            elif _INT64_MIN <= value <= _INT64_MAX:
                self.write_octet(TAG_LONGLONG)
                self.write_longlong(value)
            else:
                self.write_octet(TAG_BIGINT)
                magnitude = abs(value)
                raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1,
                                         "big")
                self.write_octet(0 if value >= 0 else 1)
                self.write_octets(raw)
        elif isinstance(value, float):
            self.write_octet(TAG_DOUBLE)
            self.write_double(value)
        elif isinstance(value, str):
            self.write_octet(TAG_STRING)
            self.write_string(value)
        elif isinstance(value, bytes):
            self.write_octet(TAG_BYTES)
            self.write_octets(value)
        elif isinstance(value, datetime.date) and not isinstance(
                value, datetime.datetime):
            self.write_octet(TAG_DATE)
            self.write_long((value - _EPOCH).days)
        elif isinstance(value, (list, tuple)):
            self.write_octet(TAG_SEQUENCE)
            self.write_ulong(len(value))
            for item in value:
                self.write_any(item)
        elif isinstance(value, dict):
            self.write_octet(TAG_STRUCT)
            self.write_ulong(len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise MarshalError(
                        f"struct keys must be strings, got {key!r}")
                self.write_string(key)
                self.write_any(item)
        else:
            raise MarshalError(
                f"cannot marshal {type(value).__name__} value {value!r}")

    def getvalue(self) -> bytes:
        # The GIOP framer calls this twice per message (once for the
        # header's size field, once for the payload), so the join is
        # cached and the chunk list collapsed to it; any later append
        # invalidates the cache.
        if self._joined is None:
            self._joined = b"".join(self._chunks)
            self._chunks = [self._joined] if self._joined else []
        return self._joined

    def __len__(self) -> int:
        return self._size


class CdrDecoder:
    """Reads CDR-encoded values from a byte buffer.

    Accepts ``bytes`` or a ``memoryview`` without copying: the
    event-loop transport slices request frames straight out of its
    receive buffer, and every read here works on that view in place
    (``struct.unpack``/``int.from_bytes`` consume buffers directly).
    Values that escape the decoder — octet sequences, strings — are
    materialised at the last moment, so decoding a view allocates only
    for the values actually produced.
    """

    def __init__(self, data: bytes | bytearray | memoryview,
                 little_endian: bool = False, offset: int = 0):
        self._data = data if isinstance(data, memoryview) \
            else memoryview(data)
        self._pos = offset
        self.little_endian = little_endian
        self._fmt = "<" if little_endian else ">"

    # -- low level -----------------------------------------------------------

    def align(self, boundary: int) -> None:
        remainder = self._pos % boundary
        if remainder:
            self._pos += boundary - remainder

    def _take(self, count: int) -> memoryview:
        if self._pos + count > len(self._data):
            raise MarshalError(
                f"CDR underflow: need {count} bytes at {self._pos}, "
                f"have {len(self._data)}")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def read_octet(self) -> int:
        return self._take(1)[0]

    def read_boolean(self) -> bool:
        return self.read_octet() != 0

    def read_short(self) -> int:
        self.align(2)
        return struct.unpack(self._fmt + "h", self._take(2))[0]

    def read_ushort(self) -> int:
        self.align(2)
        return struct.unpack(self._fmt + "H", self._take(2))[0]

    def read_long(self) -> int:
        self.align(4)
        return struct.unpack(self._fmt + "i", self._take(4))[0]

    def read_ulong(self) -> int:
        self.align(4)
        return struct.unpack(self._fmt + "I", self._take(4))[0]

    def read_longlong(self) -> int:
        self.align(8)
        return struct.unpack(self._fmt + "q", self._take(8))[0]

    def read_double(self) -> float:
        self.align(8)
        return struct.unpack(self._fmt + "d", self._take(8))[0]

    def read_string(self) -> str:
        length = self.read_ulong()
        if length == 0:
            raise MarshalError("CDR string with zero length (missing NUL)")
        raw = self._take(length)
        if raw[-1] != 0:
            raise MarshalError("CDR string not NUL-terminated")
        try:
            # str(buffer, encoding) decodes a memoryview slice without
            # an intermediate bytes copy.
            return str(raw[:-1], "utf-8")
        except UnicodeDecodeError as exc:
            raise MarshalError(f"CDR string is not valid UTF-8: {exc}") \
                from exc

    def read_octets(self) -> bytes:
        return bytes(self._take(self.read_ulong()))

    # -- any -------------------------------------------------------------------

    def read_any(self) -> Any:
        tag = self.read_octet()
        if tag == TAG_NULL:
            return None
        if tag == TAG_TRUE:
            return True
        if tag == TAG_FALSE:
            return False
        if tag == TAG_LONG:
            return self.read_long()
        if tag == TAG_LONGLONG:
            return self.read_longlong()
        if tag == TAG_BIGINT:
            negative = self.read_octet() == 1
            magnitude = int.from_bytes(self.read_octets(), "big")
            return -magnitude if negative else magnitude
        if tag == TAG_DOUBLE:
            return self.read_double()
        if tag == TAG_STRING:
            return self.read_string()
        if tag == TAG_BYTES:
            return self.read_octets()
        if tag == TAG_DATE:
            try:
                return _EPOCH + datetime.timedelta(days=self.read_long())
            except OverflowError as exc:
                raise MarshalError("CDR date out of range") from exc
        if tag == TAG_SEQUENCE:
            count = self.read_ulong()
            return [self.read_any() for _ in range(count)]
        if tag == TAG_STRUCT:
            count = self.read_ulong()
            result: dict[str, Any] = {}
            for _ in range(count):
                key = self.read_string()
                result[key] = self.read_any()
            return result
        raise MarshalError(f"unknown CDR any tag {tag}")

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos


def encode_any(value: Any, little_endian: bool = False) -> bytes:
    """Encode one value to standalone CDR bytes."""
    encoder = CdrEncoder(little_endian)
    encoder.write_any(value)
    return encoder.getvalue()


def decode_any(data: bytes, little_endian: bool = False) -> Any:
    """Decode one value from standalone CDR bytes."""
    return CdrDecoder(data, little_endian).read_any()
