"""Deterministic fault injection for GIOP transports.

The paper's federation assumes autonomous sources that "join and leave
at their own discretion" — which means every failure mode a WAN can
produce must be *exercisable on demand*: connection refusal, lost
requests, lost replies, latency and jitter, truncated or corrupted
frames, and sites that slow down before dying.  :class:`FaultyTransport`
wraps any :class:`~repro.orb.transport.Transport` and injects exactly
those faults from a scripted, seeded plan, so chaos tests and the S5
fault benchmarks are reproducible bit-for-bit from a seed.

The injection DSL is a set of chainable rule builders::

    faulty = FaultyTransport(InMemoryNetwork(), seed=7)
    faulty.refuse(endpoint)                      # hard-dead site
    faulty.drop_replies(other, rate=0.3)         # 30% reply loss
    faulty.delay(ANY, latency=0.002, jitter=0.001)  # WAN everywhere
    faulty.slow_then_die(flaky, calls=5, latency=0.05)
    faulty.partition({a}, {b, c})                # network split
    faulty.heal(endpoint)                        # site comes back

A :func:`FaultyTransport.partition` severs **both directions** between
two endpoint groups: ``send`` to a severed destination raises
:class:`~repro.errors.CommFailure` when the in-process caller (the
:data:`CLIENT` sentinel) sits on the other side of the cut, and
:meth:`FaultyTransport.severed` answers link-liveness queries between
arbitrary endpoints — the replication layer consults it (via
:meth:`FaultyTransport.link_oracle`) before counting a replica toward
a write quorum or a lease majority.  Partition rules compose with the
same ``after=`` / ``until=`` windows as every other fault: for sends
the window is the destination's per-endpoint call index, for oracle
queries it is a per-link check counter, so "the split heals after N
probes" is scriptable.

Rules keyed by the :data:`ANY` wildcard apply to every endpoint; rules
fire in the order they were added.  ``after=`` / ``until=`` bound a
rule to a window of per-endpoint call indices, which is how
*slow-then-die* patterns are scripted.  Rules with ``rate < 1`` draw
from the transport's seeded RNG: deterministic for a sequential
workload, statistically stable (same marginal rates) for a parallel
one.

Because the wrapper sits *above* the transport, each injected fault
acts on exactly one logical request/reply exchange — on a pipelined
:class:`~repro.orb.transport.TcpTransport` a dropped or truncated
reply is attributed to the one ``request_id`` whose (already-matched)
reply it was, and only that caller fails; sibling requests in flight
on the same connection are untouched.  The same holds in the
event-loop transport mode: batched flushes and the loop's non-blocking
write path happen *below* this wrapper, so a fault window still wraps
whole exchanges, never fractions of a coalesced send.

Injected latency is **deadline-aware**: when the calling thread carries
a :class:`~repro.deadline.Deadline` (see :mod:`repro.deadline`), a
sleep that would overrun the remaining budget is cut short and surfaces
as :class:`~repro.errors.DeadlineExceeded` — exactly what a client-side
timeout would do against a genuinely slow server.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.deadline import current_policy
from repro.errors import CommFailure, DeadlineExceeded
from repro.orb.giop import busy_reply
from repro.orb.transport import Endpoint, Handler, Transport

#: Wildcard endpoint: the rule applies to every destination.
ANY: Endpoint = ("*", 0)

#: The in-process caller's side of the network.  Put :data:`CLIENT` in
#: one group of a :func:`FaultyTransport.partition` to sever the
#: client's own sends to the other group, not just replica↔replica
#: links.
CLIENT: Endpoint = ("client", 0)

#: Fault kinds, in the order they act on a request's life cycle.
KINDS = ("delay", "refuse", "busy", "drop_request", "drop_reply",
         "truncate_reply", "corrupt_reply", "partition")


@dataclass
class FaultRule:
    """One scripted fault, bound to an endpoint (or :data:`ANY`)."""

    kind: str
    rate: float = 1.0
    #: Fire only for per-endpoint call indices in [after, until).
    after: int = 0
    until: Optional[int] = None
    latency: float = 0.0
    jitter: float = 0.0
    keep_bytes: int = 8

    def active_for(self, call_index: int) -> bool:
        if call_index < self.after:
            return False
        return self.until is None or call_index < self.until


@dataclass
class PartitionRule:
    """A bidirectional cut between two endpoint groups.

    Unlike a :class:`FaultRule`, a partition is a property of a *link*,
    not of one destination: it fires for any (src, dst) pair with one
    end in each group, in either direction.  ``after`` / ``until``
    bound the cut to a window of indices **counted from the moment the
    partition was scripted** — the destination's call index for
    ``send``, a per-link check counter for :meth:`FaultyTransport.
    severed` queries.  (Counters the workload already advanced before
    the cut existed are baselined away via *calls_base* /
    *links_base*, so ``until=4`` always means "the next 4".)
    """

    group_a: frozenset[Endpoint]
    group_b: frozenset[Endpoint]
    after: int = 0
    until: Optional[int] = None
    #: Per-endpoint send counts at creation (window zero points).
    calls_base: dict = field(default_factory=dict)
    #: Per-link check counts at creation (window zero points).
    links_base: dict = field(default_factory=dict)

    def active_for(self, index: int) -> bool:
        if index < self.after:
            return False
        return self.until is None or index < self.until

    def crosses(self, a: Endpoint, b: Endpoint) -> bool:
        return ((a in self.group_a and b in self.group_b)
                or (a in self.group_b and b in self.group_a))


def _as_group(spec) -> frozenset:
    """Accept a single endpoint or any iterable of endpoints."""
    if isinstance(spec, tuple) and len(spec) == 2 \
            and isinstance(spec[0], str):
        return frozenset((spec,))
    return frozenset(spec)


class FaultyTransport(Transport):
    """A transport wrapper that injects scripted failures on ``send``.

    Registration and everything else delegate to the wrapped transport,
    so a faulty fabric is a drop-in replacement when deploying a
    :class:`~repro.core.system.WebFinditSystem`.  Per-kind injection
    counters (:attr:`injected`) let tests assert that a scenario
    actually exercised the paths it scripted.
    """

    def __init__(self, inner: Transport, seed: int = 0):
        self.inner = inner
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: dict[Endpoint, list[FaultRule]] = {}
        self._partitions: list[PartitionRule] = []
        self._calls: dict[Endpoint, int] = {}
        self._link_checks: dict[frozenset, int] = {}
        self._lock = threading.RLock()
        #: Count of faults actually fired, by kind.
        self.injected: dict[str, int] = {kind: 0 for kind in KINDS}
        #: Endpoints a fault ever fired for, by kind (tests use this to
        #: check which sites a seeded scenario actually hit).
        self.injected_endpoints: dict[str, set[Endpoint]] = \
            {kind: set() for kind in KINDS}

    # ------------------------------------------------------------- the DSL --

    def rule(self, endpoint: Endpoint, rule: FaultRule) -> "FaultyTransport":
        with self._lock:
            self._rules.setdefault(endpoint, []).append(rule)
        return self

    def refuse(self, endpoint: Endpoint = ANY, rate: float = 1.0,
               after: int = 0, until: Optional[int] = None
               ) -> "FaultyTransport":
        """Connection refused (the site is down or firewalled)."""
        return self.rule(endpoint, FaultRule("refuse", rate=rate,
                                             after=after, until=until))

    def busy(self, endpoint: Endpoint = ANY, rate: float = 1.0,
             after: int = 0, until: Optional[int] = None
             ) -> "FaultyTransport":
        """The server sheds the request with a ``BUSY`` reply before
        doing any work — an overloaded admission queue, scripted.  Lets
        retry-budget and hedging behaviour be tested without actually
        saturating a server: the client sees exactly the synthesized
        GIOP frame a shedding :class:`~repro.orb.transport.TcpTransport`
        would produce."""
        return self.rule(endpoint, FaultRule("busy", rate=rate,
                                             after=after, until=until))

    def drop_requests(self, endpoint: Endpoint = ANY, rate: float = 1.0,
                      after: int = 0) -> "FaultyTransport":
        """The request never reaches the server (safe to resend)."""
        return self.rule(endpoint, FaultRule("drop_request", rate=rate,
                                             after=after))

    def drop_replies(self, endpoint: Endpoint = ANY, rate: float = 1.0,
                     after: int = 0, until: Optional[int] = None
                     ) -> "FaultyTransport":
        """The server processes the request but the reply is lost —
        the ambiguous failure that makes blind resends dangerous."""
        return self.rule(endpoint, FaultRule("drop_reply", rate=rate,
                                             after=after, until=until))

    def delay(self, endpoint: Endpoint = ANY, latency: float = 0.0,
              jitter: float = 0.0, rate: float = 1.0,
              after: int = 0, until: Optional[int] = None
              ) -> "FaultyTransport":
        """Add fixed *latency* plus uniform [0, jitter) per request."""
        return self.rule(endpoint, FaultRule("delay", rate=rate,
                                             after=after, until=until,
                                             latency=latency, jitter=jitter))

    def truncate_replies(self, endpoint: Endpoint = ANY,
                         keep_bytes: int = 8, rate: float = 1.0,
                         after: int = 0, until: Optional[int] = None
                         ) -> "FaultyTransport":
        """Cut replies to *keep_bytes* (a mid-frame connection loss)."""
        return self.rule(endpoint, FaultRule("truncate_reply", rate=rate,
                                             after=after, until=until,
                                             keep_bytes=keep_bytes))

    def corrupt_replies(self, endpoint: Endpoint = ANY, rate: float = 1.0,
                        after: int = 0, until: Optional[int] = None
                        ) -> "FaultyTransport":
        """Flip bytes in the reply body (a damaged GIOP frame)."""
        return self.rule(endpoint, FaultRule("corrupt_reply", rate=rate,
                                             after=after, until=until))

    def slow_then_die(self, endpoint: Endpoint, calls: int,
                      latency: float = 0.05) -> "FaultyTransport":
        """The classic brown-out: *calls* slow answers, then dead."""
        self.delay(endpoint, latency=latency, until=calls)
        return self.refuse(endpoint, after=calls)

    def partition(self, group_a, group_b, after: int = 0,
                  until: Optional[int] = None) -> "FaultyTransport":
        """Sever both directions between two endpoint groups.

        Each argument is one endpoint or an iterable of endpoints; put
        :data:`CLIENT` in a group to cut the in-process caller's own
        sends too.  The ``after`` / ``until`` window counts the
        destination's calls (for sends) and each link's checks (for
        :meth:`severed` queries) **from this moment**, so ``until=N``
        severs the next N probes of a link regardless of earlier
        traffic.
        """
        with self._lock:
            rule = PartitionRule(_as_group(group_a), _as_group(group_b),
                                 after=after, until=until,
                                 calls_base=dict(self._calls),
                                 links_base=dict(self._link_checks))
            self._partitions.append(rule)
        return self

    def heal(self, endpoint: Optional[Endpoint] = None) -> "FaultyTransport":
        """Drop every rule for *endpoint* (or all rules when None).

        Healing an endpoint also lifts any partition naming it; healing
        everything clears all partitions.
        """
        with self._lock:
            if endpoint is None:
                self._rules.clear()
                self._partitions.clear()
            else:
                self._rules.pop(endpoint, None)
                self._partitions = [
                    rule for rule in self._partitions
                    if endpoint not in rule.group_a
                    and endpoint not in rule.group_b]
        return self

    # ---------------------------------------------------------- partitions --

    def severed(self, src: Endpoint, dst: Endpoint) -> bool:
        """Is the *src* ↔ *dst* link currently cut by a partition?

        Each query advances the link's check counter, so ``after`` /
        ``until`` windows on partition rules meter out in probes —
        "severed for the first N quorum checks" is scriptable.
        """
        with self._lock:
            key = frozenset((src, dst))
            index = self._link_checks.get(key, 0)
            self._link_checks[key] = index + 1
            blocked = any(
                rule.crosses(src, dst) and rule.active_for(
                    index - rule.links_base.get(key, 0))
                for rule in self._partitions)
        if blocked:
            self._count("partition", dst)
        return blocked

    def link_oracle(self):
        """Connectivity callback for the replication layer: truthy when
        the link is up (the inverse of :meth:`severed`)."""
        return lambda a, b: not self.severed(a, b)

    def _client_severed(self, endpoint: Endpoint, call_index: int) -> bool:
        """Partition check on the send path (the :data:`CLIENT` side)."""
        with self._lock:
            blocked = any(
                rule.crosses(CLIENT, endpoint) and rule.active_for(
                    call_index - rule.calls_base.get(endpoint, 0))
                for rule in self._partitions)
        if blocked:
            self._count("partition", endpoint)
        return blocked

    # ------------------------------------------------------------ transport --

    def register(self, endpoint: Endpoint, handler: Handler) -> Endpoint:
        return self.inner.register(endpoint, handler)

    def unregister(self, endpoint: Endpoint) -> None:
        self.inner.unregister(endpoint)

    def send(self, endpoint: Endpoint, data: bytes) -> bytes:
        rules, call_index = self._fired_rules(endpoint)
        if self._client_severed(endpoint, call_index):
            raise CommFailure(
                f"injected fault: partition severs the link to "
                f"{endpoint!r} (call #{call_index})")
        reply_faults: list[FaultRule] = []
        for rule in rules:
            if rule.kind == "delay":
                self._count(rule.kind, endpoint)
                self._sleep(rule, endpoint)
            elif rule.kind == "refuse":
                self._count(rule.kind, endpoint)
                raise CommFailure(
                    f"injected fault: connection to {endpoint!r} refused "
                    f"(call #{call_index})")
            elif rule.kind == "busy":
                # Shed before delivery — the server does no work, the
                # caller gets the same BUSY frame a real shedding
                # transport writes (or silence for oneway requests).
                self._count(rule.kind, endpoint)
                shed = busy_reply(data, "injected")
                return shed if shed is not None else b""
            elif rule.kind == "drop_request":
                self._count(rule.kind, endpoint)
                raise CommFailure(
                    f"injected fault: request to {endpoint!r} dropped "
                    f"before delivery")
            else:
                reply_faults.append(rule)
        reply = self.inner.send(endpoint, data)
        for rule in reply_faults:
            self._count(rule.kind, endpoint)
            if rule.kind == "drop_reply":
                raise CommFailure(
                    f"injected fault: reply from {endpoint!r} dropped "
                    f"after the request was delivered")
            if rule.kind == "truncate_reply":
                reply = reply[:rule.keep_bytes]
            elif rule.kind == "corrupt_reply":
                reply = _flip_bytes(reply)
        return reply

    def __getattr__(self, name: str):
        # Everything the wrapper does not fault (metrics, allocate_port,
        # latency, close, ...) behaves exactly like the real transport.
        return getattr(self.inner, name)

    # ------------------------------------------------------------ internals --

    def _fired_rules(self, endpoint: Endpoint
                     ) -> tuple[list[FaultRule], int]:
        """The rules that fire for this call, plus the call's index."""
        with self._lock:
            call_index = self._calls.get(endpoint, 0)
            self._calls[endpoint] = call_index + 1
            candidates = [*self._rules.get(ANY, ()),
                          *self._rules.get(endpoint, ())]
            fired = [rule for rule in candidates
                     if rule.active_for(call_index)
                     and (rule.rate >= 1.0
                          or self._rng.random() < rule.rate)]
        return fired, call_index

    def _count(self, kind: str, endpoint: Endpoint) -> None:
        with self._lock:
            self.injected[kind] += 1
            self.injected_endpoints[kind].add(endpoint)

    def _sleep(self, rule: FaultRule, endpoint: Endpoint) -> None:
        duration = rule.latency
        if rule.jitter > 0.0:
            with self._lock:
                duration += self._rng.random() * rule.jitter
        deadline = current_policy().deadline
        if deadline is not None:
            remaining = deadline.remaining()
            if duration >= remaining:
                if remaining > 0.0:
                    time.sleep(remaining)
                raise DeadlineExceeded(
                    f"injected {duration * 1e3:.1f} ms latency at "
                    f"{endpoint!r} overran the call deadline")
        if duration > 0.0:
            time.sleep(duration)


def _flip_bytes(frame: bytes) -> bytes:
    """Damage a GIOP frame without changing its length: the header's
    size field still matches, but the body no longer decodes."""
    if not frame:
        return frame
    mutated = bytearray(frame)
    position = len(mutated) // 2
    mutated[position] ^= 0xFF
    if len(mutated) > 1:
        mutated[-1] ^= 0xFF
    return bytes(mutated)
