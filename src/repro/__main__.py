"""``python -m repro`` — the interactive WebTassili shell."""

from repro.cli import main

raise SystemExit(main())
