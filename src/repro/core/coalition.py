"""Coalitions: strongly-coupled, topic-specialized clusters of databases.

A coalition "is specialized to a single common topic ... dynamically
clumps databases together based on common areas of interest into a
single atomic unit" (§2.1).  Coalitions may specialize other coalitions
(the class lattice browsed by ``Display SubClasses of Class X``), and
membership changes freely as database interests change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MembershipError


@dataclass
class Coalition:
    """One coalition in the information space."""

    name: str
    information_type: str
    parent: Optional[str] = None
    doc: str = ""
    members: list[str] = field(default_factory=list)

    def add_member(self, database_name: str) -> None:
        """Join *database_name* to this coalition."""
        if database_name in self.members:
            raise MembershipError(
                f"{database_name!r} is already a member of "
                f"coalition {self.name!r}")
        self.members.append(database_name)

    def remove_member(self, database_name: str) -> None:
        """Remove *database_name* from this coalition."""
        if database_name not in self.members:
            raise MembershipError(
                f"{database_name!r} is not a member of "
                f"coalition {self.name!r}")
        self.members.remove(database_name)

    def has_member(self, database_name: str) -> bool:
        return database_name in self.members

    def to_wire(self) -> dict:
        """CDR-friendly struct."""
        return {
            "name": self.name,
            "information_type": self.information_type,
            "parent": self.parent,
            "doc": self.doc,
            "members": list(self.members),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "Coalition":
        return cls(name=payload.get("name", ""),
                   information_type=payload.get("information_type", ""),
                   parent=payload.get("parent"),
                   doc=payload.get("doc", ""),
                   members=list(payload.get("members", [])))
