"""The WebTassili query processor (query layer of Figure 3).

"The query processor receives queries from the browser, coordinates
their execution and returns their results ... it interacts with the
communication layer which dispatches WebTassili queries to the
co-databases (meta-data layer) and databases (data layer)."

:class:`QueryProcessor` interprets parsed WebTassili statements against

* a :class:`~repro.core.discovery.DiscoveryEngine` (topic resolution),
* co-database clients (meta-data queries),
* Information Source Interfaces (data queries),
* a :class:`~repro.core.registry.Registry` (maintenance statements) —
  or any object with the same maintenance surface, such as a
  :class:`~repro.core.sharding.ShardedRegistryClient` routing those
  statements across consistent-hash registry shards.

Results come back as :class:`WtResult`: structured data plus the
rendered text a browser displays (the content of Figures 4–6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from repro.core.discovery import (CoDatabaseClient, DiscoveryEngine,
                                  DiscoveryResult)
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.resilience import ResiliencePolicy
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import (ReproError, UnknownCoalition, UnknownDatabase,
                          WebFinditError)
from repro.sql.result import ResultSet
from repro.webtassili import ast
from repro.webtassili.parser import parse
from repro.wrappers.base import InformationSourceInterface

if TYPE_CHECKING:
    from repro.core.sharding import ShardedRegistryClient

#: Maintenance statements only need the registry's mutation surface,
#: which the singleton and the sharded coordinator share.
RegistryLike = Union[Registry, "ShardedRegistryClient"]


@dataclass
class WtResult:
    """Outcome of one WebTassili statement."""

    kind: str
    data: Any
    text: str

    def __str__(self) -> str:
        return self.text


@dataclass
class Session:
    """Per-user interaction state.

    *home_database* is the participating database the user belongs to
    (§2: "We assume that a user of our system is already a user of a
    participating database").  Connecting to a coalition or database
    moves the metadata entry point.
    """

    home_database: str
    current_coalition: Optional[str] = None
    entry_database: Optional[str] = None
    history: list[str] = field(default_factory=list)

    @property
    def metadata_source(self) -> str:
        """Which database's co-database answers meta-queries right now."""
        return self.entry_database or self.home_database


class QueryProcessor:
    """Interprets WebTassili statements for one session."""

    def __init__(self,
                 resolver: Callable[[str], CoDatabaseClient],
                 wrapper_for: Callable[[str], InformationSourceInterface],
                 registry: Optional[RegistryLike] = None,
                 match_threshold: float = 0.5,
                 parallel: bool = False,
                 max_workers: Optional[int] = None,
                 policy: Optional[ResiliencePolicy] = None):
        self._resolver = resolver
        self._wrapper_for = wrapper_for
        self._registry = registry
        self.policy = policy
        self.discovery = DiscoveryEngine(resolver,
                                         match_threshold=match_threshold,
                                         parallel=parallel,
                                         max_workers=max_workers,
                                         policy=policy)
        #: Statements processed (Figure-3 layer accounting).
        self.statements_processed = 0

    # -------------------------------------------------------------- dispatch --

    def execute(self, statement: str | ast.WtStatement,
                session: Session) -> WtResult:
        """Parse (if needed) and execute one statement."""
        if isinstance(statement, str):
            session.history.append(statement)
            statement = parse(statement)
        self.statements_processed += 1
        handler_name = f"_do_{type(statement).__name__.lower()}"
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise WebFinditError(
                f"no handler for {type(statement).__name__}")
        return handler(statement, session)

    def _client(self, database_name: str) -> CoDatabaseClient:
        return self._resolver(database_name)

    def _require_registry(self) -> RegistryLike:
        if self._registry is None:
            raise WebFinditError(
                "maintenance statements require an administrative registry")
        return self._registry

    # ------------------------------------------------------------ exploration --

    def _do_findcoalitions(self, statement: ast.FindCoalitions,
                           session: Session) -> WtResult:
        result: DiscoveryResult = self.discovery.discover(
            statement.information, session.metadata_source)
        if statement.structure:
            result.leads[:] = [
                lead for lead in result.leads
                if self._structure_coverage(lead, statement.structure,
                                            session) > 0.0
            ]
        qualifier = (f" structure ({', '.join(statement.structure)})"
                     if statement.structure else "")
        lines = [f"Coalitions with information "
                 f"'{statement.information}'{qualifier}:"]
        if not result.resolved:
            # A degraded sweep that found nothing is *not* evidence of
            # absence — tell the user which part of the space went dark.
            if result.degraded:
                lines.append("    (no answer from the degraded information "
                             "space — partial exploration only)")
            else:
                lines.append(
                    "    (none found in the reachable information space)")
        for lead in result.leads:
            origin = f" via service link {lead.through_link}" \
                if lead.through_link else ""
            path = " -> ".join(lead.via)
            lines.append(
                f"    {lead.name}  [type: {lead.information_type}, "
                f"score {lead.score:.2f}]{origin}  (found through {path})")
        if result.degraded:
            lines.append(
                f"    !! partial exploration: {result.degraded.summary()}")
        lines.append(
            f"    -- consulted {result.codatabases_contacted} co-database(s), "
            f"{result.metadata_calls} metadata calls")
        return WtResult(kind="coalitions", data=result,
                        text="\n".join(lines))

    @staticmethod
    def _structure_matches(requested: str,
                           description: SourceDescription) -> bool:
        """True when *requested* names an exported attribute/function of
        *description* (full path or last segment, case-insensitive)."""
        wanted = requested.lower()
        for element in description.structure:
            lowered = element.lower()
            if lowered == wanted or lowered.endswith("." + wanted):
                return True
        return False

    def _structure_coverage(self, lead, requested: list[str],
                            session: Session) -> float:
        """Fraction of requested structure elements some member of the
        lead's coalition exports."""
        entry = lead.entry_database
        if entry is None:
            return 0.0
        try:
            members = [SourceDescription.from_wire(d) for d in
                       self._client(entry).instances_of(lead.name)]
        except (UnknownDatabase, UnknownCoalition, WebFinditError):
            return 0.0
        if not members or not requested:
            return 0.0
        best = 0.0
        for member in members:
            hits = sum(1 for name in requested
                       if self._structure_matches(name, member))
            best = max(best, hits / len(requested))
        return best

    def _do_findsources(self, statement: ast.FindSources,
                        session: Session) -> WtResult:
        """Locate individual databases: resolve coalitions for the
        topic, then filter their member descriptions by it."""
        from repro.core.model import topic_score

        result = self.discovery.discover(statement.information,
                                         session.metadata_source)
        sources: list[SourceDescription] = []
        seen: set[str] = set()
        for lead in result.leads:
            entry = lead.entry_database
            if entry is None:
                continue
            try:
                instances = self._client(entry).instances_of(lead.name)
            except (UnknownDatabase, UnknownCoalition, WebFinditError):
                continue
            for payload in instances:
                description = SourceDescription.from_wire(payload)
                if description.name in seen:
                    continue
                score = topic_score(statement.information,
                                    description.information_type)
                if score < 0.5:
                    continue
                if statement.structure and not all(
                        self._structure_matches(name, description)
                        for name in statement.structure):
                    continue
                seen.add(description.name)
                sources.append((score, description))
        sources.sort(key=lambda pair: (-pair[0], pair[1].name))
        sources = [description for __, description in sources]
        qualifier = (f" structure ({', '.join(statement.structure)})"
                     if statement.structure else "")
        lines = [f"Sources with information "
                 f"'{statement.information}'{qualifier}:"]
        for description in sources:
            lines.append(f"    {description.name}  "
                         f"[{description.information_type}] "
                         f"at {description.location}")
        if not sources:
            lines.append("    (no answer from the degraded information "
                         "space — partial exploration only)"
                         if result.degraded else "    (none found)")
        if result.degraded:
            lines.append(
                f"    !! partial exploration: {result.degraded.summary()}")
        return WtResult(kind="sources", data=sources, text="\n".join(lines))

    def _do_connectto(self, statement: ast.ConnectTo,
                      session: Session) -> WtResult:
        if statement.target_kind == "database":
            description = self._describe_source(statement.name, session)
            session.entry_database = description.name
            return WtResult(
                kind="connect", data=description,
                text=f"Connected to database {description.name} "
                     f"at {description.location}")
        entry = self._entry_for_coalition(statement.name, session)
        session.current_coalition = statement.name
        session.entry_database = entry
        return WtResult(
            kind="connect", data={"coalition": statement.name,
                                  "entry": entry},
            text=f"Connected to coalition {statement.name} "
                 f"(entry point: co-database of {entry})")

    def _entry_for_coalition(self, coalition_name: str,
                             session: Session) -> str:
        """A member database whose co-database can answer queries about
        *coalition_name* — the home database when it is itself a member."""
        home_client = self._client(session.home_database)
        if coalition_name in home_client.memberships():
            return session.home_database
        # Sweep (bounded) rather than stop at the first topic match:
        # we need the coalition with this *name*, which may score lower
        # than a topically-similar sibling.
        result = self.discovery.discover(coalition_name,
                                         session.metadata_source,
                                         stop_at_first=False, max_hops=4)
        for lead in result.leads:
            if lead.name == coalition_name and lead.entry_database:
                return lead.entry_database
        raise UnknownCoalition(
            f"cannot find an entry point for coalition {coalition_name!r}")

    def _do_displaysubclasses(self, statement: ast.DisplaySubclasses,
                              session: Session) -> WtResult:
        client = self._client(session.metadata_source)
        subclasses = client.subclasses_of(statement.class_name)
        lines = [f"SubClasses of Class {statement.class_name}:"]
        if subclasses:
            lines.extend(f"    {name}" for name in subclasses)
        else:
            lines.append("    (no specializations)")
        return WtResult(kind="subclasses", data=subclasses,
                        text="\n".join(lines))

    def _do_displayinstances(self, statement: ast.DisplayInstances,
                             session: Session) -> WtResult:
        client = self._client(session.metadata_source)
        instances = [SourceDescription.from_wire(d)
                     for d in client.instances_of(statement.class_name)]
        lines = [f"Instances of Class {statement.class_name}:"]
        for description in instances:
            lines.append(f"    {description.name}  "
                         f"[{description.information_type}]")
        if not instances:
            lines.append("    (no member databases)")
        return WtResult(kind="instances", data=instances,
                        text="\n".join(lines))

    def _describe_source(self, source_name: str,
                         session: Session) -> SourceDescription:
        """Describe a source, falling back to discovery when the current
        co-database does not know it."""
        client = self._client(session.metadata_source)
        try:
            return SourceDescription.from_wire(
                client.describe_instance(source_name))
        except UnknownDatabase:
            pass
        try:
            return SourceDescription.from_wire(
                self._client(source_name).describe_instance(source_name))
        except (UnknownDatabase, WebFinditError) as exc:
            raise UnknownDatabase(
                f"no information source {source_name!r} reachable from "
                f"{session.metadata_source!r}") from exc

    def _do_displaydocument(self, statement: ast.DisplayDocument,
                            session: Session) -> WtResult:
        description = self._describe_source(statement.instance_name, session)
        owner_client = self._client(description.name)
        documents = owner_client.documents_of(description.name)
        lines = [f"Documentation of {description.name}:"]
        lines.append(f"    URL: {description.documentation_url or '(none)'}")
        for document in documents:
            lines.append(f"    [{document['format']}] "
                         f"{document['url'] or '(inline)'}")
            if document["content"]:
                for content_line in document["content"].splitlines():
                    lines.append(f"        {content_line}")
        return WtResult(kind="document",
                        data={"description": description,
                              "documents": documents},
                        text="\n".join(lines))

    def _do_displayaccessinfo(self, statement: ast.DisplayAccessInfo,
                              session: Session) -> WtResult:
        description = self._describe_source(statement.instance_name, session)
        lines = [f"Access Information of {description.name}:",
                 f"    Location  {description.location}",
                 f"    Wrapper   {description.wrapper}",
                 f"    Interface {', '.join(description.interface) or '(none)'}"]
        return WtResult(kind="access", data=description,
                        text="\n".join(lines))

    def _do_displayinterface(self, statement: ast.DisplayInterface,
                             session: Session) -> WtResult:
        wrapper = self._wrapper_for(statement.instance_name)
        rendered = "\n".join(exported.render()
                             for exported in wrapper.exported_types())
        text = (f"Interface exported by {statement.instance_name} "
                f"({wrapper.native_language}, {wrapper.banner}):\n{rendered}")
        return WtResult(kind="interface", data=wrapper.describe(), text=text)

    def _do_displaystructure(self, statement: ast.DisplayStructure,
                             session: Session) -> WtResult:
        """The information type's 'general structure and behavior'
        (§2.2), as recorded in the co-database — no wrapper contact."""
        description = self._describe_source(statement.instance_name, session)
        lines = [f"Structure exported by {description.name} "
                 f"(types: {', '.join(description.interface) or 'none'}):"]
        for element in description.structure:
            kind = "attribute" if "." in element else "function"
            lines.append(f"    {kind} {element}")
        if not description.structure:
            lines.append("    (no structural description advertised)")
        return WtResult(kind="structure", data=description.structure,
                        text="\n".join(lines))

    def _do_displayservicelinks(self, statement: ast.DisplayServiceLinks,
                                session: Session) -> WtResult:
        kind = EndpointKind.parse(statement.target_kind)
        client = self._client(session.metadata_source)
        links = [link for link in client.service_links()
                 if link.involves(kind, statement.name)]
        lines = [f"Service links of {statement.target_kind} "
                 f"{statement.name}:"]
        for link in links:
            lines.append(f"    {link.label}  ({link.kind}; "
                         f"information: {link.information_type or 'n/a'})")
        if not links:
            lines.append("    (none known here)")
        return WtResult(kind="links", data=links, text="\n".join(lines))

    # ------------------------------------------------------------- data level --

    def _do_invokefunction(self, statement: ast.InvokeFunction,
                           session: Session) -> WtResult:
        if statement.on_coalition:
            return self._invoke_on_coalition(statement, session)
        wrapper = self._wrapper_for(statement.database_name)
        value = wrapper.invoke(statement.type_name, statement.function_name,
                               statement.arguments)
        rendered = _render_value(value)
        text = (f"{statement.type_name}.{statement.function_name}"
                f"({', '.join(repr(a) for a in statement.arguments)}) "
                f"on {statement.database_name} = {rendered}")
        return WtResult(kind="value", data=value, text=text)

    def _invoke_on_coalition(self, statement: ast.InvokeFunction,
                             session: Session) -> WtResult:
        """Fan the invocation out over every member of the coalition
        that exports the type — the 'integrate data from these
        information sources' half of the paper's motivation."""
        coalition_name = statement.database_name
        entry = self._entry_for_coalition(coalition_name, session)
        members = [SourceDescription.from_wire(d) for d in
                   self._client(entry).instances_of(coalition_name)]
        per_source: dict[str, Any] = {}
        errors_seen: dict[str, str] = {}
        for member in members:
            if statement.type_name not in member.interface:
                continue
            try:
                wrapper = self._wrapper_for(member.name)
                per_source[member.name] = wrapper.invoke(
                    statement.type_name, statement.function_name,
                    statement.arguments)
            except ReproError as exc:
                errors_seen[member.name] = str(exc)
        lines = [f"{statement.type_name}.{statement.function_name} "
                 f"across coalition {coalition_name}:"]
        for name, value in per_source.items():
            lines.append(f"    {name}: {_render_value(value)}")
        for name, message in errors_seen.items():
            lines.append(f"    {name}: FAILED ({message})")
        if not per_source and not errors_seen:
            lines.append(f"    (no member exports type "
                         f"{statement.type_name})")
        return WtResult(kind="federated",
                        data={"results": per_source, "errors": errors_seen},
                        text="\n".join(lines))

    def _do_nativequery(self, statement: ast.NativeQuery,
                        session: Session) -> WtResult:
        wrapper = self._wrapper_for(statement.database_name)
        value = wrapper.execute_native(statement.text)
        text = (f"Native query on {statement.database_name} "
                f"({wrapper.native_language}):\n{_render_value(value)}")
        return WtResult(kind="rows", data=value, text=text)

    # ------------------------------------------------------------ maintenance --

    def _do_createcoalition(self, statement: ast.CreateCoalition,
                            session: Session) -> WtResult:
        registry = self._require_registry()
        coalition = registry.create_coalition(statement.name,
                                              statement.information)
        return WtResult(kind="ack", data=coalition,
                        text=f"Coalition {coalition.name} created "
                             f"(information: {coalition.information_type})")

    def _do_dissolvecoalition(self, statement: ast.DissolveCoalition,
                              session: Session) -> WtResult:
        self._require_registry().dissolve_coalition(statement.name)
        return WtResult(kind="ack", data=statement.name,
                        text=f"Coalition {statement.name} dissolved")

    def _do_advertisesource(self, statement: ast.AdvertiseSource,
                            session: Session) -> WtResult:
        registry = self._require_registry()
        description = SourceDescription(
            name=statement.name,
            information_type=statement.information,
            documentation_url=statement.documentation or "",
            location=statement.location or "",
            wrapper=statement.wrapper or "",
            interface=list(statement.interface))
        registry.advertise(description)
        return WtResult(kind="ack", data=description,
                        text=description.render())

    def _do_joincoalition(self, statement: ast.JoinCoalition,
                          session: Session) -> WtResult:
        self._require_registry().join(statement.database_name,
                                      statement.coalition_name)
        return WtResult(
            kind="ack", data=statement,
            text=f"Database {statement.database_name} joined coalition "
                 f"{statement.coalition_name}")

    def _do_leavecoalition(self, statement: ast.LeaveCoalition,
                           session: Session) -> WtResult:
        self._require_registry().leave(statement.database_name,
                                       statement.coalition_name)
        return WtResult(
            kind="ack", data=statement,
            text=f"Database {statement.database_name} left coalition "
                 f"{statement.coalition_name}")

    def _do_createservicelink(self, statement: ast.CreateServiceLink,
                              session: Session) -> WtResult:
        link = ServiceLink(
            from_kind=EndpointKind.parse(statement.from_kind),
            from_name=statement.from_name,
            to_kind=EndpointKind.parse(statement.to_kind),
            to_name=statement.to_name,
            description=statement.description or "",
            information_type=statement.description or "")
        self._require_registry().add_service_link(link)
        return WtResult(kind="ack", data=link,
                        text=f"Service link {link.label} established "
                             f"({link.kind})")

    def _do_dropservicelink(self, statement: ast.DropServiceLink,
                            session: Session) -> WtResult:
        registry = self._require_registry()
        matches = [link for link in registry.service_links()
                   if link.from_name == statement.from_name
                   and link.to_name == statement.to_name
                   and link.from_kind.value == statement.from_kind
                   and link.to_kind.value == statement.to_kind]
        if not matches:
            raise WebFinditError(
                f"no service link from {statement.from_name!r} "
                f"to {statement.to_name!r}")
        for link in matches:
            registry.remove_service_link(link)
        return WtResult(kind="ack", data=matches,
                        text=f"Service link {matches[0].label} dropped")


def _render_value(value: Any) -> str:
    """Human-readable rendering of a data-level result."""
    if isinstance(value, ResultSet):
        if not value.columns:
            return f"({value.rowcount} row(s) affected)"
        widths = [max(len(str(column)),
                      *(len(str(row[i])) for row in value.rows))
                  if value.rows else len(str(column))
                  for i, column in enumerate(value.columns)]
        header = "  ".join(str(c).ljust(w)
                           for c, w in zip(value.columns, widths))
        separator = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
            for row in value.rows
        ]
        return "\n".join([header, separator, *body])
    if isinstance(value, list) and value and isinstance(value[0], dict):
        return "\n".join(str(row) for row in value)
    return repr(value)
