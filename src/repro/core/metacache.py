"""Co-database metadata caching (hot-path optimisation for discovery).

Discovery is read-dominated: every resolution asks frontier
co-databases the same handful of questions (``find_coalitions``,
``service_links``, ``memberships``, ``known_coalitions``), and the
answers only change when the registry mutates the information space —
a join, a leave, a new service link.  :class:`MetadataCache` keeps
those answers for a bounded TTL and is *explicitly invalidated* by the
registry's mutation hooks (see
:meth:`repro.core.registry.Registry.add_invalidation_listener`), so a
cached entry can be stale for at most the TTL even if a mutation slips
past the hooks.

:class:`CachingCoDatabaseClient` is a drop-in
:class:`~repro.core.discovery.CoDatabaseClient` that consults a shared
cache before crossing the ORB.  Hits are counted per client and
surfaced in :class:`~repro.core.discovery.DiscoveryResult` — the S1/S2
benches read them — and never increment :attr:`calls`, because no
remote metadata call happened.

Coherence rules (documented in ``docs/discovery.md``):

* only the four read-heavy operations above are ever cached — metadata
  *about a specific lead* (``describe_instance``, ``documents_of``, …)
  always goes to the authoritative co-database;
* a registry mutation invalidates every cached entry of every
  co-database it wrote to (the mutation's *audience*), not the whole
  cache;
* entries expire after ``ttl`` seconds regardless, bounding staleness
  for out-of-band mutations (autonomous sources may change without
  telling the registry).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Optional

from repro.core.discovery import CoDatabaseClient

#: The read-heavy co-database operations worth caching.  Everything
#: else (instance descriptions, documents, subclass walks) stays
#: uncached: those answers feed user-facing detail views, not the
#: discovery hot path.
CACHEABLE_OPERATIONS = frozenset({
    "find_coalitions", "service_links", "memberships", "known_coalitions"})

_Key = tuple[str, str, tuple]

#: Epoch tag meaning "no epoch tracking" — entries so tagged match any
#: requested epoch (the pre-replication behaviour).
UNVERSIONED = None


class MetadataCache:
    """A TTL + explicit-invalidation cache over co-database reads.

    Thread-safe: parallel discovery fan-out hits it from many worker
    threads at once.  *clock* is injectable so tests can advance time
    without sleeping.
    """

    def __init__(self, ttl: float = 30.0, max_entries: int = 4096,
                 clock: Callable[[], float] = time.monotonic):
        self.ttl = ttl
        self.max_entries = max_entries
        self._clock = clock
        self._entries: dict[_Key, tuple[float, Any, Optional[int]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0
        #: Entries dropped because their epoch tag no longer matched
        #: the serving replica (failover to a lagging sibling).
        self.epoch_invalidations = 0

    def lookup(self, database: str, operation: str, args: tuple,
               epoch: Optional[int] = None) -> tuple[bool, Any]:
        """``(True, value)`` on a live hit, ``(False, None)`` otherwise.

        With *epoch* given, an entry only hits when it was stored under
        the **same** co-database epoch: after a failover to a replica
        at a different version, every mismatched entry is dropped
        rather than served (replication's stale-read rule).  Entries
        stored without an epoch keep the pre-replication TTL-only
        behaviour.
        """
        key = (database, operation, args)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            expires, value, stored_epoch = entry
            if self._clock() >= expires:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return False, None
            if epoch is not None and stored_epoch is not None \
                    and stored_epoch != epoch:
                del self._entries[key]
                self.epoch_invalidations += 1
                self.misses += 1
                return False, None
            self.hits += 1
            return True, value

    def lookup_fresh(self, database: str, operation: str, args: tuple,
                     floor: Optional[int] = None) -> tuple[bool, Any]:
        """Floor-semantics lookup for the shared cache tier.

        An entry hits only when its epoch tag is **at least** *floor*
        (the owning shard's post-mutation epoch pushed by the last
        invalidation broadcast); older tags are dropped and counted as
        :attr:`epoch_invalidations`.  Entries stored without an epoch
        tag never satisfy a floor — the tier only serves provably-fresh
        data.
        """
        key = (database, operation, args)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            expires, value, stored_epoch = entry
            if self._clock() >= expires:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return False, None
            if floor is not None and (stored_epoch is None
                                      or stored_epoch < floor):
                del self._entries[key]
                self.epoch_invalidations += 1
                self.misses += 1
                return False, None
            self.hits += 1
            return True, value

    def store(self, database: str, operation: str, args: tuple,
              value: Any, epoch: Optional[int] = None) -> None:
        key = (database, operation, args)
        with self._lock:
            while len(self._entries) >= self.max_entries:
                # Evict the oldest insertion (dicts preserve order).
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = (self._clock() + self.ttl, value, epoch)

    def invalidate(self, databases: Iterable[str] | str) -> None:
        """Drop every cached entry for the given co-database owner(s).

        This is the listener signature
        :meth:`~repro.core.registry.Registry.add_invalidation_listener`
        expects, so a cache can be wired to a registry directly.
        """
        if isinstance(databases, str):
            databases = (databases,)
        affected = set(databases)
        with self._lock:
            doomed = [key for key in self._entries if key[0] in affected]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)

    def invalidate_source(self, name: str) -> None:
        """Drop every entry for one co-database owner.

        The failover hook: routing away from a replica (server death,
        re-bound IOR, epoch mismatch) calls this so no entry cached
        from the previous replica survives the topology change.
        """
        self.invalidate((name,))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "invalidations": self.invalidations,
                    "expirations": self.expirations,
                    "epoch_invalidations": self.epoch_invalidations,
                    "entries": len(self._entries)}


class CachingCoDatabaseClient(CoDatabaseClient):
    """A co-database client that answers cacheable reads from a shared
    :class:`MetadataCache` instead of crossing the ORB.

    Per-client hit/miss counters feed
    :class:`~repro.core.discovery.DiscoveryResult`; the shared cache
    accumulates federation-wide totals.  Cache hits do not increment
    :attr:`calls` — that counter is the *remote* metadata-call currency
    of the S1 benches.
    """

    def __init__(self, target: Any, name: str, cache: MetadataCache):
        super().__init__(target, name)
        self._cache = cache
        self.cache_hits = 0
        self.cache_misses = 0

    @classmethod
    def wrapping(cls, client: CoDatabaseClient,
                 cache: MetadataCache) -> "CachingCoDatabaseClient":
        """Wrap an existing client (same target, same name)."""
        return cls(client.target, client.name, cache)

    def _call(self, operation: str, *args: Any) -> Any:
        if operation not in CACHEABLE_OPERATIONS:
            return super()._call(operation, *args)
        hit, value = self._cache.lookup(self.name, operation, args)
        if hit:
            self.cache_hits += 1
            return value
        self.cache_misses += 1
        value = super()._call(operation, *args)
        self._cache.store(self.name, operation, args, value)
        return value


def caching_resolver(resolver: Callable[[str], CoDatabaseClient],
                     cache: Optional[MetadataCache]
                     ) -> Callable[[str], CoDatabaseClient]:
    """Wrap *resolver* so every client it yields consults *cache*.

    With ``cache=None`` the resolver is returned unchanged, letting
    callers keep one code path for both configurations.
    """
    if cache is None:
        return resolver

    def resolve(name: str) -> CoDatabaseClient:
        return CachingCoDatabaseClient.wrapping(resolver(name), cache)

    return resolve
