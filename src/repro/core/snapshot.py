"""Saving and restoring the information-space topology.

The registry's administrative state — source advertisements, coalitions
(with hierarchy and membership), service links, and documentation
artefacts — exports to a plain JSON-able dict and imports back into a
fresh :class:`~repro.core.registry.Registry`, rebuilding every
co-database according to the locality rule.

Native database *contents* are deliberately out of scope: sources are
autonomous, and what WebFINDIT owns is the metadata level.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.model import Ontology, SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import ServiceLink
from repro.errors import WebFinditError

#: Format marker written into every export.
FORMAT = "webfindit-topology/1"


def export_topology(registry: Registry) -> dict[str, Any]:
    """Capture *registry*'s full administrative state."""
    coalitions = []
    for name in registry.coalition_names():
        coalition = registry.coalition(name)
        coalitions.append({
            "name": coalition.name,
            "information_type": coalition.information_type,
            "parent": coalition.parent,
            "doc": coalition.doc,
            "members": list(coalition.members),
        })
    documents = []
    for source_name in registry.source_names():
        codatabase = registry.codatabase(source_name)
        for document in codatabase.documents_of(source_name):
            documents.append({"source": source_name, **document})
    return {
        "format": FORMAT,
        "sources": [registry.source(name).to_wire()
                    for name in registry.source_names()],
        "coalitions": coalitions,
        "service_links": [link.to_wire()
                          for link in registry.service_links()],
        "documents": documents,
    }


def import_topology(payload: dict[str, Any],
                    ontology: Optional[Ontology] = None) -> Registry:
    """Rebuild a registry (and all co-databases) from an export."""
    if payload.get("format") != FORMAT:
        raise WebFinditError(
            f"unsupported topology format {payload.get('format')!r}; "
            f"expected {FORMAT!r}")
    registry = Registry(ontology=ontology)
    for source_payload in payload.get("sources", []):
        registry.add_source(SourceDescription.from_wire(source_payload))

    coalitions = list(payload.get("coalitions", []))
    # Parents must exist before children; resolve in dependency order.
    created: set[str] = set()
    remaining = coalitions
    while remaining:
        progressed = False
        deferred = []
        for coalition in remaining:
            parent = coalition.get("parent")
            if parent and parent not in created:
                deferred.append(coalition)
                continue
            registry.create_coalition(coalition["name"],
                                      coalition.get("information_type", ""),
                                      parent=parent,
                                      doc=coalition.get("doc", ""))
            created.add(coalition["name"])
            progressed = True
        if not progressed:
            names = [c["name"] for c in deferred]
            raise WebFinditError(
                f"cyclic or dangling coalition parents: {names!r}")
        remaining = deferred

    for coalition in coalitions:
        for member in coalition.get("members", []):
            registry.join(member, coalition["name"])
    for link_payload in payload.get("service_links", []):
        registry.add_service_link(ServiceLink.from_wire(link_payload))
    for document in payload.get("documents", []):
        registry.attach_document(document["source"],
                                 document.get("format", ""),
                                 document.get("content", ""),
                                 document.get("url", ""))
    return registry


def save_topology(registry: Registry, path: str) -> None:
    """Write an export to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_topology(registry), handle, indent=2)


def load_topology(path: str,
                  ontology: Optional[Ontology] = None) -> Registry:
    """Read a JSON export from *path* and rebuild the registry."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return import_topology(payload, ontology=ontology)
