"""Saving and restoring the information-space topology.

The registry's administrative state — source advertisements, coalitions
(with hierarchy and membership), service links, and documentation
artefacts — exports to a plain JSON-able dict and imports back into a
fresh :class:`~repro.core.registry.Registry`, rebuilding every
co-database according to the locality rule.

Native database *contents* are deliberately out of scope: sources are
autonomous, and what WebFINDIT owns is the metadata level.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.coalition import Coalition
from repro.core.codatabase import CoDatabase
from repro.core.model import Ontology, SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import ServiceLink
from repro.errors import WebFinditError

#: Format marker written into every export.
FORMAT = "webfindit-topology/1"

#: Format marker for single co-database exports (replica snapshots).
CODATABASE_FORMAT = "webfindit-codatabase/1"


def export_topology(registry: Registry) -> dict[str, Any]:
    """Capture *registry*'s full administrative state."""
    coalitions = []
    for name in registry.coalition_names():
        coalition = registry.coalition(name)
        coalitions.append({
            "name": coalition.name,
            "information_type": coalition.information_type,
            "parent": coalition.parent,
            "doc": coalition.doc,
            "members": list(coalition.members),
        })
    documents = []
    for source_name in registry.source_names():
        codatabase = registry.codatabase(source_name)
        for document in codatabase.documents_of(source_name):
            documents.append({"source": source_name, **document})
    return {
        "format": FORMAT,
        "sources": [registry.source(name).to_wire()
                    for name in registry.source_names()],
        "coalitions": coalitions,
        "service_links": [link.to_wire()
                          for link in registry.service_links()],
        "documents": documents,
        # Per-co-database maintenance-write versions; authoritative on
        # import (the rebuild's own write count is an implementation
        # detail, the recorded epoch is the federation's truth).
        "epochs": {name: registry.codatabase(name).epoch
                   for name in registry.source_names()},
    }


def import_topology(payload: dict[str, Any],
                    ontology: Optional[Ontology] = None) -> Registry:
    """Rebuild a registry (and all co-databases) from an export."""
    if payload.get("format") != FORMAT:
        raise WebFinditError(
            f"unsupported topology format {payload.get('format')!r}; "
            f"expected {FORMAT!r}")
    registry = Registry(ontology=ontology)
    for source_payload in payload.get("sources", []):
        registry.add_source(SourceDescription.from_wire(source_payload))

    coalitions = list(payload.get("coalitions", []))
    # Parents must exist before children; resolve in dependency order.
    created: set[str] = set()
    remaining = coalitions
    while remaining:
        progressed = False
        deferred = []
        for coalition in remaining:
            parent = coalition.get("parent")
            if parent and parent not in created:
                deferred.append(coalition)
                continue
            registry.create_coalition(coalition["name"],
                                      coalition.get("information_type", ""),
                                      parent=parent,
                                      doc=coalition.get("doc", ""))
            created.add(coalition["name"])
            progressed = True
        if not progressed:
            names = [c["name"] for c in deferred]
            raise WebFinditError(
                f"cyclic or dangling coalition parents: {names!r}")
        remaining = deferred

    for coalition in coalitions:
        for member in coalition.get("members", []):
            registry.join(member, coalition["name"])
    for link_payload in payload.get("service_links", []):
        registry.add_service_link(ServiceLink.from_wire(link_payload))
    for document in payload.get("documents", []):
        registry.attach_document(document["source"],
                                 document.get("format", ""),
                                 document.get("content", ""),
                                 document.get("url", ""))
    for name, epoch in payload.get("epochs", {}).items():
        registry.codatabase(name).epoch = int(epoch)
    return registry


# ---------------------------------------------------------------------------
# Single co-database exports (replica snapshots)
# ---------------------------------------------------------------------------

def export_codatabase(codatabase) -> dict[str, Any]:
    """Capture one co-database's full state, epoch included.

    This is the replica-snapshot format: a killed co-database server
    restores from the latest of these plus its journal tail, and
    anti-entropy ships one of these from a live peer when the tail is
    not enough (see :mod:`repro.core.replication`).
    """
    coalitions = [coalition.to_wire()
                  for coalition in codatabase.known_coalitions()]
    members: dict[str, list[dict[str, Any]]] = {}
    for coalition in coalitions:
        members[coalition["name"]] = [
            description.to_wire()
            for description in codatabase.instances_of(coalition["name"])]
    description = codatabase.local_description
    document_owners = {codatabase.owner_name}
    document_owners.update(
        member["name"] for names in members.values() for member in names)
    documents = []
    for owner in sorted(document_owners):
        for document in codatabase.documents_of(owner):
            documents.append({"source": owner, **document})
    return {
        "format": CODATABASE_FORMAT,
        "owner": codatabase.owner_name,
        "epoch": codatabase.epoch,
        "description": description.to_wire() if description else None,
        "memberships": list(codatabase.memberships),
        "coalitions": coalitions,
        "members": members,
        "service_links": [link.to_wire()
                          for link in codatabase.service_links()],
        "documents": documents,
    }


def import_codatabase(payload: dict[str, Any],
                      ontology: Optional[Ontology] = None):
    """Rebuild one co-database from an :func:`export_codatabase` dump."""
    if payload.get("format") != CODATABASE_FORMAT:
        raise WebFinditError(
            f"unsupported co-database format {payload.get('format')!r}; "
            f"expected {CODATABASE_FORMAT!r}")
    codatabase = CoDatabase(payload["owner"], ontology=ontology)
    if payload.get("description"):
        codatabase.advertise(
            SourceDescription.from_wire(payload["description"]))
    # Parents before children, as during live registration.
    coalitions = [Coalition.from_wire(wire)
                  for wire in payload.get("coalitions", [])]
    known = {coalition.name for coalition in coalitions}
    registered: set[str] = set()
    remaining = coalitions
    while remaining:
        deferred = []
        for coalition in remaining:
            if coalition.parent and coalition.parent in known \
                    and coalition.parent not in registered:
                deferred.append(coalition)
                continue
            codatabase.register_coalition(coalition)
            registered.add(coalition.name)
        if len(deferred) == len(remaining):
            names = [coalition.name for coalition in deferred]
            raise WebFinditError(
                f"cyclic coalition parents in snapshot: {names!r}")
        remaining = deferred
    for coalition_name, descriptions in payload.get("members", {}).items():
        for wire in descriptions:
            codatabase.add_member(coalition_name,
                                  SourceDescription.from_wire(wire))
    for membership in payload.get("memberships", []):
        codatabase.record_membership(membership)
    for wire in payload.get("service_links", []):
        codatabase.add_service_link(ServiceLink.from_wire(wire))
    for document in payload.get("documents", []):
        codatabase.attach_document(document["source"],
                                   document.get("format", ""),
                                   document.get("content", ""),
                                   document.get("url", ""))
    # The recorded epoch is authoritative — the rebuild's own write
    # count reflects import mechanics, not federation history.
    codatabase.epoch = int(payload.get("epoch", 0))
    return codatabase


def save_topology(registry: Registry, path: str) -> None:
    """Write an export to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_topology(registry), handle, indent=2)


def load_topology(path: str,
                  ontology: Optional[Ontology] = None) -> Registry:
    """Read a JSON export from *path* and rebuild the registry."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return import_topology(payload, ontology=ontology)
