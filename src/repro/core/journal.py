"""Write-ahead journaling of co-database maintenance operations.

Every maintenance write the registry applies to a co-database replica
is first appended to that replica's journal as a :class:`JournalEntry`
— the operation name, its wire-encoded arguments, and the monotonic
epoch the write produces.  A replica that crashes therefore owns, on
disk (or in memory for ephemeral deployments), exactly the prefix of
writes it had applied; :func:`replay_entries` rebuilds the co-database
from a snapshot plus that prefix, and the replica's epoch tells the
replication layer whether it still needs anti-entropy catch-up from a
live peer (see :mod:`repro.core.replication`).

The journal format is JSON-lines: one entry per line, append-only,
fsync-free (the reproduction models crash recovery semantics, not disk
guarantees).  Snapshots reuse the export format of
:mod:`repro.core.snapshot` (``webfindit-codatabase/1``) and truncate
the journal they cover.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.coalition import Coalition
from repro.core.model import SourceDescription
from repro.core.service_link import ServiceLink
from repro.errors import WebFinditError

#: Maintenance operations a journal may carry — exactly the mutator
#: surface of :class:`~repro.core.codatabase.CoDatabase`.
JOURNALED_OPERATIONS = frozenset({
    "advertise", "register_coalition", "record_membership",
    "drop_membership", "add_member", "remove_member", "forget_coalition",
    "add_service_link", "remove_service_link", "attach_document",
})


@dataclass(frozen=True)
class JournalEntry:
    """One logged maintenance write, wire-encoded and epoch-stamped."""

    epoch: int
    operation: str
    arguments: tuple

    def to_wire(self) -> dict[str, Any]:
        return {"epoch": self.epoch, "op": self.operation,
                "args": list(self.arguments)}

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "JournalEntry":
        return cls(epoch=int(payload["epoch"]), operation=payload["op"],
                   arguments=tuple(payload.get("args", ())))


def encode_operation(operation: str, args: tuple) -> tuple:
    """Wire-encode a mutator call's arguments for journaling."""
    encoded = []
    for argument in args:
        if isinstance(argument, (SourceDescription, Coalition, ServiceLink)):
            encoded.append(argument.to_wire())
        else:
            encoded.append(argument)
    return tuple(encoded)


def apply_entry(codatabase, entry: JournalEntry) -> None:
    """Re-apply one journaled write to *codatabase*.

    Replay is idempotent at the epoch level: an entry at or below the
    co-database's current epoch has already been applied and is
    skipped, so overlapping snapshot + journal sources are safe.
    """
    if entry.operation not in JOURNALED_OPERATIONS:
        raise WebFinditError(
            f"journal entry for unknown operation {entry.operation!r}")
    if entry.epoch <= codatabase.epoch:
        return
    args = entry.arguments
    if entry.operation == "advertise":
        codatabase.advertise(SourceDescription.from_wire(args[0]))
    elif entry.operation == "register_coalition":
        codatabase.register_coalition(Coalition.from_wire(args[0]))
    elif entry.operation == "add_member":
        codatabase.add_member(args[0], SourceDescription.from_wire(args[1]))
    elif entry.operation == "add_service_link":
        codatabase.add_service_link(ServiceLink.from_wire(args[0]))
    elif entry.operation == "remove_service_link":
        codatabase.remove_service_link(ServiceLink.from_wire(args[0]))
    else:  # plain-string operations
        getattr(codatabase, entry.operation)(*args)


def replay_entries(codatabase, entries) -> int:
    """Apply *entries* in order; returns how many actually applied."""
    applied = 0
    for entry in entries:
        before = codatabase.epoch
        apply_entry(codatabase, entry)
        if codatabase.epoch != before:
            applied += 1
    return applied


class ReplicaJournal:
    """The write-ahead log of one co-database replica.

    In-memory always; file-backed when *path* is given (JSON lines,
    appended before the write is applied — the WAL ordering).  A
    snapshot covers every entry up to its epoch, so taking one
    truncates the journal; :attr:`snapshot` holds the latest snapshot
    payload (and its file, when durable).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: list[JournalEntry] = []
        self._lock = threading.Lock()
        #: Latest snapshot payload (``webfindit-codatabase/1``), if any.
        self.snapshot: Optional[dict[str, Any]] = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._load_files()

    # ----------------------------------------------------------- durability --

    @property
    def snapshot_path(self) -> Optional[str]:
        if self.path is None:
            return None
        return os.path.join(os.path.dirname(self.path), "snapshot.json")

    def _load_files(self) -> None:
        snapshot_path = self.snapshot_path
        if snapshot_path and os.path.exists(snapshot_path):
            with open(snapshot_path, encoding="utf-8") as handle:
                self.snapshot = json.load(handle)
        if self.path and os.path.exists(self.path):
            with open(self.path, encoding="utf-8") as handle:
                self._entries = [JournalEntry.from_wire(json.loads(line))
                                 for line in handle if line.strip()]

    # ------------------------------------------------------------- the log --

    def append(self, entry: JournalEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry.to_wire()) + "\n")

    def entries(self) -> list[JournalEntry]:
        with self._lock:
            return list(self._entries)

    def entries_after(self, epoch: int) -> list[JournalEntry]:
        with self._lock:
            return [entry for entry in self._entries if entry.epoch > epoch]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def last_epoch(self) -> int:
        """Highest epoch this journal (snapshot included) accounts for."""
        with self._lock:
            if self._entries:
                return self._entries[-1].epoch
            if self.snapshot is not None:
                return int(self.snapshot.get("epoch", 0))
            return 0

    def discard(self, epoch: int) -> None:
        """Drop entries at exactly *epoch* — the compensation when a
        journaled write then fails application-level validation (the
        replication layer rolls the epoch back with it)."""
        with self._lock:
            self._entries = [entry for entry in self._entries
                             if entry.epoch != epoch]
            if self.path is not None:
                with open(self.path, "w", encoding="utf-8") as handle:
                    for entry in self._entries:
                        handle.write(json.dumps(entry.to_wire()) + "\n")

    # ----------------------------------------------------------- snapshots --

    def install_snapshot(self, payload: dict[str, Any]) -> None:
        """Record *payload* as the recovery base and drop covered
        entries (the snapshot subsumes every write up to its epoch)."""
        epoch = int(payload.get("epoch", 0))
        with self._lock:
            self.snapshot = payload
            self._entries = [entry for entry in self._entries
                             if entry.epoch > epoch]
            if self.path is not None:
                with open(self.snapshot_path, "w",
                          encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=2)
                with open(self.path, "w", encoding="utf-8") as handle:
                    for entry in self._entries:
                        handle.write(json.dumps(entry.to_wire()) + "\n")
