"""Write-ahead journaling of co-database maintenance operations.

Every maintenance write the registry applies to a co-database replica
is first appended to that replica's journal as a :class:`JournalEntry`
— the operation name, its wire-encoded arguments, the monotonic epoch
the write produces, and (under quorum replication) the **fence** of the
primary lease that issued it.  A replica that crashes therefore owns,
on disk (or in memory for ephemeral deployments), exactly the prefix of
writes it had applied; :func:`replay_entries` rebuilds the co-database
from a snapshot plus that prefix, and the replica's epoch tells the
replication layer whether it still needs anti-entropy catch-up from a
live peer (see :mod:`repro.core.replication`).

Two on-disk formats are supported:

* **v2** (default for new files) — a binary log: an 8-byte magic
  header (``WFJRNL2\\n``) followed by length-prefixed records::

      [u32 length][u32 CRC32(payload)][payload: compact JSON, UTF-8]

  Replay verifies every record's length and checksum and halts at the
  first record that fails either — a **torn write** (crash mid-append)
  — recovering exactly the longest valid prefix and truncating the
  file back to it so later appends start from a clean tail.
* **jsonl** (legacy) — one JSON object per line, as written by earlier
  releases.  Replay is equally torn-tolerant: a line that no longer
  parses halts the replay at that record with a counted warning
  instead of raising a raw ``json.JSONDecodeError``.

Durability is governed by the ``sync=`` knob: ``"never"`` flushes to
the OS only (the pre-quorum behaviour), ``"always"`` fsyncs every
append, and ``"batch"`` implements **group commit** — appends are
fsynced once per *group_size* records (or on :meth:`sync_now`),
amortising the disk barrier across a burst of writes.

Snapshots reuse the export format of :mod:`repro.core.snapshot`
(``webfindit-codatabase/1``) and truncate the journal they cover.  All
rewrites (snapshot installs, compensating :meth:`discard`) go through a
temp file + ``os.replace`` so a crash mid-rewrite can never destroy the
log: either the old file or the new one survives, both complete.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.coalition import Coalition
from repro.core.model import SourceDescription
from repro.core.service_link import ServiceLink
from repro.errors import WebFinditError

log = logging.getLogger("repro.journal")

#: Maintenance operations a journal may carry — exactly the mutator
#: surface of :class:`~repro.core.codatabase.CoDatabase`.
JOURNALED_OPERATIONS = frozenset({
    "advertise", "register_coalition", "record_membership",
    "drop_membership", "add_member", "remove_member", "forget_coalition",
    "add_service_link", "remove_service_link", "attach_document",
})

#: File magic of the checksummed v2 journal format.
JOURNAL_MAGIC = b"WFJRNL2\n"

#: ``[u32 payload length][u32 CRC32]`` — big-endian, 8 bytes.
_RECORD_HEADER = struct.Struct(">II")

#: Journal formats :class:`ReplicaJournal` can write.
JOURNAL_FORMATS = ("v2", "jsonl")

#: Durability policies for file-backed journals.
SYNC_POLICIES = ("never", "batch", "always")


@dataclass(frozen=True)
class JournalEntry:
    """One logged maintenance write, wire-encoded and epoch-stamped.

    *fence* is the fencing epoch of the primary lease that issued the
    write (0 for non-quorum deployments): replicas refuse to journal an
    entry whose fence is older than the newest lease they promised.
    """

    epoch: int
    operation: str
    arguments: tuple
    fence: int = 0

    def to_wire(self) -> dict[str, Any]:
        return {"epoch": self.epoch, "op": self.operation,
                "args": list(self.arguments), "fence": self.fence}

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "JournalEntry":
        return cls(epoch=int(payload["epoch"]), operation=payload["op"],
                   arguments=tuple(payload.get("args", ())),
                   fence=int(payload.get("fence", 0)))


def encode_operation(operation: str, args: tuple) -> tuple:
    """Wire-encode a mutator call's arguments for journaling."""
    encoded = []
    for argument in args:
        if isinstance(argument, (SourceDescription, Coalition, ServiceLink)):
            encoded.append(argument.to_wire())
        else:
            encoded.append(argument)
    return tuple(encoded)


def apply_entry(codatabase, entry: JournalEntry) -> None:
    """Re-apply one journaled write to *codatabase*.

    Replay is idempotent at the epoch level: an entry at or below the
    co-database's current epoch has already been applied and is
    skipped, so overlapping snapshot + journal sources are safe.
    """
    if entry.operation not in JOURNALED_OPERATIONS:
        raise WebFinditError(
            f"journal entry for unknown operation {entry.operation!r}")
    if entry.epoch <= codatabase.epoch:
        return
    args = entry.arguments
    if entry.operation == "advertise":
        codatabase.advertise(SourceDescription.from_wire(args[0]))
    elif entry.operation == "register_coalition":
        codatabase.register_coalition(Coalition.from_wire(args[0]))
    elif entry.operation == "add_member":
        codatabase.add_member(args[0], SourceDescription.from_wire(args[1]))
    elif entry.operation == "add_service_link":
        codatabase.add_service_link(ServiceLink.from_wire(args[0]))
    elif entry.operation == "remove_service_link":
        codatabase.remove_service_link(ServiceLink.from_wire(args[0]))
    else:  # plain-string operations
        getattr(codatabase, entry.operation)(*args)


def replay_entries(codatabase, entries) -> int:
    """Apply *entries* in order; returns how many actually applied."""
    applied = 0
    for entry in entries:
        before = codatabase.epoch
        apply_entry(codatabase, entry)
        if codatabase.epoch != before:
            applied += 1
    return applied


def encode_record(entry: JournalEntry) -> bytes:
    """One v2 record: length + CRC32 header, compact-JSON payload."""
    payload = json.dumps(entry.to_wire(),
                         separators=(",", ":")).encode("utf-8")
    return _RECORD_HEADER.pack(len(payload),
                               zlib.crc32(payload) & 0xFFFFFFFF) + payload


def decode_records(data: bytes) -> tuple[list[JournalEntry], int, bool]:
    """Decode a v2 journal body (magic already consumed).

    Returns ``(entries, valid_bytes, torn)``: the longest valid record
    prefix, how many bytes of *data* it covers, and whether a torn or
    corrupt record was detected after it.
    """
    entries: list[JournalEntry] = []
    position = 0
    while True:
        if position == len(data):
            return entries, position, False
        if position + _RECORD_HEADER.size > len(data):
            return entries, position, True  # torn header
        length, crc = _RECORD_HEADER.unpack_from(data, position)
        body_start = position + _RECORD_HEADER.size
        if body_start + length > len(data):
            return entries, position, True  # torn payload
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return entries, position, True  # corrupt payload
        try:
            entries.append(JournalEntry.from_wire(json.loads(payload)))
        except (ValueError, KeyError, TypeError):
            return entries, position, True  # checksummed garbage
        position = body_start + length


def decode_jsonl(data: bytes) -> tuple[list[JournalEntry], int, bool]:
    """Decode a legacy JSON-lines journal, torn-tolerantly.

    Same contract as :func:`decode_records`.  A record whose trailing
    newline was lost to the crash but whose JSON is complete still
    counts as valid (its bytes are part of the recovered prefix).
    """
    entries: list[JournalEntry] = []
    position = 0
    for raw_line in data.split(b"\n"):
        line = raw_line.strip()
        if line:
            try:
                entries.append(JournalEntry.from_wire(
                    json.loads(line.decode("utf-8"))))
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                return entries, position, True  # torn / corrupt record
        position += len(raw_line) + 1
        if position > len(data):  # last line had no trailing newline
            position = len(data)
    return entries, position, False


class ReplicaJournal:
    """The write-ahead log of one co-database replica.

    In-memory always; file-backed when *path* is given (appended before
    the write is applied — the WAL ordering).  A snapshot covers every
    entry up to its epoch, so taking one truncates the journal;
    :attr:`snapshot` holds the latest snapshot payload (and its file,
    when durable).

    *fmt* selects the on-disk format for **new** files ("v2" binary
    checksummed records, or legacy "jsonl"); an existing file keeps the
    format it was written in, sniffed from its first bytes.  *sync*
    and *group_size* implement the durability policy described in the
    module docstring.  :attr:`torn_records` counts crash-truncated
    tails detected (and repaired) on load; :attr:`fsyncs` counts disk
    barriers actually issued — the currency of the group-commit bench.
    """

    def __init__(self, path: Optional[str] = None, fmt: str = "v2",
                 sync: str = "never", group_size: int = 8):
        if fmt not in JOURNAL_FORMATS:
            raise WebFinditError(f"unknown journal format {fmt!r}")
        if sync not in SYNC_POLICIES:
            raise WebFinditError(f"unknown journal sync policy {sync!r}")
        self.path = path
        self.fmt = fmt
        self.sync = sync
        self.group_size = max(1, group_size)
        self._entries: list[JournalEntry] = []
        self._lock = threading.RLock()
        self._handle = None
        self._pending_sync = 0
        #: Latest snapshot payload (``webfindit-codatabase/1``), if any.
        self.snapshot: Optional[dict[str, Any]] = None
        #: Torn-write events detected on load (the tail was truncated
        #: back to the longest valid prefix).
        self.torn_records = 0
        #: Disk barriers issued (``os.fsync``), for group-commit tests.
        self.fsyncs = 0
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._load_files()

    # ----------------------------------------------------------- durability --

    @property
    def snapshot_path(self) -> Optional[str]:
        if self.path is None:
            return None
        return os.path.join(os.path.dirname(self.path), "snapshot.json")

    def _load_files(self) -> None:
        snapshot_path = self.snapshot_path
        if snapshot_path and os.path.exists(snapshot_path):
            with open(snapshot_path, encoding="utf-8") as handle:
                self.snapshot = json.load(handle)
        if not (self.path and os.path.exists(self.path)):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data:
            return
        if data.startswith(JOURNAL_MAGIC):
            self.fmt = "v2"
            body = data[len(JOURNAL_MAGIC):]
            self._entries, valid, torn = decode_records(body)
            valid += len(JOURNAL_MAGIC)
        elif len(data) < len(JOURNAL_MAGIC) \
                and JOURNAL_MAGIC.startswith(data):
            # Crash while writing the magic itself: an empty journal.
            self._entries, valid, torn = [], 0, True
            self.fmt = "v2"
        else:
            self.fmt = "jsonl"
            self._entries, valid, torn = decode_jsonl(data)
            if not torn and not data.endswith(b"\n"):
                # The final record is complete but its newline was lost
                # (crash between the bytes and the separator): restore
                # it so the next append starts its own line.
                with open(self.path, "ab") as handle:
                    handle.write(b"\n")
        if torn:
            self.torn_records += 1
            log.warning(
                "journal %s: torn record after %d valid entr%s "
                "(%d trailing byte(s) dropped); replay halted at the "
                "longest valid prefix", self.path, len(self._entries),
                "y" if len(self._entries) == 1 else "ies",
                len(data) - valid)
            # Repair the tail so later appends start from a clean
            # record boundary instead of extending the torn bytes.
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())
                self.fsyncs += 1

    def _open_handle(self):
        if self._handle is None:
            fresh = not os.path.exists(self.path) \
                or os.path.getsize(self.path) == 0
            self._handle = open(self.path, "ab")
            if fresh and self.fmt == "v2":
                self._handle.write(JOURNAL_MAGIC)
        return self._handle

    def _write_record(self, entry: JournalEntry) -> None:
        handle = self._open_handle()
        if self.fmt == "v2":
            handle.write(encode_record(entry))
        else:
            handle.write((json.dumps(entry.to_wire()) + "\n")
                         .encode("utf-8"))
        # Data always reaches the OS (a crashed *process* loses
        # nothing); the fsync policy decides when it reaches the disk.
        handle.flush()
        if self.sync == "always":
            os.fsync(handle.fileno())
            self.fsyncs += 1
        elif self.sync == "batch":
            self._pending_sync += 1
            if self._pending_sync >= self.group_size:
                os.fsync(handle.fileno())
                self.fsyncs += 1
                self._pending_sync = 0

    def sync_now(self) -> None:
        """Force the group-commit barrier: fsync any pending appends."""
        with self._lock:
            if self._handle is not None and self._pending_sync:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self.fsyncs += 1
                self._pending_sync = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self.sync_now()
                self._handle.close()
                self._handle = None

    def _rewrite(self) -> None:
        """Crash-atomically replace the journal file with the current
        in-memory entries (temp file + ``os.replace``): a crash
        mid-rewrite leaves either the complete old log or the complete
        new one, never a half-written file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._pending_sync = 0
        temp_path = self.path + ".tmp"
        with open(temp_path, "wb") as handle:
            if self.fmt == "v2":
                handle.write(JOURNAL_MAGIC)
                for entry in self._entries:
                    handle.write(encode_record(entry))
            else:
                for entry in self._entries:
                    handle.write((json.dumps(entry.to_wire()) + "\n")
                                 .encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
            self.fsyncs += 1
        os.replace(temp_path, self.path)

    # ------------------------------------------------------------- the log --

    def append(self, entry: JournalEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            if self.path is not None:
                self._write_record(entry)

    def entries(self) -> list[JournalEntry]:
        with self._lock:
            return list(self._entries)

    def entries_after(self, epoch: int) -> list[JournalEntry]:
        with self._lock:
            return [entry for entry in self._entries if entry.epoch > epoch]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def last_epoch(self) -> int:
        """Highest epoch this journal (snapshot included) accounts for."""
        with self._lock:
            if self._entries:
                return self._entries[-1].epoch
            if self.snapshot is not None:
                return int(self.snapshot.get("epoch", 0))
            return 0

    @property
    def last_fence(self) -> int:
        """Highest fencing epoch recorded anywhere in this journal."""
        with self._lock:
            return max((entry.fence for entry in self._entries), default=0)

    def discard(self, epoch: int) -> None:
        """Drop entries at exactly *epoch* — the compensation when a
        journaled write then fails validation or loses its quorum (the
        replication layer rolls the version back with it)."""
        with self._lock:
            self._entries = [entry for entry in self._entries
                             if entry.epoch != epoch]
            if self.path is not None:
                self._rewrite()

    # ----------------------------------------------------------- snapshots --

    def install_snapshot(self, payload: dict[str, Any]) -> None:
        """Record *payload* as the recovery base and drop covered
        entries (the snapshot subsumes every write up to its epoch)."""
        epoch = int(payload.get("epoch", 0))
        with self._lock:
            self.snapshot = payload
            self._entries = [entry for entry in self._entries
                             if entry.epoch > epoch]
            if self.path is not None:
                temp_path = self.snapshot_path + ".tmp"
                with open(temp_path, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=2)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, self.snapshot_path)
                self._rewrite()
