"""Resilience policies: deadlines, retries, and circuit breakers.

WebFINDIT federates *hundreds* of autonomous databases whose
co-databases can vanish, stall, or misbehave at any time (§2.1: sources
join and leave at their own discretion).  This module is the one place
that decides how the system behaves when they do:

* **Deadlines** — a discovery query gets one *total* time budget that
  propagates through the whole BFS (see :mod:`repro.deadline`, whose
  primitives are re-exported here): every co-database consultation and
  every GIOP round-trip bounds itself by the remaining budget, so one
  stalled site cannot eat the query.
* **Retries** — :class:`RetryPolicy` retries transient transport
  failures with exponential backoff and *decorrelated jitter* (each
  delay is drawn uniformly from ``[base, previous * multiplier]``,
  which spreads synchronized retry storms better than plain
  exponential).  Retries apply to **idempotent metadata reads only**;
  a failure whose first copy may have been applied server-side is
  never blindly resent.
* **Circuit breakers** — :class:`CircuitBreaker` tracks per-endpoint
  health through the classic closed / open / half-open state machine.
  The shared :class:`HealthBoard` lives on the
  :class:`~repro.core.registry.Registry`, so every discovery engine in
  the federation skips known-dead co-databases instead of burning its
  deadline rediscovering them; ``system.metrics()`` surfaces the
  board's snapshot.

:class:`ResiliencePolicy` bundles the three and is what
:class:`~repro.core.discovery.DiscoveryEngine`,
:class:`~repro.core.query_processor.QueryProcessor`, and the system
facade share.  ``docs/resilience.md`` documents the behaviour and the
fault-injection DSL used to test it.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Callable, Optional, Union

from repro.deadline import (BACKGROUND, INTERACTIVE, CallPolicy, Deadline,
                            RetryBudget, call_policy, current_policy)
from repro.errors import (CircuitOpen, CommFailure, DeadlineExceeded,
                          ServerBusy)

__all__ = [
    "Deadline", "CallPolicy", "call_policy", "current_policy",
    "RetryPolicy", "RetryBudget", "HedgePolicy", "CircuitBreaker",
    "HealthBoard", "ResiliencePolicy", "CLOSED", "OPEN", "HALF_OPEN",
    "FAILURE_ERRORS", "as_deadline", "INTERACTIVE", "BACKGROUND",
    "ServerBusy",
]

#: Error classes that count as *endpoint* failures: the site is dead,
#: unreachable, or too slow.  Application-level errors (an unknown
#: coalition, a malformed query) mean the endpoint answered and do not
#: trip breakers or trigger retries.
FAILURE_ERRORS = (CommFailure, DeadlineExceeded)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def as_deadline(budget: Union[None, float, Deadline]) -> Optional[Deadline]:
    """Normalise a seconds-or-Deadline argument."""
    if budget is None or isinstance(budget, Deadline):
        return budget
    return Deadline.after(float(budget))


class RetryPolicy:
    """Bounded retries with exponential backoff + decorrelated jitter.

    ``call`` retries only :data:`retryable` failures, only when the
    caller vouches the operation is *idempotent*, and never past the
    deadline: a retry whose backoff sleep would not leave budget for
    the attempt itself is abandoned and the last failure re-raised.
    *seed* fixes the jitter sequence so chaos tests are reproducible;
    *sleep* is injectable so unit tests need not wait.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 3.0,
                 seed: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 retryable: tuple = (CommFailure,),
                 budget: Optional[RetryBudget] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.retryable = retryable
        #: Token-bucket cap on the retry:first-attempt ratio.  None
        #: keeps the pre-existing behaviour (attempts alone bound
        #: retries).  With a budget, a retry additionally needs a
        #: token — under a BUSY brownout the whole client population's
        #: retry traffic stays a bounded fraction of offered load.
        self.budget = budget
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Attempts beyond the first, across all calls (benches read it).
        self.retries = 0
        #: Retries refused because the budget was exhausted.
        self.budget_denials = 0

    def next_delay(self, previous: Optional[float] = None) -> float:
        """Decorrelated jitter: uniform over [base, previous * mult]."""
        ceiling = max(self.base_delay,
                      (previous if previous is not None else self.base_delay)
                      * self.multiplier)
        with self._lock:
            drawn = self._rng.uniform(self.base_delay, ceiling)
        return min(self.max_delay, drawn)

    def call(self, fn: Callable[[], object], *, idempotent: bool = False,
             deadline: Optional[Deadline] = None,
             key: Optional[str] = None) -> object:
        """Run *fn*, retrying transient failures when allowed.

        *key* names the endpoint for retry-budget accounting (one
        bucket per key; None shares the global bucket).
        """
        delay: Optional[float] = None
        if self.budget is not None:
            self.budget.note_attempt(key)
        for attempt in range(1, self.max_attempts + 1):
            try:
                if attempt == 1:
                    return fn()
                # Mark retries in the call policy so the transport
                # does not treat the resend as a fresh first attempt
                # and refill the very retry budget being drawn down.
                with call_policy(attempt=attempt):
                    return fn()
            except DeadlineExceeded:
                raise  # the budget is gone; retrying cannot help
            except self.retryable:
                if not idempotent or attempt >= self.max_attempts:
                    raise
                delay = self.next_delay(delay)
                if deadline is not None and deadline.remaining() <= delay:
                    raise  # no budget left for backoff plus an attempt
                if self.budget is not None \
                        and not self.budget.try_acquire(key):
                    with self._lock:
                        self.budget_denials += 1
                    raise  # the retry budget is spent: fail, don't storm
                with self._lock:
                    self.retries += 1
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


class HedgePolicy:
    """Hedged requests for idempotent reads: fire a second copy at a
    different replica when the first is slower than the recent p99.

    The hedge delay adapts per key from a rolling window of observed
    latencies: hedges fire only for genuinely tail-slow attempts
    (~1% of traffic), so the added load is bounded by construction —
    the classic tail-at-scale trade.  Until *min_samples* observations
    exist the fixed *default_delay* applies.  Thread-safe.
    """

    def __init__(self, default_delay: float = 0.05,
                 percentile: float = 0.99, window: int = 256,
                 min_samples: int = 20):
        self.default_delay = default_delay
        self.percentile = percentile
        self.min_samples = min_samples
        self._window = window
        self._samples: dict[str, deque[float]] = {}
        self._lock = threading.Lock()
        self.hedges_fired = 0
        self.hedges_won = 0
        self.hedges_lost = 0

    def observe(self, key: str, seconds: float) -> None:
        """Record one attempt's latency for *key*."""
        with self._lock:
            samples = self._samples.get(key)
            if samples is None:
                samples = self._samples[key] = deque(maxlen=self._window)
            samples.append(seconds)

    def hedge_delay(self, key: str) -> float:
        """How long to wait on the primary before hedging."""
        with self._lock:
            samples = self._samples.get(key)
            if samples is None or len(samples) < self.min_samples:
                return self.default_delay
            ordered = sorted(samples)
        index = min(len(ordered) - 1,
                    int(self.percentile * len(ordered)))
        return ordered[index]

    def record_hedge(self, won: bool) -> None:
        with self._lock:
            self.hedges_fired += 1
            if won:
                self.hedges_won += 1
            else:
                self.hedges_lost += 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"hedges_fired": self.hedges_fired,
                    "hedges_won": self.hedges_won,
                    "hedges_lost": self.hedges_lost}


class CircuitBreaker:
    """Closed / open / half-open health tracking for one endpoint.

    *failure_threshold* consecutive failures open the circuit; after
    *reset_timeout* seconds the next :meth:`allow` admits up to
    *half_open_trials* probe calls, whose outcome closes or re-opens
    it.  Thread-safe; *clock* is injectable for tests.
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0, half_open_trials: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_trials = half_open_trials
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trials_in_flight = 0
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._trials_in_flight = 0

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts a probe slot when
        half-open.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and \
                    self._trials_in_flight < self.half_open_trials:
                self._trials_in_flight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._trials_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            tripping = (self._state == HALF_OPEN
                        or (self._state == CLOSED
                            and self._consecutive_failures
                            >= self.failure_threshold))
            if tripping:
                self._state = OPEN
                self._opened_at = self._clock()
                self._trials_in_flight = 0
                self.trips += 1


class HealthBoard:
    """Per-endpoint circuit breakers, shared federation-wide.

    Keyed by database name at the discovery layer (one co-database per
    source).  The board lives on the registry so health memory persists
    across discovery engines, query processors, and sessions; breakers
    are created lazily with the board's default parameters.
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0, half_open_trials: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_trials = half_open_trials
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    half_open_trials=self.half_open_trials,
                    clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def allow(self, key: str) -> bool:
        return self.breaker(key).allow()

    def record(self, key: str, ok: bool) -> None:
        breaker = self.breaker(key)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def state(self, key: str) -> str:
        with self._lock:
            breaker = self._breakers.get(key)
        return breaker.state if breaker is not None else CLOSED

    def forget(self, key: str) -> None:
        """Drop health memory for a removed source."""
        with self._lock:
            self._breakers.pop(key, None)

    def reset(self) -> None:
        with self._lock:
            self._breakers.clear()

    def open_endpoints(self) -> list[str]:
        with self._lock:
            breakers = list(self._breakers.items())
        return [key for key, breaker in breakers if breaker.state == OPEN]

    def snapshot(self) -> dict[str, dict]:
        """Health state per endpoint (``system.metrics()`` embeds it)."""
        with self._lock:
            breakers = list(self._breakers.items())
        return {
            key: {
                "state": breaker.state,
                "failures": breaker.failures,
                "successes": breaker.successes,
                "trips": breaker.trips,
                "rejections": breaker.rejections,
            }
            for key, breaker in breakers
        }


class ResiliencePolicy:
    """The bundle the discovery stack shares: retry + health + budget.

    *default_deadline* (seconds) applies to any discovery that does not
    bring its own; None leaves queries unbounded, matching the paper's
    interactive prototype.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None,
                 health: Optional[HealthBoard] = None,
                 default_deadline: Optional[float] = None,
                 hedge: Optional[HedgePolicy] = None):
        self.retry = retry if retry is not None else RetryPolicy()
        self.health = health if health is not None else HealthBoard()
        self.default_deadline = default_deadline
        #: Hedged requests for idempotent replica reads; None (the
        #: default) disables hedging.  The failover client consults it.
        self.hedge = hedge

    def deadline_for(self, budget: Union[None, float, Deadline]
                     ) -> Optional[Deadline]:
        """An explicit budget, else the policy default, else unbounded."""
        explicit = as_deadline(budget)
        if explicit is not None:
            return explicit
        if self.default_deadline is not None:
            return Deadline.after(self.default_deadline)
        return None

    def call(self, fn: Callable[[], object], *, key: Optional[str] = None,
             idempotent: bool = False,
             deadline: Union[None, float, Deadline] = None,
             traffic_class: Optional[str] = None) -> object:
        """Guarded standalone call: breaker check, deadline context,
        retries, and health recording in one place."""
        deadline = self.deadline_for(deadline)
        if key is not None and not self.health.allow(key):
            raise CircuitOpen(
                f"circuit open for {key!r}: repeated failures "
                f"(state {self.health.state(key)})")
        try:
            # The retry budget rides the call context so transport-level
            # transparent resends draw from the same cap as our own
            # retries.
            with call_policy(deadline=deadline, idempotent=idempotent,
                             traffic_class=traffic_class,
                             retry_budget=self.retry.budget):
                if deadline is not None:
                    deadline.require(f"call to {key!r}" if key else "call")
                result = self.retry.call(fn, idempotent=idempotent,
                                         deadline=deadline, key=key)
        except FAILURE_ERRORS:
            if key is not None:
                self.health.record(key, ok=False)
            raise
        if key is not None:
            self.health.record(key, ok=True)
        return result
