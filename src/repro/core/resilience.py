"""Resilience policies: deadlines, retries, and circuit breakers.

WebFINDIT federates *hundreds* of autonomous databases whose
co-databases can vanish, stall, or misbehave at any time (§2.1: sources
join and leave at their own discretion).  This module is the one place
that decides how the system behaves when they do:

* **Deadlines** — a discovery query gets one *total* time budget that
  propagates through the whole BFS (see :mod:`repro.deadline`, whose
  primitives are re-exported here): every co-database consultation and
  every GIOP round-trip bounds itself by the remaining budget, so one
  stalled site cannot eat the query.
* **Retries** — :class:`RetryPolicy` retries transient transport
  failures with exponential backoff and *decorrelated jitter* (each
  delay is drawn uniformly from ``[base, previous * multiplier]``,
  which spreads synchronized retry storms better than plain
  exponential).  Retries apply to **idempotent metadata reads only**;
  a failure whose first copy may have been applied server-side is
  never blindly resent.
* **Circuit breakers** — :class:`CircuitBreaker` tracks per-endpoint
  health through the classic closed / open / half-open state machine.
  The shared :class:`HealthBoard` lives on the
  :class:`~repro.core.registry.Registry`, so every discovery engine in
  the federation skips known-dead co-databases instead of burning its
  deadline rediscovering them; ``system.metrics()`` surfaces the
  board's snapshot.

:class:`ResiliencePolicy` bundles the three and is what
:class:`~repro.core.discovery.DiscoveryEngine`,
:class:`~repro.core.query_processor.QueryProcessor`, and the system
facade share.  ``docs/resilience.md`` documents the behaviour and the
fault-injection DSL used to test it.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Union

from repro.deadline import (CallPolicy, Deadline, call_policy,
                            current_policy)
from repro.errors import CircuitOpen, CommFailure, DeadlineExceeded

__all__ = [
    "Deadline", "CallPolicy", "call_policy", "current_policy",
    "RetryPolicy", "CircuitBreaker", "HealthBoard", "ResiliencePolicy",
    "CLOSED", "OPEN", "HALF_OPEN", "FAILURE_ERRORS", "as_deadline",
]

#: Error classes that count as *endpoint* failures: the site is dead,
#: unreachable, or too slow.  Application-level errors (an unknown
#: coalition, a malformed query) mean the endpoint answered and do not
#: trip breakers or trigger retries.
FAILURE_ERRORS = (CommFailure, DeadlineExceeded)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def as_deadline(budget: Union[None, float, Deadline]) -> Optional[Deadline]:
    """Normalise a seconds-or-Deadline argument."""
    if budget is None or isinstance(budget, Deadline):
        return budget
    return Deadline.after(float(budget))


class RetryPolicy:
    """Bounded retries with exponential backoff + decorrelated jitter.

    ``call`` retries only :data:`retryable` failures, only when the
    caller vouches the operation is *idempotent*, and never past the
    deadline: a retry whose backoff sleep would not leave budget for
    the attempt itself is abandoned and the last failure re-raised.
    *seed* fixes the jitter sequence so chaos tests are reproducible;
    *sleep* is injectable so unit tests need not wait.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 3.0,
                 seed: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 retryable: tuple = (CommFailure,)):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.retryable = retryable
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Attempts beyond the first, across all calls (benches read it).
        self.retries = 0

    def next_delay(self, previous: Optional[float] = None) -> float:
        """Decorrelated jitter: uniform over [base, previous * mult]."""
        ceiling = max(self.base_delay,
                      (previous if previous is not None else self.base_delay)
                      * self.multiplier)
        with self._lock:
            drawn = self._rng.uniform(self.base_delay, ceiling)
        return min(self.max_delay, drawn)

    def call(self, fn: Callable[[], object], *, idempotent: bool = False,
             deadline: Optional[Deadline] = None) -> object:
        """Run *fn*, retrying transient failures when allowed."""
        delay: Optional[float] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except DeadlineExceeded:
                raise  # the budget is gone; retrying cannot help
            except self.retryable:
                if not idempotent or attempt >= self.max_attempts:
                    raise
                delay = self.next_delay(delay)
                if deadline is not None and deadline.remaining() <= delay:
                    raise  # no budget left for backoff plus an attempt
                with self._lock:
                    self.retries += 1
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Closed / open / half-open health tracking for one endpoint.

    *failure_threshold* consecutive failures open the circuit; after
    *reset_timeout* seconds the next :meth:`allow` admits up to
    *half_open_trials* probe calls, whose outcome closes or re-opens
    it.  Thread-safe; *clock* is injectable for tests.
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0, half_open_trials: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_trials = half_open_trials
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trials_in_flight = 0
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._trials_in_flight = 0

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts a probe slot when
        half-open.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and \
                    self._trials_in_flight < self.half_open_trials:
                self._trials_in_flight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._trials_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            tripping = (self._state == HALF_OPEN
                        or (self._state == CLOSED
                            and self._consecutive_failures
                            >= self.failure_threshold))
            if tripping:
                self._state = OPEN
                self._opened_at = self._clock()
                self._trials_in_flight = 0
                self.trips += 1


class HealthBoard:
    """Per-endpoint circuit breakers, shared federation-wide.

    Keyed by database name at the discovery layer (one co-database per
    source).  The board lives on the registry so health memory persists
    across discovery engines, query processors, and sessions; breakers
    are created lazily with the board's default parameters.
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0, half_open_trials: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_trials = half_open_trials
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    half_open_trials=self.half_open_trials,
                    clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def allow(self, key: str) -> bool:
        return self.breaker(key).allow()

    def record(self, key: str, ok: bool) -> None:
        breaker = self.breaker(key)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def state(self, key: str) -> str:
        with self._lock:
            breaker = self._breakers.get(key)
        return breaker.state if breaker is not None else CLOSED

    def forget(self, key: str) -> None:
        """Drop health memory for a removed source."""
        with self._lock:
            self._breakers.pop(key, None)

    def reset(self) -> None:
        with self._lock:
            self._breakers.clear()

    def open_endpoints(self) -> list[str]:
        with self._lock:
            breakers = list(self._breakers.items())
        return [key for key, breaker in breakers if breaker.state == OPEN]

    def snapshot(self) -> dict[str, dict]:
        """Health state per endpoint (``system.metrics()`` embeds it)."""
        with self._lock:
            breakers = list(self._breakers.items())
        return {
            key: {
                "state": breaker.state,
                "failures": breaker.failures,
                "successes": breaker.successes,
                "trips": breaker.trips,
                "rejections": breaker.rejections,
            }
            for key, breaker in breakers
        }


class ResiliencePolicy:
    """The bundle the discovery stack shares: retry + health + budget.

    *default_deadline* (seconds) applies to any discovery that does not
    bring its own; None leaves queries unbounded, matching the paper's
    interactive prototype.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None,
                 health: Optional[HealthBoard] = None,
                 default_deadline: Optional[float] = None):
        self.retry = retry if retry is not None else RetryPolicy()
        self.health = health if health is not None else HealthBoard()
        self.default_deadline = default_deadline

    def deadline_for(self, budget: Union[None, float, Deadline]
                     ) -> Optional[Deadline]:
        """An explicit budget, else the policy default, else unbounded."""
        explicit = as_deadline(budget)
        if explicit is not None:
            return explicit
        if self.default_deadline is not None:
            return Deadline.after(self.default_deadline)
        return None

    def call(self, fn: Callable[[], object], *, key: Optional[str] = None,
             idempotent: bool = False,
             deadline: Union[None, float, Deadline] = None) -> object:
        """Guarded standalone call: breaker check, deadline context,
        retries, and health recording in one place."""
        deadline = self.deadline_for(deadline)
        if key is not None and not self.health.allow(key):
            raise CircuitOpen(
                f"circuit open for {key!r}: repeated failures "
                f"(state {self.health.state(key)})")
        try:
            with call_policy(deadline=deadline, idempotent=idempotent):
                if deadline is not None:
                    deadline.require(f"call to {key!r}" if key else "call")
                result = self.retry.call(fn, idempotent=idempotent,
                                         deadline=deadline)
        except FAILURE_ERRORS:
            if key is not None:
                self.health.record(key, ok=False)
            raise
        if key is not None:
            self.health.record(key, ok=True)
        return result
