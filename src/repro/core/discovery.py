"""Query resolution over the information space (§2 of the paper).

"Initially, the user specifies the query in terms of relevant
information ... the query is sent to a local metadata repository ...
If the local metadata repository fails to resolve the user's query,
using the information on clusters' inter-relationships, the local
repository sends the query to one or more remote metadata
repositories."

:class:`DiscoveryEngine` implements that algorithm as a breadth-first
exploration of co-databases:

1. ask the **local** co-database for coalitions matching the topic;
2. examine the **service links** it knows (low-overhead leads to other
   coalitions/databases);
3. failing that, consult the co-databases of the **other members of the
   local coalitions** (the paper's RBH example), and so on outward.

Every co-database consulted and every metadata call is counted; the
scalability benchmarks (S1) compare these counts against the broadcast
baseline.

Consultations within one BFS depth are independent — remote
co-databases are autonomous servers — so the engine can fan them out
concurrently (``parallel=True``) on a bounded thread pool.  Fetching
(remote I/O) is separated from merging (scoring, dedup, tracing, cost
accounting), and merges always happen in frontier order, so the
parallel engine returns *byte-identical* results to the sequential
one; only wall-clock differs.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.core.codatabase import CoDatabase
from repro.core.model import topic_score
from repro.core.resilience import (Deadline, ResiliencePolicy, as_deadline,
                                   call_policy)
from repro.core.service_link import ServiceLink
from repro.errors import DeadlineExceeded, DiscoveryFailure, ReproError
from repro.orb.orb import Proxy

#: Fan-out thread cap when ``max_workers`` is left unset: scaled to the
#: frontier, never beyond this.
DEFAULT_MAX_WORKERS = 16

#: Extra seconds a parallel merge waits for an in-flight consultation
#: after the query deadline expires, before writing it off as timed
#: out.  Bounds the worst case: a query returns within deadline + grace
#: even when a worker thread is wedged inside a stalled remote call.
DEADLINE_GRACE = 0.25


class CoDatabaseClient:
    """Uniform client over a co-database, local or behind the ORB.

    The discovery engine only speaks this interface, so the same
    algorithm runs against in-process co-databases (unit tests, the
    centralized baseline) and CORBA proxies (the deployed system).
    Each method call increments :attr:`calls`.
    """

    def __init__(self, target: CoDatabase | Proxy, name: str):
        self._target = target
        self.name = name
        self.calls = 0

    @classmethod
    def for_local(cls, codatabase: CoDatabase) -> "CoDatabaseClient":
        return cls(codatabase, codatabase.owner_name)

    @classmethod
    def for_proxy(cls, proxy: Proxy, name: str) -> "CoDatabaseClient":
        return cls(proxy, name)

    @property
    def target(self) -> CoDatabase | Proxy:
        """The wrapped co-database or proxy (for cache wrappers)."""
        return self._target

    def _call(self, operation: str, *args: Any) -> Any:
        self.calls += 1
        if isinstance(self._target, CoDatabase):
            if operation == "memberships":
                return list(self._target.memberships)
            if operation == "epoch":
                return self._target.epoch
            method = getattr(self._target, operation)
            return method(*args)
        # Every co-database operation is a metadata *read*: safe to
        # resend after an ambiguous transport failure, so flag it for
        # the pooled-connection retry in TcpTransport.
        with call_policy(idempotent=True):
            return self._target.invoke(operation, *args)

    def find_coalitions(self, query: str) -> list[dict[str, Any]]:
        matches = self._call("find_coalitions", query)
        return [dict(m) for m in matches]

    def memberships(self) -> list[str]:
        return list(self._call("memberships"))

    def service_links(self) -> list[ServiceLink]:
        links = self._call("service_links")
        return [link if isinstance(link, ServiceLink)
                else ServiceLink.from_wire(link) for link in links]

    def neighbor_databases(self) -> list[str]:
        return list(self._call("neighbor_databases"))

    def known_coalitions(self) -> list[dict[str, Any]]:
        coalitions = self._call("known_coalitions")
        return [c.to_wire() if hasattr(c, "to_wire") else dict(c)
                for c in coalitions]

    def subclasses_of(self, class_name: str) -> list[str]:
        return list(self._call("subclasses_of", class_name))

    def instances_of(self, class_name: str) -> list[dict[str, Any]]:
        instances = self._call("instances_of", class_name)
        return [d.to_wire() if hasattr(d, "to_wire") else dict(d)
                for d in instances]

    def describe_instance(self, source_name: str) -> dict[str, Any]:
        description = self._call("describe_instance", source_name)
        return description.to_wire() if hasattr(description, "to_wire") \
            else dict(description)

    def documents_of(self, source_name: str) -> list[dict[str, str]]:
        return [dict(d) for d in self._call("documents_of", source_name)]


@dataclass
class CoalitionLead:
    """One discovered lead: a coalition (or linked target) matching the
    topic, with the path of databases whose co-databases revealed it."""

    name: str
    information_type: str
    score: float
    members: list[str] = field(default_factory=list)
    via: list[str] = field(default_factory=list)
    through_link: Optional[str] = None
    #: A database whose co-database can answer for this lead (a member,
    #: or the contact of the service link that revealed it).
    contact: str = ""

    @property
    def hops(self) -> int:
        return len(self.via) - 1 if self.via else 0

    @property
    def entry_database(self) -> Optional[str]:
        """Where follow-up metadata queries about this lead should go."""
        if self.members:
            return self.members[0]
        if self.contact:
            return self.contact
        return self.via[-1] if self.via else None


#: Degradation reasons, in escalating order of how little we learned.
UNREACHABLE = "unreachable"   # consulted, transport/lookup failure
TIMED_OUT = "timed-out"       # consulted, ran out of deadline budget
TRIPPED = "tripped"           # not consulted: circuit breaker open
SKIPPED = "skipped"           # not consulted: deadline already spent


@dataclass(frozen=True)
class DegradedEndpoint:
    """One co-database the resolution could not (fully) use, and why."""

    database: str
    reason: str  # one of UNREACHABLE / TIMED_OUT / TRIPPED / SKIPPED
    detail: str = ""
    depth: int = 0

    def render(self) -> str:
        return f"{self.database} [{self.reason} at depth {self.depth}]"


@dataclass
class DegradedReport:
    """Which parts of the information space a resolution had to skip.

    The paper's algorithm keeps educating the user from whatever
    metadata *is* reachable; this report is the honest footnote — the
    difference between "no answer" and "no answer from the part of the
    space we could explore".
    """

    entries: list[DegradedEndpoint] = field(default_factory=list)

    def add(self, database: str, reason: str, detail: str = "",
            depth: int = 0) -> None:
        self.entries.append(DegradedEndpoint(database=database,
                                             reason=reason, detail=detail,
                                             depth=depth))

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def names(self) -> list[str]:
        return [entry.database for entry in self.entries]

    def by_reason(self) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.reason, []).append(entry.database)
        return grouped

    def summary(self) -> str:
        """One line for CLI / query-processor output."""
        if not self.entries:
            return "no degradation"
        parts = [f"{reason}: {', '.join(names)}"
                 for reason, names in sorted(self.by_reason().items())]
        return (f"{len(self.entries)} co-database(s) skipped — "
                + "; ".join(parts))


@dataclass
class DiscoveryResult:
    """Outcome of one resolution, with the cost accounting benches use."""

    query: str
    leads: list[CoalitionLead]
    codatabases_contacted: int
    metadata_calls: int
    max_depth_reached: int
    trace: list[str] = field(default_factory=list)
    #: Databases whose co-databases could not be reached (autonomous
    #: sources leave at their own discretion; resolution continues).
    unreachable: list[str] = field(default_factory=list)
    #: Metadata-cache accounting for this resolution (all stay zero
    #: when no cache is wired in front of the co-database clients).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Reads that found the shared cache tier unreachable and fell
    #: through to a direct co-database call (tier-down degradation —
    #: completeness is unaffected, only the optimisation is lost).
    cache_bypassed: int = 0
    #: Structured account of every co-database this resolution skipped,
    #: timed out on, or found tripped — empty means the reachable
    #: information space was explored in full.
    degraded: DegradedReport = field(default_factory=DegradedReport)

    @property
    def resolved(self) -> bool:
        return bool(self.leads)

    @property
    def partial(self) -> bool:
        """True when some of the information space went unexplored —
        the caller should present leads as "what we could find", not
        "all there is"."""
        return bool(self.degraded)

    def best(self) -> CoalitionLead:
        if not self.leads:
            raise DiscoveryFailure(
                f"query {self.query!r} found no coalitions")
        return self.leads[0]


@dataclass
class _Consultation:
    """Raw metadata one worker fetched from one frontier co-database.

    Fetch and merge are separate phases: workers only gather, the
    caller merges in frontier order — that split is what keeps the
    parallel engine deterministic.
    """

    client: Optional[CoDatabaseClient] = None
    matches: list[dict[str, Any]] = field(default_factory=list)
    links: list[ServiceLink] = field(default_factory=list)
    neighbors: list[str] = field(default_factory=list)
    error: Optional[ReproError] = None
    #: True when the consultation was never attempted (query deadline
    #: spent before this frontier member's turn came).
    skipped: bool = False


class DiscoveryEngine:
    """Breadth-first resolution across co-databases.

    *resolver* maps a database name to a :class:`CoDatabaseClient`;
    the deployed system backs it with naming-service lookups and CORBA
    proxies, tests may back it with local co-databases directly.

    With *parallel* set, every frontier's consultations run
    concurrently on a bounded thread pool (*max_workers*, default
    scaled to the frontier size, capped at
    :data:`DEFAULT_MAX_WORKERS`).  Results are merged in frontier
    order, so leads, traces, and counters are identical to the
    sequential engine's; ``stop_at_first`` still takes effect at the
    depth boundary, after which no further depth is scheduled.

    With a *policy* (:class:`~repro.core.resilience.ResiliencePolicy`)
    the engine becomes fault-aware: frontier members whose circuit
    breaker is open are skipped without a call, transient failures on
    metadata reads are retried with backoff inside the remaining
    deadline, every consultation outcome feeds the shared health
    board, and the result's :attr:`DiscoveryResult.degraded` report
    names everything that was skipped and why.  Without a policy the
    engine behaves exactly as before (no retries, no breakers), except
    that an explicit ``deadline=`` is still honoured.
    """

    def __init__(self, resolver: Callable[[str], CoDatabaseClient],
                 match_threshold: float = 0.5,
                 full_match_score: float = 0.999,
                 parallel: bool = False,
                 max_workers: Optional[int] = None,
                 policy: Optional[ResiliencePolicy] = None):
        self._resolve = resolver
        self._threshold = match_threshold
        self._full_match = full_match_score
        self._parallel = parallel
        self._max_workers = max_workers
        self._policy = policy
        #: Lazily-created, engine-lifetime worker pool.  Threads are
        #: spawned on demand (so the pool scales with actual frontier
        #: sizes, capped at max_workers) and reused across depths and
        #: discover() calls — per-depth pool creation would cost more
        #: than the fan-out saves on fast networks.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_guard = threading.Lock()

    def close(self) -> None:
        """Release the fan-out worker pool (no-op when sequential)."""
        with self._executor_guard:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    def discover(self, query: str, start_database: str,
                 max_hops: int = 6,
                 stop_at_first: bool = True,
                 deadline: Union[None, float, Deadline] = None
                 ) -> DiscoveryResult:
        """Resolve *query* starting from *start_database*'s co-database.

        With *stop_at_first* (the paper's interactive behaviour) the
        exploration stops once a *full* match is found — partial matches
        are kept as leads but do not resolve the query, mirroring the
        paper's "the coalition Research fails to answer the query"
        example.  Service-link contacts join the frontier, so links are
        followed across cluster boundaries.

        *deadline* is the **total** budget for the resolution (seconds
        or a shared :class:`~repro.core.resilience.Deadline`), not a
        per-hop timeout; it defaults to the policy's
        ``default_deadline``.  When the budget runs out the engine
        stops exploring and reports everything unvisited in
        :attr:`DiscoveryResult.degraded` rather than raising — a
        partial answer beats no answer (§2).
        """
        policy = self._policy
        deadline = policy.deadline_for(deadline) if policy is not None \
            else as_deadline(deadline)
        trace: list[str] = []
        leads: list[CoalitionLead] = []
        seen_leads: set[str] = set()
        visited: set[str] = {start_database}
        frontier: list[tuple[str, list[str]]] = [(start_database,
                                                  [start_database])]
        clients: list[CoDatabaseClient] = []
        unreachable: list[str] = []
        degraded = DegradedReport()
        depth = 0
        max_depth_reached = 0

        while frontier and depth <= max_hops:
            max_depth_reached = depth
            next_frontier: list[tuple[str, list[str]]] = []
            if deadline is not None and deadline.expired:
                # Budget spent before this depth: report, don't raise.
                for database_name, __ in frontier:
                    degraded.add(database_name, SKIPPED,
                                 "query deadline exhausted before "
                                 "consultation", depth=depth)
                    trace.append(
                        f"[depth {depth}] skipping co-database of "
                        f"{database_name!r}: deadline exhausted")
                break
            consultable: list[tuple[str, list[str]]] = []
            for database_name, path in frontier:
                # Health memory: a co-database that has failed
                # repeatedly (in *any* prior resolution sharing this
                # policy) is skipped without burning deadline on it.
                if policy is not None and depth > 0 \
                        and not policy.health.allow(database_name):
                    degraded.add(database_name, TRIPPED,
                                 "circuit open after repeated failures",
                                 depth=depth)
                    trace.append(
                        f"[depth {depth}] skipping co-database of "
                        f"{database_name!r}: circuit open")
                    continue
                consultable.append((database_name, path))
            consultations = self._consult_frontier(consultable, query,
                                                   depth, deadline)
            for (database_name, path), outcome in zip(consultable,
                                                      consultations):
                if outcome.skipped:
                    degraded.add(database_name, SKIPPED,
                                 "query deadline exhausted before "
                                 "consultation", depth=depth)
                    trace.append(
                        f"[depth {depth}] skipping co-database of "
                        f"{database_name!r}: deadline exhausted")
                    continue
                if outcome.client is not None:
                    clients.append(outcome.client)
                    trace.append(
                        f"[depth {depth}] consulting co-database of "
                        f"{database_name!r}")
                if policy is not None:
                    policy.health.record(database_name,
                                         ok=outcome.error is None)
                if outcome.error is not None:
                    # Sources join and leave at their own discretion
                    # (§2.1); a vanished or failing co-database must not
                    # abort resolution — skip it and keep exploring.
                    if depth == 0:
                        raise outcome.error  # the user's own repository
                    reason = TIMED_OUT if isinstance(outcome.error,
                                                     DeadlineExceeded) \
                        else UNREACHABLE
                    unreachable.append(database_name)
                    degraded.add(database_name, reason,
                                 str(outcome.error), depth=depth)
                    trace.append(
                        f"[depth {depth}] co-database of "
                        f"{database_name!r} unreachable: {outcome.error}")
                    continue
                links = self._merge(outcome, query, path, leads,
                                    seen_leads, trace)
                if depth == 0:
                    # The paper's courtesy check: "WebFINDIT checks
                    # whether other databases from the local coalition
                    # are aware of a coalition or service link that
                    # deal with this information type."  Members of a
                    # coalition share the same coalition metadata, so
                    # beyond the local cluster only service links
                    # route the query onward.
                    for neighbor in outcome.neighbors:
                        if neighbor not in visited:
                            visited.add(neighbor)
                            next_frontier.append((neighbor,
                                                  path + [neighbor]))
                # Service links route the query onward even when the
                # link itself does not advertise the topic — "the local
                # repository sends the query to one or more remote
                # metadata repositories" (§2).
                for link in links:
                    if link.contact and link.contact not in visited:
                        visited.add(link.contact)
                        next_frontier.append((link.contact,
                                              path + [link.contact]))
            if stop_at_first and any(lead.score >= self._full_match
                                     for lead in leads):
                break
            frontier = next_frontier
            depth += 1

        leads.sort(key=lambda lead: (-lead.score, lead.hops, lead.name))
        return DiscoveryResult(
            query=query,
            leads=leads,
            codatabases_contacted=len(clients),
            metadata_calls=sum(client.calls for client in clients),
            max_depth_reached=max_depth_reached,
            trace=trace,
            unreachable=unreachable,
            cache_hits=sum(getattr(client, "cache_hits", 0)
                           for client in clients),
            cache_misses=sum(getattr(client, "cache_misses", 0)
                             for client in clients),
            # Guarded with isinstance: duck-typed clients that swallow
            # unknown attributes via __getattr__ hand back callables.
            cache_bypassed=sum(
                count for client in clients
                if isinstance(count := getattr(client, "cache_bypassed",
                                               0), int)),
            degraded=degraded)

    # -- internals ---------------------------------------------------------------

    def _consult_frontier(self, frontier: list[tuple[str, list[str]]],
                          query: str, depth: int,
                          deadline: Optional[Deadline] = None
                          ) -> list[_Consultation]:
        """Fetch raw metadata from every frontier co-database.

        Sequential and parallel modes return the same list in the same
        (frontier) order; parallelism only overlaps the remote I/O.
        """
        if not self._parallel or len(frontier) < 2:
            outcomes: list[_Consultation] = []
            for name, __ in frontier:
                if deadline is not None and deadline.expired:
                    # Mid-depth expiry: the rest of the frontier is
                    # reported, not silently dropped.
                    outcomes.append(_Consultation(skipped=True))
                else:
                    outcomes.append(self._consult(name, query, depth,
                                                  deadline))
            return outcomes
        pool = self._ensure_executor()
        futures = [pool.submit(self._consult, name, query, depth, deadline)
                   for name, __ in frontier]
        # Collect in submission order, not completion order.
        if deadline is None:
            return [future.result() for future in futures]
        results: list[_Consultation] = []
        for (name, __), future in zip(frontier, futures):
            # Workers bound their own I/O by the deadline, but a wedged
            # remote can still hold a thread; never wait for it past
            # deadline + grace — the worker's eventual result is
            # discarded and the executor thread freed when it returns.
            wait = max(0.0, deadline.remaining()) + DEADLINE_GRACE
            try:
                results.append(future.result(timeout=wait))
            except FutureTimeout:
                future.cancel()
                results.append(_Consultation(error=DeadlineExceeded(
                    f"co-database of {name!r} did not answer within "
                    f"the query deadline")))
        return results

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_guard:
            if self._executor is None:
                workers = max(1, self._max_workers or DEFAULT_MAX_WORKERS)
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="discovery")
            return self._executor

    def _consult(self, database_name: str, query: str, depth: int,
                 deadline: Optional[Deadline] = None) -> _Consultation:
        """Fetch one co-database's answers (runs on a worker thread).

        The whole consultation runs inside a call-policy context so the
        query's deadline and the idempotence of metadata reads reach the
        transport (per-call socket timeouts, retry-on-stale-connection).
        When the engine carries a :class:`ResiliencePolicy`, each read
        additionally goes through its retry policy.
        """
        outcome = _Consultation()
        with call_policy(deadline=deadline, idempotent=True):
            try:
                # Resolution is the connection step (naming lookup plus
                # proxy setup), so transient failures here retry too.
                client = self._guarded(
                    lambda: self._resolve(database_name), deadline,
                    key=database_name)
            except ReproError as exc:
                outcome.error = exc
                return outcome
            outcome.client = client
            try:
                outcome.matches = self._guarded(
                    lambda: client.find_coalitions(query), deadline,
                    key=database_name)
                outcome.links = self._guarded(client.service_links, deadline,
                                              key=database_name)
                if depth == 0:
                    outcome.neighbors = self._guarded(
                        client.neighbor_databases, deadline,
                        key=database_name)
            except ReproError as exc:
                outcome.error = exc
        return outcome

    def _guarded(self, fn: Callable[[], Any],
                 deadline: Optional[Deadline],
                 key: Optional[str] = None) -> Any:
        """One metadata read, retried per the engine policy (if any).

        *key* names the consulted source so a retry budget on the
        policy meters retries per source, not one global pool.
        """
        if self._policy is None:
            return fn()
        return self._policy.retry.call(fn, idempotent=True,
                                       deadline=deadline, key=key)

    def _merge(self, outcome: _Consultation, query: str, path: list[str],
               leads: list[CoalitionLead], seen: set[str],
               trace: list[str]) -> list[ServiceLink]:
        """Fold one consultation into the shared lead/trace state.

        Always runs on the coordinating thread, in frontier order.
        Returns the service links the co-database knows, so the caller
        can route the query onward along them.
        """
        for match in outcome.matches:
            key = f"coalition:{match['name']}"
            if key in seen:
                continue
            seen.add(key)
            leads.append(CoalitionLead(
                name=match["name"],
                information_type=match.get("information_type", ""),
                score=float(match.get("score", 0.0)),
                members=list(match.get("members", [])),
                via=list(path)))
            trace.append(
                f"    coalition {match['name']!r} matches "
                f"(score {match.get('score', 0):.2f})")
        links = outcome.links
        for link in links:
            score = max(topic_score(query, link.information_type),
                        topic_score(query, link.to_name),
                        topic_score(query, link.description))
            if score < self._threshold:
                continue
            # One lead per link target: multiple links into the same
            # coalition (Figure 1 has seven into Medical) collapse.
            key = f"link:{link.to_kind.value}:{link.to_name}"
            if key in seen or f"coalition:{link.to_name}" in seen:
                continue
            seen.add(key)
            leads.append(CoalitionLead(
                name=link.to_name,
                information_type=link.information_type or link.description,
                score=score,
                via=list(path),
                through_link=link.label,
                contact=link.contact))
            trace.append(
                f"    service link {link.label} leads to "
                f"{link.to_kind.value} {link.to_name!r} "
                f"(score {score:.2f})")
        return links
