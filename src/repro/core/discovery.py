"""Query resolution over the information space (§2 of the paper).

"Initially, the user specifies the query in terms of relevant
information ... the query is sent to a local metadata repository ...
If the local metadata repository fails to resolve the user's query,
using the information on clusters' inter-relationships, the local
repository sends the query to one or more remote metadata
repositories."

:class:`DiscoveryEngine` implements that algorithm as a breadth-first
exploration of co-databases:

1. ask the **local** co-database for coalitions matching the topic;
2. examine the **service links** it knows (low-overhead leads to other
   coalitions/databases);
3. failing that, consult the co-databases of the **other members of the
   local coalitions** (the paper's RBH example), and so on outward.

Every co-database consulted and every metadata call is counted; the
scalability benchmarks (S1) compare these counts against the broadcast
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.codatabase import CoDatabase
from repro.core.model import topic_score
from repro.core.service_link import ServiceLink
from repro.errors import DiscoveryFailure, ReproError
from repro.orb.orb import Proxy


class CoDatabaseClient:
    """Uniform client over a co-database, local or behind the ORB.

    The discovery engine only speaks this interface, so the same
    algorithm runs against in-process co-databases (unit tests, the
    centralized baseline) and CORBA proxies (the deployed system).
    Each method call increments :attr:`calls`.
    """

    def __init__(self, target: CoDatabase | Proxy, name: str):
        self._target = target
        self.name = name
        self.calls = 0

    @classmethod
    def for_local(cls, codatabase: CoDatabase) -> "CoDatabaseClient":
        return cls(codatabase, codatabase.owner_name)

    @classmethod
    def for_proxy(cls, proxy: Proxy, name: str) -> "CoDatabaseClient":
        return cls(proxy, name)

    def _call(self, operation: str, *args: Any) -> Any:
        self.calls += 1
        if isinstance(self._target, CoDatabase):
            if operation == "memberships":
                return list(self._target.memberships)
            method = getattr(self._target, operation)
            return method(*args)
        return self._target.invoke(operation, *args)

    def find_coalitions(self, query: str) -> list[dict[str, Any]]:
        matches = self._call("find_coalitions", query)
        return [dict(m) for m in matches]

    def memberships(self) -> list[str]:
        return list(self._call("memberships"))

    def service_links(self) -> list[ServiceLink]:
        links = self._call("service_links")
        return [link if isinstance(link, ServiceLink)
                else ServiceLink.from_wire(link) for link in links]

    def neighbor_databases(self) -> list[str]:
        return list(self._call("neighbor_databases"))

    def known_coalitions(self) -> list[dict[str, Any]]:
        coalitions = self._call("known_coalitions")
        return [c.to_wire() if hasattr(c, "to_wire") else dict(c)
                for c in coalitions]

    def subclasses_of(self, class_name: str) -> list[str]:
        return list(self._call("subclasses_of", class_name))

    def instances_of(self, class_name: str) -> list[dict[str, Any]]:
        instances = self._call("instances_of", class_name)
        return [d.to_wire() if hasattr(d, "to_wire") else dict(d)
                for d in instances]

    def describe_instance(self, source_name: str) -> dict[str, Any]:
        description = self._call("describe_instance", source_name)
        return description.to_wire() if hasattr(description, "to_wire") \
            else dict(description)

    def documents_of(self, source_name: str) -> list[dict[str, str]]:
        return [dict(d) for d in self._call("documents_of", source_name)]


@dataclass
class CoalitionLead:
    """One discovered lead: a coalition (or linked target) matching the
    topic, with the path of databases whose co-databases revealed it."""

    name: str
    information_type: str
    score: float
    members: list[str] = field(default_factory=list)
    via: list[str] = field(default_factory=list)
    through_link: Optional[str] = None
    #: A database whose co-database can answer for this lead (a member,
    #: or the contact of the service link that revealed it).
    contact: str = ""

    @property
    def hops(self) -> int:
        return len(self.via) - 1 if self.via else 0

    @property
    def entry_database(self) -> Optional[str]:
        """Where follow-up metadata queries about this lead should go."""
        if self.members:
            return self.members[0]
        if self.contact:
            return self.contact
        return self.via[-1] if self.via else None


@dataclass
class DiscoveryResult:
    """Outcome of one resolution, with the cost accounting benches use."""

    query: str
    leads: list[CoalitionLead]
    codatabases_contacted: int
    metadata_calls: int
    max_depth_reached: int
    trace: list[str] = field(default_factory=list)
    #: Databases whose co-databases could not be reached (autonomous
    #: sources leave at their own discretion; resolution continues).
    unreachable: list[str] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return bool(self.leads)

    def best(self) -> CoalitionLead:
        if not self.leads:
            raise DiscoveryFailure(
                f"query {self.query!r} found no coalitions")
        return self.leads[0]


class DiscoveryEngine:
    """Breadth-first resolution across co-databases.

    *resolver* maps a database name to a :class:`CoDatabaseClient`;
    the deployed system backs it with naming-service lookups and CORBA
    proxies, tests may back it with local co-databases directly.
    """

    def __init__(self, resolver: Callable[[str], CoDatabaseClient],
                 match_threshold: float = 0.5,
                 full_match_score: float = 0.999):
        self._resolve = resolver
        self._threshold = match_threshold
        self._full_match = full_match_score

    def discover(self, query: str, start_database: str,
                 max_hops: int = 6,
                 stop_at_first: bool = True) -> DiscoveryResult:
        """Resolve *query* starting from *start_database*'s co-database.

        With *stop_at_first* (the paper's interactive behaviour) the
        exploration stops once a *full* match is found — partial matches
        are kept as leads but do not resolve the query, mirroring the
        paper's "the coalition Research fails to answer the query"
        example.  Service-link contacts join the frontier, so links are
        followed across cluster boundaries.
        """
        trace: list[str] = []
        leads: list[CoalitionLead] = []
        seen_leads: set[str] = set()
        visited: set[str] = {start_database}
        frontier: list[tuple[str, list[str]]] = [(start_database,
                                                  [start_database])]
        clients: list[CoDatabaseClient] = []
        unreachable: list[str] = []
        depth = 0
        max_depth_reached = 0

        while frontier and depth <= max_hops:
            max_depth_reached = depth
            next_frontier: list[tuple[str, list[str]]] = []
            for database_name, path in frontier:
                try:
                    client = self._resolve(database_name)
                    clients.append(client)
                    trace.append(
                        f"[depth {depth}] consulting co-database of "
                        f"{database_name!r}")
                    links = self._examine(client, query, path, leads,
                                          seen_leads, trace)
                except ReproError as exc:
                    # Sources join and leave at their own discretion
                    # (§2.1); a vanished or failing co-database must not
                    # abort resolution — skip it and keep exploring.
                    if depth == 0:
                        raise  # the user's own repository is required
                    unreachable.append(database_name)
                    trace.append(
                        f"[depth {depth}] co-database of "
                        f"{database_name!r} unreachable: {exc}")
                    continue
                if depth == 0:
                    # The paper's courtesy check: "WebFINDIT checks
                    # whether other databases from the local coalition
                    # are aware of a coalition or service link that
                    # deal with this information type."  Members of a
                    # coalition share the same coalition metadata, so
                    # beyond the local cluster only service links
                    # route the query onward.
                    for neighbor in client.neighbor_databases():
                        if neighbor not in visited:
                            visited.add(neighbor)
                            next_frontier.append((neighbor,
                                                  path + [neighbor]))
                # Service links route the query onward even when the
                # link itself does not advertise the topic — "the local
                # repository sends the query to one or more remote
                # metadata repositories" (§2).
                for link in links:
                    if link.contact and link.contact not in visited:
                        visited.add(link.contact)
                        next_frontier.append((link.contact,
                                              path + [link.contact]))
            if stop_at_first and any(lead.score >= self._full_match
                                     for lead in leads):
                break
            frontier = next_frontier
            depth += 1

        leads.sort(key=lambda lead: (-lead.score, lead.hops, lead.name))
        return DiscoveryResult(
            query=query,
            leads=leads,
            codatabases_contacted=len(clients),
            metadata_calls=sum(client.calls for client in clients),
            max_depth_reached=max_depth_reached,
            trace=trace,
            unreachable=unreachable)

    # -- internals ---------------------------------------------------------------

    def _examine(self, client: CoDatabaseClient, query: str, path: list[str],
                 leads: list[CoalitionLead], seen: set[str],
                 trace: list[str]) -> list[ServiceLink]:
        """Check one co-database for coalition and link leads.

        Returns the service links it knows, so the caller can route the
        query onward along them.
        """
        for match in client.find_coalitions(query):
            key = f"coalition:{match['name']}"
            if key in seen:
                continue
            seen.add(key)
            leads.append(CoalitionLead(
                name=match["name"],
                information_type=match.get("information_type", ""),
                score=float(match.get("score", 0.0)),
                members=list(match.get("members", [])),
                via=list(path)))
            trace.append(
                f"    coalition {match['name']!r} matches "
                f"(score {match.get('score', 0):.2f})")
        links = client.service_links()
        for link in links:
            score = max(topic_score(query, link.information_type),
                        topic_score(query, link.to_name),
                        topic_score(query, link.description))
            if score < self._threshold:
                continue
            # One lead per link target: multiple links into the same
            # coalition (Figure 1 has seven into Medical) collapse.
            key = f"link:{link.to_kind.value}:{link.to_name}"
            if key in seen or f"coalition:{link.to_name}" in seen:
                continue
            seen.add(key)
            leads.append(CoalitionLead(
                name=link.to_name,
                information_type=link.information_type or link.description,
                score=score,
                via=list(path),
                through_link=link.label,
                contact=link.contact))
            trace.append(
                f"    service link {link.label} leads to "
                f"{link.to_kind.value} {link.to_name!r} "
                f"(score {score:.2f})")
        return links
