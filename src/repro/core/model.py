"""Information-space model: information types, source descriptions, ontology.

WebFINDIT organizes sources by *information type* — the topic a source
or coalition advertises (``Medical Research``, ``Medical Insurance``).
Topics are free text; matching is word-overlap based, expanded through
an optional :class:`Ontology` of synonyms and topic-proximity
relationships (the paper's "clusters related by topic proximity").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

_WORD_RE = re.compile(r"[a-z0-9]+")

#: Words ignored when matching topics.
STOP_WORDS = frozenset({"and", "or", "of", "the", "a", "an", "in", "on",
                        "for", "with", "to"})


def topic_words(text: str) -> frozenset[str]:
    """Normalized, stop-word-free word set of a topic string."""
    return frozenset(w for w in _WORD_RE.findall(text.lower())
                     if w not in STOP_WORDS)


def topic_score(query: str, topic: str,
                ontology: Optional["Ontology"] = None) -> float:
    """Fraction of the query's words covered by *topic* (0.0–1.0).

    With an ontology, query words are expanded to their synonym sets
    before matching.
    """
    query_set = topic_words(query)
    if not query_set:
        return 0.0
    target = topic_words(topic)
    if ontology is not None:
        target = ontology.expand(target)
    hits = sum(1 for word in query_set
               if word in target
               or (ontology is not None
                   and ontology.expand({word}) & target))
    return hits / len(query_set)


@dataclass(frozen=True)
class InformationType:
    """A named information type with optional structural description.

    The paper's co-databases describe both the databases and "the
    information type ... its general structure and behavior"; *structure*
    carries attribute-name → type-name pairs for display.
    """

    name: str
    structure: tuple[tuple[str, str], ...] = ()
    doc: str = ""

    def matches(self, query: str,
                ontology: Optional["Ontology"] = None) -> float:
        return topic_score(query, self.name, ontology)


@dataclass
class SourceDescription:
    """Everything a co-database advertises about one information source.

    Mirrors the paper's advertisement block::

        Information Source Royal Brisbane Hospital {
            Information Type "Research and Medical"
            Documentation   "http://www.medicine.uq.edu.au/RBH"
            Location        "dba.icis.qut.edu.au"
            Wrapper         "dba.icis.qut.edu.au/WebTassiliOracle"
            Interface       ResearchProjects, PatientHistory
        }
    """

    name: str
    information_type: str
    documentation_url: str = ""
    location: str = ""
    wrapper: str = ""
    interface: list[str] = field(default_factory=list)
    dbms: str = ""
    orb_product: str = ""
    #: Flat structural vocabulary of the exported interface:
    #: attribute paths and function names (``ResearchProjects.Title``,
    #: ``Funding``).  Drives structure-qualified search (§2.3's "search
    #: for an information type while providing its structure").
    structure: list[str] = field(default_factory=list)

    def to_wire(self) -> dict:
        """CDR-friendly struct for shipping between co-databases."""
        return {
            "name": self.name,
            "information_type": self.information_type,
            "documentation_url": self.documentation_url,
            "location": self.location,
            "wrapper": self.wrapper,
            "interface": list(self.interface),
            "dbms": self.dbms,
            "orb_product": self.orb_product,
            "structure": list(self.structure),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "SourceDescription":
        return cls(
            name=payload.get("name", ""),
            information_type=payload.get("information_type", ""),
            documentation_url=payload.get("documentation_url", ""),
            location=payload.get("location", ""),
            wrapper=payload.get("wrapper", ""),
            interface=list(payload.get("interface", [])),
            dbms=payload.get("dbms", ""),
            orb_product=payload.get("orb_product", ""),
            structure=list(payload.get("structure", [])),
        )

    def render(self) -> str:
        """The paper's advertisement syntax."""
        lines = [f"Information Source {self.name} {{"]
        lines.append(f'    Information Type "{self.information_type}"')
        if self.documentation_url:
            lines.append(f'    Documentation "{self.documentation_url}"')
        if self.location:
            lines.append(f'    Location "{self.location}"')
        if self.wrapper:
            lines.append(f'    Wrapper "{self.wrapper}"')
        if self.interface:
            lines.append(f"    Interface {', '.join(self.interface)}")
        lines.append("}")
        return "\n".join(lines)


class Ontology:
    """Synonyms and topic-proximity relationships between terms.

    Terms are single normalized words; :meth:`relate` records that two
    topics are *close* (the paper's proximity between clusters), which
    discovery uses to rank near-miss coalitions.
    """

    def __init__(self) -> None:
        self._synonyms: dict[str, set[str]] = {}
        self._proximity: dict[str, set[str]] = {}

    def add_synonyms(self, word: str, synonyms: Iterable[str]) -> None:
        """Declare *synonyms* as interchangeable with *word*."""
        group = {word.lower(), *(s.lower() for s in synonyms)}
        for member in group:
            self._synonyms.setdefault(member, set()).update(group)

    def expand(self, words: Iterable[str]) -> frozenset[str]:
        """Words plus all their synonyms."""
        expanded: set[str] = set()
        for word in words:
            expanded.add(word)
            expanded.update(self._synonyms.get(word, ()))
        return frozenset(expanded)

    def relate(self, topic_a: str, topic_b: str) -> None:
        """Record topic proximity (symmetric)."""
        a = topic_a.lower()
        b = topic_b.lower()
        self._proximity.setdefault(a, set()).add(b)
        self._proximity.setdefault(b, set()).add(a)

    def related(self, topic: str) -> frozenset[str]:
        """Topics recorded as close to *topic*."""
        return frozenset(self._proximity.get(topic.lower(), frozenset()))

    def are_related(self, topic_a: str, topic_b: str) -> bool:
        return topic_b.lower() in self._proximity.get(topic_a.lower(),
                                                      frozenset())
