"""Replicated co-databases: the availability layer of the metadata tier.

The paper's sources "join and leave at their own discretion" — which
the client-side resilience of :mod:`repro.core.resilience` can only
*report*.  This module adds the server-side half:

* :class:`ReplicatedCoDatabase` — a drop-in for
  :class:`~repro.core.codatabase.CoDatabase` that the registry writes
  through.  Every maintenance write is appended to each live replica's
  write-ahead journal (:mod:`repro.core.journal`) and then applied to
  that replica's co-database, carrying one monotonic per-co-database
  **epoch**.  Reads delegate to the first live replica, so registry
  code and the ``update_operations`` accounting are untouched.
* :class:`ReplicaRuntime` — one replica servant's state: its
  co-database, journal, aliveness, and (filled in by the system layer)
  the ORB/IOR it is served on.  Killing a replica freezes its journal
  at the crash epoch; restarting replays snapshot + journal and, when
  the set advanced past the crash epoch, catches up by **anti-entropy**
  from a live peer (a peer snapshot install).
* :class:`FailoverCoDatabaseClient` — the routing half: a
  :class:`~repro.core.discovery.CoDatabaseClient` over the whole
  replica set.  Calls prefer the first replica whose circuit breaker
  admits them, fail over to siblings on transport faults or timeouts,
  re-resolve through the naming service when a cached IOR's generation
  went stale, and tag / invalidate
  :class:`~repro.core.metacache.MetadataCache` entries by epoch so a
  lagging replica can never serve metadata the cache would keep.

``docs/availability.md`` documents the protocol; the S8 bench
(``BENCH_availability.json``) measures what it buys.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.codatabase import CoDatabase
from repro.core.discovery import CoDatabaseClient
from repro.core.journal import (JournalEntry, ReplicaJournal, apply_entry,
                                encode_operation, replay_entries)
from repro.core.metacache import CACHEABLE_OPERATIONS, MetadataCache
from repro.core.model import Ontology
from repro.core.quorum import LeaseState, PrimaryLease, majority
from repro.core.resilience import (FAILURE_ERRORS, HealthBoard, HedgePolicy,
                                   call_policy, current_policy)
from repro.core.snapshot import export_codatabase, import_codatabase
from repro.errors import (CommFailure, ElectionLost, FencedOut, LeaseExpired,
                          QuorumLost, WebFinditError)

#: Default replication factor: primary only (no behaviour change).
DEFAULT_REPLICAS = 1

#: Default primary-lease duration (seconds); see docs/quorum.md.
DEFAULT_LEASE_DURATION = 30.0

#: Connectivity oracle between two replica endpoints: ``link(a, b)`` is
#: True when messages flow.  ``None`` means fully connected.  A
#: :class:`~repro.orb.faults.FaultyTransport` provides one via
#: :meth:`~repro.orb.faults.FaultyTransport.link_oracle`.
LinkOracle = Callable[[tuple, tuple], bool]


def replica_binding(source_name: str, index: int) -> str:
    """Naming-service path of one co-database replica."""
    return f"webfindit/codb/{source_name}/r{index}"


@dataclass
class ReplicaRuntime:
    """One replica servant of a co-database, primary or backup."""

    index: int
    codatabase: CoDatabase
    journal: ReplicaJournal
    alive: bool = True
    #: How often this replica crashed and recovered (for status views).
    restarts: int = 0
    #: Deployment details, owned by the system layer.
    orb: Any = None
    ior: Any = None
    servant: Any = None
    #: (host, port) this replica answers on — what partition rules key
    #: on.  Synthetic until the system layer deploys a real server.
    endpoint: Optional[tuple] = None
    #: Replica-side lease memory: the newest fence promised, to whom.
    lease: LeaseState = field(default_factory=LeaseState)

    @property
    def name(self) -> str:
        return f"r{self.index}"

    @property
    def epoch(self) -> int:
        return self.codatabase.epoch


class ReplicatedCoDatabase:
    """N replica co-databases behind one registry-facing facade.

    Mutators journal (WAL) and fan out; reads delegate to the primary.
    The facade's :attr:`epoch` counts logical maintenance writes — each
    replica that applied the full prefix carries the same number.

    Two write disciplines:

    * **fan-out** (``quorum=False``, the PR 3 behaviour): every *live*
      replica journals and applies each write; the facade is the
      implicit, unchallenged primary.
    * **quorum** (``quorum=True``): writes require a
      :class:`~repro.core.quorum.PrimaryLease` won by majority
      election and commit only when a **majority of the configured
      replica set** journals them; every replica refuses appends
      fenced below its promised lease.  A partitioned old primary can
      therefore never commit once a newer lease exists, and writes
      stay available as long as some candidate reaches a majority
      (the facade fails over its own lease automatically).  *link*
      is the connectivity oracle partitions act through;  *clock* is
      injectable for deterministic lease-expiry tests.
    """

    def __init__(self, owner_name: str, ontology: Optional[Ontology] = None,
                 product: str = "ObjectStore",
                 replicas: int = DEFAULT_REPLICAS,
                 journal_factory: Optional[
                     Callable[[str, int], ReplicaJournal]] = None,
                 snapshot_every: Optional[int] = None,
                 quorum: bool = False,
                 lease_duration: float = DEFAULT_LEASE_DURATION,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 link: Optional[LinkOracle] = None):
        if replicas < 1:
            raise WebFinditError("a co-database needs at least one replica")
        self.owner_name = owner_name
        self.ontology = ontology
        self._product = product
        #: Logical maintenance-write version of the whole set.
        self.epoch = 0
        self.snapshot_every = snapshot_every
        self._quorum = quorum
        self.lease_duration = lease_duration
        self._clock = clock
        self._sleep = sleep
        self._link = link
        #: The facade's own primary lease (quorum mode; lazily elected).
        self._lease: Optional[PrimaryLease] = None
        #: Election / write-outcome accounting for status and benches.
        self.elections = 0
        self.aborted_writes = 0
        self.fenced_writes = 0
        self._lock = threading.RLock()
        slug = owner_name.lower().replace(" ", "-")
        self.runtimes: list[ReplicaRuntime] = []
        for index in range(replicas):
            journal = journal_factory(owner_name, index) \
                if journal_factory is not None else ReplicaJournal()
            if journal.snapshot is not None or len(journal):
                # A durable journal from an earlier process: restore the
                # replica from it instead of starting empty — otherwise
                # new writes would re-issue already-used epochs and a
                # later replay would interleave the two runs.
                codatabase = self._rebuild(journal)
            else:
                codatabase = CoDatabase(owner_name, ontology=ontology,
                                        product=product)
            runtime = ReplicaRuntime(
                index=index, codatabase=codatabase, journal=journal,
                endpoint=(f"{slug}-r{index}.webfindit.net", 0))
            # Fencing promises are leases — volatile — but a restarted
            # process must not elect below a fence it already committed
            # under: seed the promise from the journaled high-water.
            runtime.lease.promised_fence = journal.last_fence
            self.runtimes.append(runtime)
        # The facade resumes from the most advanced replica; the others
        # (shorter journals after an unclean stop, or fresh replicas
        # when the factor was raised) catch up by anti-entropy.
        self.epoch = max(runtime.epoch for runtime in self.runtimes)
        if self.epoch:
            leader = max(self.runtimes, key=lambda runtime: runtime.epoch)
            payload = None
            for runtime in self.runtimes:
                if runtime.epoch == self.epoch:
                    continue
                if payload is None:
                    payload = export_codatabase(leader.codatabase)
                runtime.codatabase = import_codatabase(
                    payload, ontology=self.ontology)
                runtime.journal.install_snapshot(payload)

    # ------------------------------------------------------------- replicas --

    @property
    def primary(self) -> CoDatabase:
        """The primary's co-database (reads go here): the current lease
        holder under quorum, else the first live replica."""
        lease = self._lease
        if self._quorum and lease is not None \
                and self.runtimes[lease.index].alive:
            return self.runtimes[lease.index].codatabase
        for runtime in self.runtimes:
            if runtime.alive:
                return runtime.codatabase
        # All replicas down: keep serving in-process reads from r0 —
        # the *servers* are dead, the registry process is not.
        return self.runtimes[0].codatabase

    def live_runtimes(self) -> list[ReplicaRuntime]:
        return [runtime for runtime in self.runtimes if runtime.alive]

    def runtime(self, index: int) -> ReplicaRuntime:
        try:
            return self.runtimes[index]
        except IndexError:
            raise WebFinditError(
                f"co-database of {self.owner_name!r} has no replica "
                f"r{index}") from None

    # ------------------------------------------------------------ elections --

    def _connected(self, source: Optional[tuple],
                   destination: Optional[tuple]) -> bool:
        """Can a message travel *source* → *destination* right now?"""
        if self._link is None or source is None or destination is None:
            return True
        return bool(self._link(source, destination))

    def elect(self, candidate_index: Optional[int] = None) -> PrimaryLease:
        """Run a lease election and adopt the winner as the facade's
        primary.

        With *candidate_index* the named replica stands alone (chaos
        scripts use this to stage dual-primary contests); otherwise
        live replicas stand in index order until one collects a
        majority of grants.  The winning fence is one past the newest
        promise the candidate could observe, so it supersedes every
        lease a majority knows about.  Raises
        :class:`~repro.errors.ElectionLost` when no candidate reaches
        a quorum of the **configured** replica set.
        """
        with self._lock:
            if candidate_index is not None:
                return self._elect(self.runtime(candidate_index))
            last_error: Optional[ElectionLost] = None
            for runtime in self.runtimes:
                if not runtime.alive:
                    continue
                try:
                    return self._elect(runtime)
                except ElectionLost as exc:
                    last_error = exc
            if last_error is not None:
                raise last_error
            raise ElectionLost(
                f"no live replica of the co-database of "
                f"{self.owner_name!r} can stand for election")

    def _elect(self, candidate: ReplicaRuntime) -> PrimaryLease:
        if not candidate.alive:
            raise ElectionLost(
                f"candidate r{candidate.index} of {self.owner_name!r} "
                f"is dead")
        now = self._clock()
        reachable = [runtime for runtime in self.runtimes
                     if runtime.alive
                     and (runtime.index == candidate.index
                          or self._connected(candidate.endpoint,
                                             runtime.endpoint))]
        fence = max((runtime.lease.promised_fence
                     for runtime in reachable), default=0) + 1
        grants = frozenset(
            runtime.index for runtime in reachable
            if runtime.lease.grant(candidate.index, fence, now,
                                   self.lease_duration))
        needed = majority(len(self.runtimes))
        if len(grants) < needed:
            raise ElectionLost(
                f"candidate r{candidate.index} of {self.owner_name!r} "
                f"won {len(grants)} of {len(self.runtimes)} lease "
                f"grants at fence {fence} (quorum {needed})")
        self.elections += 1
        lease = PrimaryLease(index=candidate.index, fence=fence,
                             expires_at=now + self.lease_duration,
                             grants=grants)
        self._lease = lease
        return lease

    def _ensure_lease(self) -> PrimaryLease:
        """The facade's current lease, re-electing when it lapsed or
        its holder died."""
        lease = self._lease
        if lease is not None and lease.valid(self._clock()) \
                and self.runtimes[lease.index].alive:
            return lease
        return self.elect()

    # ------------------------------------------------------------- mutators --

    def _write(self, operation: str, *args: Any) -> None:
        """One registry-issued maintenance write, under the configured
        discipline: quorum (with automatic primary failover) or the
        legacy all-live fan-out."""
        if not self._quorum:
            self._fanout_write(operation, *args)
            return
        with self._lock:
            try:
                lease = self._ensure_lease()
                self._quorum_write(lease, operation, *args)
                return
            except (QuorumLost, FencedOut, LeaseExpired, ElectionLost):
                # The facade's primary lost its majority — partitioned
                # away, deposed, or its lease lapsed mid-write.  Fail
                # over: elect whichever replica can still win a quorum
                # and reissue (the aborted attempt journaled nothing
                # durably, so the retry cannot double-commit).
                pass
            lease = self._await_election()
            self._quorum_write(lease, operation, *args)

    def _await_election(self) -> PrimaryLease:
        """Elect a new primary, waiting out unexpired grants.

        A partitioned primary's lease blocks re-election on purpose —
        that is the mutual exclusion leases buy — so failover may have
        to wait until a majority's promises lapse.  Bounded by one
        lease duration (plus a margin); an election that still cannot
        win then has no majority anywhere, and the
        :class:`~repro.errors.ElectionLost` propagates.
        """
        pause = max(0.001, self.lease_duration / 20.0)
        deadline = self._clock() + self.lease_duration \
            + max(0.01, self.lease_duration / 2.0)
        while True:
            try:
                return self.elect()
            except ElectionLost:
                if self._clock() >= deadline:
                    raise
                self._sleep(pause)

    def write_as(self, lease: PrimaryLease, operation: str,
                 *args: Any) -> None:
        """Issue one write under an **explicit** lease, with no
        failover: the quorum/fencing verdict surfaces to the caller.
        This is the dual-primary instrument — chaos tests hold a
        deposed primary's lease and prove its writes can never commit.
        """
        self._quorum_write(lease, operation, *args)

    def _fanout_write(self, operation: str, *args: Any) -> None:
        """WAL + fan-out: journal first, then apply, on each live
        replica, all carrying the same post-write epoch.

        With *no* live replica the write is refused outright — bumping
        the epoch for a write nobody journals would lose it silently
        (anti-entropy has no source that knows it) and leave the facade
        permanently ahead of every replica.

        A write the *first* live replica rejects (application-level
        validation — an unknown coalition, say) is compensated: the
        journaled entry and the epoch bump are rolled back before the
        error propagates, so replay never re-raises it.  Replicas are
        deterministic state machines over the same prefix, so a write
        the first accepts should not fail on a sibling — but if one
        does (a durable-journal IO error, say), the sibling's entry is
        rolled back and the sibling is taken out of rotation so
        anti-entropy repairs it at recovery, instead of leaving a
        journaled-but-unapplied write behind.
        """
        with self._lock:
            if not self.live_runtimes():
                raise CommFailure(
                    f"all replicas of the co-database of "
                    f"{self.owner_name!r} are down; maintenance write "
                    f"{operation!r} refused")
            self.epoch += 1
            entry = JournalEntry(epoch=self.epoch, operation=operation,
                                 arguments=encode_operation(operation, args))
            applied = False
            for runtime in self.runtimes:
                if not runtime.alive:
                    continue  # a dead server misses the write (by design)
                try:
                    runtime.journal.append(entry)
                    getattr(runtime.codatabase, operation)(*args)
                except Exception:
                    runtime.journal.discard(entry.epoch)
                    if not applied:
                        self.epoch -= 1
                        raise
                    runtime.alive = False
                    continue
                applied = True
                if self.snapshot_every \
                        and len(runtime.journal) >= self.snapshot_every:
                    runtime.journal.install_snapshot(
                        export_codatabase(runtime.codatabase))

    def _quorum_write(self, lease: PrimaryLease, operation: str,
                      *args: Any) -> None:
        """Majority-quorum write under *lease*.

        Two phases, WAL-ordered: (1) the entry — stamped with the
        lease's fence — is offered to every replica the primary can
        reach; each replica refuses stamps below its promised fence
        and journals the rest.  (2) Only when a **majority of the
        configured set** journaled does the write commit (apply +
        epoch bump); otherwise every journaled copy is discarded and
        the write raises — :class:`~repro.errors.FencedOut` when a
        newer promise caused the shortfall (the primary is deposed),
        :class:`~repro.errors.QuorumLost` when the replicas simply
        were not there.  An aborted write consumes no epoch, so a
        fenced old primary leaves no trace a replay could resurrect.
        """
        with self._lock:
            now = self._clock()
            if not lease.valid(now):
                raise LeaseExpired(
                    f"lease of r{lease.index} over the co-database of "
                    f"{self.owner_name!r} (fence {lease.fence}) expired "
                    f"before write {operation!r}")
            primary = self.runtime(lease.index)
            if not primary.alive:
                raise QuorumLost(
                    f"primary r{lease.index} of {self.owner_name!r} is "
                    f"dead; write {operation!r} refused")
            epoch = self.epoch + 1
            entry = JournalEntry(epoch=epoch, operation=operation,
                                 arguments=encode_operation(operation, args),
                                 fence=lease.fence)
            acked: list[ReplicaRuntime] = []
            fenced = 0
            for runtime in self.runtimes:
                if not runtime.alive:
                    continue
                if runtime.index != primary.index \
                        and not self._connected(primary.endpoint,
                                                runtime.endpoint):
                    continue  # partitioned away: never sees the offer
                if not runtime.lease.admits(lease.fence):
                    fenced += 1
                    continue  # replica-side fencing: stale stamp refused
                try:
                    runtime.journal.append(entry)
                except Exception:
                    runtime.alive = False  # journal IO fault: quarantine
                    continue
                acked.append(runtime)
            needed = majority(len(self.runtimes))
            if len(acked) < needed:
                for runtime in acked:
                    runtime.journal.discard(epoch)
                self.aborted_writes += 1
                if fenced:
                    self.fenced_writes += 1
                    raise FencedOut(
                        f"write {operation!r} by r{lease.index} of "
                        f"{self.owner_name!r} carries stale fence "
                        f"{lease.fence}: a newer lease has been promised")
                raise QuorumLost(
                    f"write {operation!r} on the co-database of "
                    f"{self.owner_name!r} reached {len(acked)} of "
                    f"{len(self.runtimes)} replicas (quorum {needed})")
            # Quorum journaled: commit.  Validation failures are
            # deterministic over the shared prefix, so probing the
            # first replica decides for all — a refusal compensates
            # every journaled copy before the error propagates.
            try:
                getattr(acked[0].codatabase, operation)(*args)
            except Exception:
                for runtime in acked:
                    runtime.journal.discard(epoch)
                raise
            for runtime in acked[1:]:
                try:
                    getattr(runtime.codatabase, operation)(*args)
                except Exception:
                    runtime.journal.discard(epoch)
                    runtime.alive = False  # quarantine for anti-entropy
            self.epoch = epoch
            lease.commits += 1
            for runtime in acked:
                if runtime.alive and self.snapshot_every \
                        and len(runtime.journal) >= self.snapshot_every:
                    runtime.journal.install_snapshot(
                        export_codatabase(runtime.codatabase))

    # The full mutator surface of CoDatabase, journaled and fanned out.

    def advertise(self, description) -> None:
        self._write("advertise", description)

    def register_coalition(self, coalition) -> None:
        self._write("register_coalition", coalition)

    def record_membership(self, coalition_name: str) -> None:
        self._write("record_membership", coalition_name)

    def drop_membership(self, coalition_name: str) -> None:
        self._write("drop_membership", coalition_name)

    def add_member(self, coalition_name: str, description) -> None:
        self._write("add_member", coalition_name, description)

    def remove_member(self, coalition_name: str, source_name: str) -> None:
        self._write("remove_member", coalition_name, source_name)

    def forget_coalition(self, coalition_name: str) -> None:
        self._write("forget_coalition", coalition_name)

    def add_service_link(self, link) -> None:
        self._write("add_service_link", link)

    def remove_service_link(self, link) -> None:
        self._write("remove_service_link", link)

    def attach_document(self, source_name: str, format_name: str,
                        content: str, url: str = "") -> None:
        self._write("attach_document", source_name, format_name, content, url)

    # --------------------------------------------------------------- reads --

    @property
    def memberships(self) -> list[str]:
        return self.primary.memberships

    @property
    def local_description(self):
        return self.primary.local_description

    def __getattr__(self, name: str):
        # Read operations (find_coalitions, service_links, ...) and
        # inspection helpers delegate to the first live replica.
        # Mutators are defined explicitly above and never reach here.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.primary, name)

    # ---------------------------------------------------- crash & recovery --

    def _rebuild(self, journal: ReplicaJournal) -> CoDatabase:
        """Rebuild one replica's co-database from its journal: latest
        snapshot (or empty) plus the journal tail."""
        if journal.snapshot is not None:
            codatabase = import_codatabase(journal.snapshot,
                                           ontology=self.ontology)
        else:
            codatabase = CoDatabase(self.owner_name, ontology=self.ontology,
                                    product=self._product)
        replay_entries(codatabase, journal.entries_after(codatabase.epoch))
        return codatabase

    def mark_dead(self, index: int) -> ReplicaRuntime:
        """Freeze replica *index* at its current epoch (server killed):
        its journal stops receiving writes until recovery."""
        with self._lock:
            runtime = self.runtime(index)
            runtime.alive = False
            return runtime

    def reconcile(self) -> int:
        """Anti-entropy sweep over **live** laggards.

        A partitioned replica is not dead — it kept its servant and
        its journal, it just missed the quorum writes committed on the
        other side.  Once the partition heals, this replays the missing
        suffix from the most advanced live replica into each laggard,
        journaling as it goes (so durability follows).  A gap the
        leader's journal no longer covers (snapshot-truncated) marks
        the laggard dead for the full :meth:`recover` path instead.
        Returns how many replicas caught up in place.
        """
        with self._lock:
            live = self.live_runtimes()
            if not live:
                return 0
            leader = max(live, key=lambda runtime: runtime.epoch)
            healed = 0
            for runtime in live:
                if runtime is leader or runtime.epoch >= leader.epoch:
                    continue
                missing = leader.journal.entries_after(runtime.epoch)
                expected = list(range(runtime.epoch + 1, leader.epoch + 1))
                if [entry.epoch for entry in missing] != expected:
                    runtime.alive = False  # needs snapshot recovery
                    continue
                for entry in missing:
                    runtime.journal.append(entry)
                    apply_entry(runtime.codatabase, entry)
                healed += 1
            return healed

    def recover(self, index: int) -> ReplicaRuntime:
        """Crash-recover replica *index*: snapshot + journal replay,
        then anti-entropy from a live peer when the set moved on.

        Returns the runtime with a rebuilt, caught-up co-database; the
        system layer re-activates the servant and re-binds its IOR.
        """
        with self._lock:
            runtime = self.runtime(index)
            if runtime.alive:
                raise WebFinditError(
                    f"replica r{index} of {self.owner_name!r} is alive; "
                    f"kill it before recovering")
            journal = runtime.journal
            codatabase = self._rebuild(journal)
            if codatabase.epoch < self.epoch:
                # The set advanced while this replica was down and its
                # own journal cannot know the missed writes: catch up
                # from a live peer's full state (Bayou-style
                # anti-entropy, collapsed to a snapshot install).
                payload = export_codatabase(self.primary)
                codatabase = import_codatabase(payload,
                                               ontology=self.ontology)
                journal.install_snapshot(payload)
            runtime.codatabase = codatabase
            runtime.alive = True
            runtime.restarts += 1
            return runtime

    # --------------------------------------------------------------- status --

    def lease_status(self) -> dict[str, Any]:
        """The election-side view: fence, holder, expiry, outcomes."""
        with self._lock:
            now = self._clock()
            lease = self._lease
            holder = None
            if lease is not None and lease.valid(now) \
                    and self.runtimes[lease.index].alive:
                holder = f"r{lease.index}"
            fence = lease.fence if lease is not None else max(
                runtime.lease.promised_fence for runtime in self.runtimes)
            return {
                "quorum": self._quorum,
                "majority": majority(len(self.runtimes)),
                "fence": fence,
                "holder": holder,
                "expires_in": (round(max(0.0, lease.expires_at - now), 3)
                               if lease is not None else 0.0),
                "elections": self.elections,
                "aborted_writes": self.aborted_writes,
                "fenced_writes": self.fenced_writes,
            }

    def status(self, health: Optional[HealthBoard] = None) -> dict[str, Any]:
        """Per-replica view for ``\\replicas`` / ``\\health``."""
        replicas = []
        for runtime in self.runtimes:
            entry = {
                "name": runtime.name,
                "alive": runtime.alive,
                "epoch": runtime.epoch,
                "lag": self.epoch - runtime.epoch,
                "journal_entries": len(runtime.journal),
                "restarts": runtime.restarts,
                "durable": runtime.journal.path is not None,
                "promised_fence": runtime.lease.promised_fence,
            }
            if health is not None:
                entry["breaker"] = health.state(
                    replica_key(self.owner_name, runtime.index))
            replicas.append(entry)
        status = {"owner": self.owner_name, "epoch": self.epoch,
                  "replicas": replicas}
        if self._quorum:
            status["lease"] = self.lease_status()
        return status


def replica_key(source_name: str, index: int) -> str:
    """HealthBoard key of one replica endpoint."""
    return f"{source_name}/r{index}"


@dataclass
class ReplicaTarget:
    """What the failover client needs to reach one replica."""

    key: str           # health-board key, e.g. "RBH/r0"
    binding: str       # naming path, e.g. "webfindit/codb/RBH/r0"
    proxy: Callable[[], Any]          # current (possibly cached) proxy
    refresh: Callable[[], tuple[Any, bool]]  # re-resolve; -> (proxy, changed)


class FailoverCoDatabaseClient(CoDatabaseClient):
    """A co-database client that routes across the replica set.

    Order of preference is replica order (primary first).  A replica is
    skipped without a call when its breaker is open; a transport-level
    failure (refused, dropped, timed out) records a per-replica health
    failure, then tries a **naming re-resolve**: when the binding's
    generation changed (the server restarted and re-bound), the retry
    goes to the fresh IOR — closing the stale-IOR window — otherwise
    the caller fails over to the next sibling.  Only when every replica
    fails does the call raise, which is what lets the discovery layer
    mark the co-database degraded only when *all* replicas are down.

    With a :class:`~repro.core.metacache.MetadataCache` attached, the
    four cacheable reads are served from / stored into the cache tagged
    with the serving replica's epoch; a failover that lands on a
    replica at a different epoch therefore invalidates rather than
    reuses the entries (`invalidate_source` is also fired so detail
    reads cannot mix).
    """

    def __init__(self, name: str, targets: list[ReplicaTarget],
                 health: HealthBoard,
                 cache: Optional[MetadataCache] = None,
                 hedge: Optional[HedgePolicy] = None):
        if not targets:
            raise WebFinditError(f"no replicas known for {name!r}")
        super().__init__(targets[0].proxy(), name)
        self._targets = targets
        self._health = health
        self._cache = cache
        #: Hedged reads: with a policy attached and >= 2 healthy
        #: replicas, a primary slower than the rolling p99 gets a
        #: second copy fired at a sibling, first success wins.  Safe
        #: because every co-database operation routed here is an
        #: idempotent metadata read.
        self._hedge = hedge
        #: Epoch of the replica currently serving this client (learned
        #: lazily, refreshed after every failover).
        self._serving_epoch: Optional[int] = None
        self._serving_index = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Failovers this client performed (result accounting).
        self.failovers = 0

    # ------------------------------------------------------------- routing --

    def _invoke_target(self, target: ReplicaTarget, operation: str,
                       *args: Any) -> Any:
        proxy = target.proxy()
        with call_policy(idempotent=True):
            try:
                return proxy.invoke(operation, *args)
            except FAILURE_ERRORS:
                # The cached IOR may be stale: the server might have
                # restarted and re-bound.  One generation-checked
                # re-resolve; a changed generation means a fresh
                # endpoint worth one immediate retry.
                refreshed, changed = target.refresh()
                if not changed:
                    raise
                return refreshed.invoke(operation, *args)

    def _routed_call(self, operation: str, *args: Any) -> Any:
        last_error: Optional[Exception] = None
        start = self._serving_index if self._serving_index \
            < len(self._targets) else 0
        order = [*range(start, len(self._targets)), *range(0, start)]
        allowed = [index for index in order
                   if self._health.allow(self._targets[index].key)]
        remaining = allowed
        # The epoch probe is fired from the failover bookkeeping itself;
        # hedging it could bounce the serving index between two replicas
        # (each win re-probing the other), so it always runs sequential.
        if self._hedge is not None and len(allowed) >= 2 \
                and operation != "epoch":
            try:
                value, winner = self._hedged_pair(
                    allowed[0], allowed[1], operation, *args)
            except FAILURE_ERRORS as exc:
                last_error = exc
                remaining = allowed[2:]
            else:
                if winner is not None:
                    if winner != self._serving_index:
                        self._failed_over(self._targets[winner], winner)
                    return value
                # Primary failed fast, before the hedge delay elapsed:
                # nothing was hedged, fall through to plain sequential
                # failover over the rest of the ring.
                remaining = allowed[1:]
        for index in remaining:
            target = self._targets[index]
            try:
                value = self._invoke_target(target, operation, *args)
            except FAILURE_ERRORS as exc:
                self._health.record(target.key, ok=False)
                last_error = exc
                continue
            self._health.record(target.key, ok=True)
            if index != self._serving_index:
                self._failed_over(target, index)
            return value
        if last_error is not None:
            raise last_error
        raise CommFailure(
            f"all {len(self._targets)} replicas of the co-database of "
            f"{self.name!r} have open circuits")

    def _hedged_pair(self, primary_index: int, backup_index: int,
                     operation: str, *args: Any) -> tuple[Any, Optional[int]]:
        """Attempt ``primary_index``; hedge to ``backup_index`` at p99.

        Returns ``(value, winner_index)`` when either attempt succeeds,
        ``(None, None)`` when the primary failed *before* the hedge
        delay elapsed (the caller should continue plain failover from
        the backup onwards — no hedge fired, nothing to account), and
        raises the last failure when both attempts lose.
        """
        assert self._hedge is not None
        hedge = self._hedge
        primary = self._targets[primary_index]
        policy = current_policy()
        done = threading.Event()
        outcome: dict[str, Any] = {}

        def run_primary() -> None:
            # Thread-locals do not cross threads: re-install the
            # caller's policy so deadline budgets and retry budgets
            # propagate into the hedged attempt.
            with call_policy(deadline=policy.deadline, idempotent=True,
                             traffic_class=policy.traffic_class,
                             retry_budget=policy.retry_budget,
                             attempt=policy.attempt):
                began = time.monotonic()
                try:
                    outcome["value"] = self._invoke_target(
                        primary, operation, *args)
                except FAILURE_ERRORS as exc:
                    outcome["error"] = exc
                    self._health.record(primary.key, ok=False)
                else:
                    hedge.observe(self.name, time.monotonic() - began)
                    self._health.record(primary.key, ok=True)
                finally:
                    done.set()

        worker = threading.Thread(target=run_primary, daemon=True,
                                  name=f"hedge-primary-{self.name}")
        worker.start()
        if done.wait(hedge.hedge_delay(self.name)):
            if "value" in outcome:
                return outcome["value"], primary_index
            # Fast failure: signal the caller to keep failing over
            # sequentially — hedging is for *slow* primaries.
            return None, None
        # The primary is slower than the rolling p99: fire the hedge
        # against the backup inline.  First success wins; the loser is
        # simply discarded (all routed operations are idempotent reads).
        backup = self._targets[backup_index]
        began = time.monotonic()
        try:
            value = self._invoke_target(backup, operation, *args)
        except FAILURE_ERRORS as exc:
            self._health.record(backup.key, ok=False)
            # The hedge fired precisely because the primary is
            # tail-slow, so this wait must not stall the caller past
            # its deadline behind the very straggler hedging exists to
            # escape: grant the primary only the remaining deadline
            # budget, then surface the backup's failure and let the
            # detached primary thread finish in the background.  With
            # no deadline the wait is still bounded in practice — the
            # primary attempt's socket timeouts settle ``done``.
            if policy.deadline is not None:
                settled = done.wait(max(0.0, policy.deadline.remaining()))
            else:
                settled = done.wait()
            hedge.record_hedge(won=False)
            if settled and "value" in outcome:
                return outcome["value"], primary_index
            raise exc
        hedge.observe(self.name, time.monotonic() - began)
        self._health.record(backup.key, ok=True)
        hedge.record_hedge(won=True)
        return value, backup_index

    def _failed_over(self, target: ReplicaTarget, index: int) -> None:
        """Bookkeeping after routing away from the current replica."""
        self.failovers += 1
        self._serving_index = index
        previous_epoch = self._serving_epoch
        self._serving_epoch = None
        epoch = self._current_epoch()
        if self._cache is not None and epoch != previous_epoch:
            # Entries cached from the old replica are tagged with its
            # epoch; a mismatch means they can no longer be trusted to
            # agree with what this replica will serve.
            self._cache.invalidate_source(self.name)

    def _current_epoch(self) -> Optional[int]:
        if self._serving_epoch is None:
            try:
                self._serving_epoch = int(self._routed_call("epoch"))
            except FAILURE_ERRORS:
                return None
        return self._serving_epoch

    # ----------------------------------------------------- CoDatabaseClient --

    def _call(self, operation: str, *args: Any) -> Any:
        if self._cache is None or operation not in CACHEABLE_OPERATIONS:
            self.calls += 1
            return self._routed_call(operation, *args)
        epoch = self._current_epoch()
        if epoch is None:
            # The epoch probe failed transiently: bypass the cache
            # entirely — an UNVERSIONED entry would match any epoch on
            # lookup and so survive the failover invalidation.
            self.calls += 1
            return self._routed_call(operation, *args)
        hit, value = self._cache.lookup(self.name, operation, args,
                                        epoch=epoch)
        if hit:
            self.cache_hits += 1
            return value
        self.cache_misses += 1
        self.calls += 1
        value = self._routed_call(operation, *args)
        if self._serving_epoch is not None:
            # The routed call may have failed over and the epoch of the
            # new serving replica may be unknown; same rule as above.
            self._cache.store(self.name, operation, args, value,
                              epoch=self._serving_epoch)
        return value
