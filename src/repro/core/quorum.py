"""Lease-based primary election primitives for replicated co-databases.

The paper's federation is a set of autonomous sites; PR 3 gave each
co-database N replica servants but left *who may write* implicit — the
in-process facade was the only writer, so there was no concurrent-
writer or split-brain story.  This module supplies the missing
coordination vocabulary, used by
:class:`~repro.core.replication.ReplicatedCoDatabase` when quorum mode
is on:

* :class:`LeaseState` — the **replica-side** half: the newest fencing
  epoch this replica has promised, to whom, and until when.  A replica
  grants a lease to a candidate only for a fence newer than anything it
  promised before, and only when no *unexpired* lease is held by
  someone else.  Time-boxing is what makes a dead primary's authority
  expire instead of blocking elections forever.
* :class:`PrimaryLease` — the **candidate-side** half: proof of a won
  election.  It names the replica acting as primary, the fencing epoch
  the majority granted, the grant set, and the expiry instant.  Every
  quorum write is stamped with its fence; replicas refuse stamps older
  than their promise, so a deposed primary — however partitioned,
  however convinced it is still in charge — can never commit once a
  newer lease exists (see ``docs/quorum.md`` for the failure matrix).
* :func:`majority` — the quorum size over the **configured** replica
  set.  Counting dead or partitioned replicas in the denominator is
  deliberate: it is exactly what stops two minority sides from both
  finding "a majority of whoever I can reach".

Clocks are injectable everywhere (``clock=time.monotonic`` by default)
so expiry scenarios are deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


def majority(replicas: int) -> int:
    """Quorum size over a replica set of *replicas* members."""
    return replicas // 2 + 1


@dataclass
class LeaseState:
    """What one replica remembers about leases (volatile, per process).

    ``promised_fence`` is this replica's write-fence: journal appends
    stamped with an older fence are refused.  It only moves forward.
    """

    promised_fence: int = 0
    holder: Optional[int] = None
    expires_at: float = 0.0

    def grant(self, candidate: int, fence: int, now: float,
              duration: float) -> bool:
        """Grant *candidate* a lease at *fence*, if admissible.

        Refused when the fence is not newer than the promise, or when a
        different holder's lease has not yet expired.  A successful
        grant advances the promise — this replica will reject every
        write fenced below *fence* from now on, which is the fencing
        half of the protocol.
        """
        if fence <= self.promised_fence:
            return False
        if self.holder is not None and self.holder != candidate \
                and now < self.expires_at:
            return False
        self.promised_fence = fence
        self.holder = candidate
        self.expires_at = now + duration
        return True

    def admits(self, fence: int) -> bool:
        """Replica-side write check: is *fence* current enough?"""
        return fence >= self.promised_fence


@dataclass
class PrimaryLease:
    """A won election: the authority to issue quorum writes.

    Held by the facade for registry traffic, or explicitly by chaos
    tests and benches that script dual-primary scenarios (an old
    holder keeps its instance while a new election happens elsewhere).
    """

    index: int                 #: replica acting as primary
    fence: int                 #: fencing epoch the majority granted
    expires_at: float          #: lease expiry (holder-side clock)
    grants: frozenset[int] = field(default_factory=frozenset)
    #: Writes committed under this lease (status/bench accounting).
    commits: int = 0

    def valid(self, now: float) -> bool:
        return now < self.expires_at
