"""The WebFINDIT system facade — wiring all four layers together.

:class:`WebFinditSystem` owns the communication fabric (one transport,
one ORB per product, a naming service), the administrative
:class:`~repro.core.registry.Registry`, and the deployment records that
Figure 2 describes: which DBMS sits behind which ORB product through
which gateway kind.

Registering a source:

1. creates its co-database (metadata layer) and activates a
   :class:`~repro.core.codatabase.CoDatabaseServant` on the chosen ORB;
2. wraps the native database in the right ISI — relational sources go
   through the JDBC-style gateway, object sources through direct
   binding (C++ analogue) or JNI-style binding — and activates the
   wrapper as a CORBA object;
3. binds both IORs in the naming service
   (``webfindit/codb/<name>``, ``webfindit/isi/<name>``).

Browsers obtained from :meth:`browser` then exercise the full stack:
WebTassili text → query processor → GIOP over the transport →
co-database / wrapper servants → native engines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.core.browser import Browser
from repro.core.cachetier import (CACHE_TIER_INTERFACE, CacheTierClient,
                                  CacheTierServant, InvalidationBroadcaster,
                                  TieredCoDatabaseClient)
from repro.core.codatabase import CODATABASE_INTERFACE, CoDatabaseServant
from repro.core.discovery import CoDatabaseClient
from repro.core.journal import ReplicaJournal
from repro.core.metacache import CachingCoDatabaseClient, MetadataCache
from repro.core.model import Ontology, SourceDescription
from repro.core.query_processor import QueryProcessor, Session
from repro.core.registry import Registry
from repro.core.replication import (DEFAULT_LEASE_DURATION,
                                    FailoverCoDatabaseClient,
                                    ReplicatedCoDatabase, ReplicaTarget,
                                    replica_binding, replica_key)
from repro.core.resilience import BACKGROUND, ResiliencePolicy, call_policy
from repro.core.service_link import EndpointKind, ServiceLink
from repro.core.sharding import (REGISTRY_SHARD_INTERFACE,
                                 RegistryShardServant, RemoteShard,
                                 ShardedRegistryClient)
from repro.errors import CommFailure, UnknownDatabase, WebFinditError
from repro.gateway.api import DriverManager
from repro.gateway.drivers import LocalDriver
from repro.oodb.database import ObjectDatabase
from repro.orb.ior import Ior
from repro.orb.naming import start_naming_service
from repro.orb.orb import Orb
from repro.orb.products import (ORBIX, ORBIXWEB, VISIBROKER, OrbProduct,
                                create_orb, get_product)
from repro.orb.transport import InMemoryNetwork, Transport
from repro.sql.engine import Database
from repro.wrappers.base import ExportedType, InformationSourceInterface
from repro.wrappers.objectstore import ObjectDbWrapper
from repro.wrappers.relational import RelationalWrapper
from repro.wrappers.remote import ISI_INTERFACE, RemoteIsi, serve_isi


@dataclass
class DeploymentRecord:
    """How one source is deployed (the rows of Figure 2)."""

    source_name: str
    dbms: str
    orb_product: str
    gateway: str  # "jdbc" | "c++" | "jni"
    location: str


class WebFinditSystem:
    """A running WebFINDIT federation."""

    def __init__(self, transport: Optional[Transport] = None,
                 ontology: Optional[Ontology] = None,
                 metadata_cache: Optional[MetadataCache] = None,
                 parallel_discovery: bool = False,
                 discovery_workers: Optional[int] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 isolate_sources: bool = False,
                 replication_factor: int = 1,
                 durable_dir: Optional[str] = None,
                 snapshot_every: Optional[int] = None,
                 quorum: bool = False,
                 journal_sync: str = "never",
                 lease_duration: float = DEFAULT_LEASE_DURATION,
                 shards: int = 1,
                 shard_service_time: float = 0.0,
                 cache_tier: bool = False,
                 cache_tier_ttl: float = 300.0):
        self.transport = transport if transport is not None \
            else InMemoryNetwork()
        self.ontology = ontology
        #: Hot-path knobs: a shared TTL cache over co-database reads
        #: (invalidated by registry mutations) and concurrent frontier
        #: fan-out in every DiscoveryEngine this system hands out.
        self.metadata_cache = metadata_cache
        self.parallel_discovery = parallel_discovery
        self.discovery_workers = discovery_workers
        #: One ORB (hence one transport endpoint) *per source* instead
        #: of one per product — each site runs its own server, so a
        #: fault plan can kill exactly one co-database's endpoint.
        self.isolate_sources = isolate_sources
        #: Availability knobs: N replica servants per co-database, each
        #: on its own endpoint, with write-ahead journals (on disk when
        #: *durable_dir* is set) and optional snapshot cadence.  The
        #: defaults keep the seed's single-servant behaviour.
        self.replication_factor = max(1, replication_factor)
        self.durable_dir = durable_dir
        self.snapshot_every = snapshot_every
        #: Consistency knobs: majority-quorum writes under lease-fenced
        #: primary election (see ``docs/quorum.md``), and the journal's
        #: group-commit fsync policy ("never" | "batch" | "always").
        self.quorum = quorum
        self.journal_sync = journal_sync
        self.lease_duration = lease_duration
        self._replicated: dict[str, ReplicatedCoDatabase] = {}
        #: Generation-checked proxy cache: naming binding -> (proxy,
        #: generation).  Shared by every failover client so one
        #: re-resolve heals them all.
        self._replica_proxies: dict[str, tuple] = {}
        replicate = (self.replication_factor > 1
                     or durable_dir is not None
                     or snapshot_every is not None
                     or quorum)
        #: Scaling knobs: N registry shards behind a consistent-hash
        #: ring (each exported on its own ORB endpoint, see
        #: ``docs/sharding.md``) and an optional shared cache tier that
        #: peers consult before crossing GIOP to a co-database.
        #: ``shards=1`` keeps the seed's singleton registry.
        self.shards = max(1, shards)
        self.shard_service_time = shard_service_time
        self.cache_tier = cache_tier
        self._cache_tier_ttl = cache_tier_ttl
        codatabase_factory = (self._replicated_codatabase
                              if replicate else None)
        if self.shards > 1:
            self.registry: Registry | ShardedRegistryClient = \
                ShardedRegistryClient.local(
                    self.shards, ontology=ontology,
                    codatabase_factory=codatabase_factory)
        else:
            self.registry = Registry(ontology=ontology,
                                     codatabase_factory=codatabase_factory)
        #: Fault-tolerance policy every query processor shares.  Its
        #: health board *is* the registry's, so breaker memory persists
        #: across sessions and engines (and `remove_source` clears it).
        if resilience is None:
            resilience = ResiliencePolicy(health=self.registry.health)
        else:
            self.registry.health = resilience.health
        self.resilience = resilience
        if metadata_cache is not None:
            self.registry.add_invalidation_listener(
                metadata_cache.invalidate)
        self._orbs: dict[str, Orb] = {}
        self._system_orb = Orb(name="webfindit-system",
                               transport=self.transport,
                               host="system.webfindit.net",
                               product="WebFINDIT")
        __, self.naming = start_naming_service(self._system_orb)
        #: Sharded deployments export every shard as its own registry
        #: servant (``webfindit/registry/shard<i>``) so remote peers can
        #: run the same ring-routed coordination over GIOP.
        self._shard_orbs: list[Orb] = []
        self._shard_servants: list[RegistryShardServant] = []
        if self.shards > 1:
            for index, shard in enumerate(self.registry.shards):
                orb = Orb(name=f"webfindit-registry-shard{index}",
                          transport=self.transport,
                          host=f"registry-shard{index}.webfindit.net",
                          product="WebFINDIT")
                servant = RegistryShardServant(
                    shard, service_time=self.shard_service_time)
                ior = orb.activate(servant, REGISTRY_SHARD_INTERFACE,
                                   object_name=f"registry-shard{index}")
                self.naming.bind(f"webfindit/registry/shard{index}", ior)
                self._shard_orbs.append(orb)
                self._shard_servants.append(servant)
        #: The shared cache tier: one CacheTierServant on its own
        #: endpoint, plus one invalidation broadcaster per registry
        #: shard pushing epoch floors at every mutation.
        self.cache_tier_servant: Optional[CacheTierServant] = None
        self._cache_tier_client: Optional[CacheTierClient] = None
        self._cache_orb: Optional[Orb] = None
        self._cache_tier_alive = False
        self._cache_tier_restarts = 0
        self._broadcasters: list[InvalidationBroadcaster] = []
        if cache_tier:
            self._start_cache_tier(initial=True)
            shard_registries = (list(self.registry.shards)
                                if self.shards > 1 else [self.registry])
            for index, registry in enumerate(shard_registries):
                broadcaster = InvalidationBroadcaster(
                    registry, deliver=self._deliver_invalidation,
                    origin=f"shard{index}")
                registry.add_invalidation_listener(broadcaster)
                self._broadcasters.append(broadcaster)
        self._deployments: dict[str, DeploymentRecord] = {}
        self._wrappers: dict[str, InformationSourceInterface] = {}
        self._ior_cache: dict[str, Ior] = {}
        self._remote_isi_cache: dict[str, RemoteIsi] = {}
        self.driver_manager = DriverManager()
        self._local_drivers: dict[str, LocalDriver] = {}

    # -------------------------------------------------------------------- ORBs --

    def orb_for(self, product: OrbProduct) -> Orb:
        """The (single) ORB instance for one product, created on demand."""
        key = product.name
        orb = self._orbs.get(key)
        if orb is None:
            host = f"{product.name.lower().replace(' ', '-')}.webfindit.net"
            orb = create_orb(product, self.transport, host=host)
            self._orbs[key] = orb
        return orb

    def orbs(self) -> list[Orb]:
        return list(self._orbs.values())

    def _source_orb(self, source_name: str, product: OrbProduct) -> Orb:
        """A dedicated ORB for one source's servants (isolated mode)."""
        key = f"{product.name}/{source_name}"
        orb = self._orbs.get(key)
        if orb is None:
            host = (f"{source_name.lower().replace(' ', '-')}"
                    f".webfindit.net")
            orb = create_orb(product, self.transport, host=host)
            self._orbs[key] = orb
        return orb

    def _replica_orb(self, source_name: str, index: int,
                     product: OrbProduct) -> Orb:
        """A fresh ORB for one co-database replica.

        Every replica gets its own endpoint so killing one closes
        exactly that replica's port; a restart *replaces* the entry (a
        recovered server is a new process on a new port).
        """
        key = f"{product.name}/{source_name}/r{index}"
        host = (f"{source_name.lower().replace(' ', '-')}"
                f"-r{index}.webfindit.net")
        orb = create_orb(product, self.transport, host=host)
        self._orbs[key] = orb
        return orb

    # ------------------------------------------------------------- registration --

    def register_relational_source(
            self, database: Database, description: SourceDescription,
            exported_types: Optional[list[ExportedType]] = None,
            orb_product: OrbProduct = VISIBROKER) -> RelationalWrapper:
        """Deploy a relational source: JDBC gateway + Java-side CORBA object."""
        driver = self._driver_for(database)
        connection = driver.connect(
            f"jdbc:{driver.subprotocol}:{database.name}")
        wrapper = RelationalWrapper(description.name, connection,
                                    dialect=database.dialect,
                                    exported_types=exported_types)
        self._deploy(wrapper, description, dbms=database.dialect.product,
                     orb_product=orb_product, gateway="jdbc")
        return wrapper

    def register_object_source(
            self, database: ObjectDatabase, description: SourceDescription,
            exported_types: Optional[list[ExportedType]] = None,
            orb_product: OrbProduct = ORBIX) -> ObjectDbWrapper:
        """Deploy an object source.

        Mirrors Figure 2's bindings: a C++ ORB (Orbix) reaches the store
        by direct method invocation, a Java ORB (OrbixWeb/VisiBroker)
        goes through JNI.
        """
        binding_style = "c++" if orb_product.language == "C++" else "jni"
        wrapper = ObjectDbWrapper(description.name, database,
                                  binding_style=binding_style,
                                  exported_types=exported_types)
        self._deploy(wrapper, description, dbms=database.product,
                     orb_product=orb_product, gateway=binding_style)
        return wrapper

    def _driver_for(self, database: Database) -> LocalDriver:
        name = database.dialect.name
        driver = self._local_drivers.get(name)
        if driver is None:
            driver = LocalDriver(name, name)
            self._local_drivers[name] = driver
            self.driver_manager.register(driver)
        driver.register_database(database)
        return driver

    def _replicated_codatabase(self, name: str) -> ReplicatedCoDatabase:
        """Registry hook: build the replica set behind one co-database."""
        journal_factory = None
        if self.durable_dir is not None:
            root = self.durable_dir
            sync = self.journal_sync

            def journal_factory(owner: str, index: int) -> ReplicaJournal:
                slug = owner.lower().replace(" ", "-").replace("/", "-")
                directory = os.path.join(root, slug, f"r{index}")
                # Pre-v2 deployments journalled to journal.jsonl; keep
                # appending to an existing file (the journal sniffs its
                # format), new replicas get the checksummed v2 log.
                legacy = os.path.join(directory, "journal.jsonl")
                path = legacy if os.path.exists(legacy) \
                    else os.path.join(directory, "journal.wal")
                return ReplicaJournal(path, sync=sync)

        # A partition scripted on the transport also cuts replica↔
        # replica links for quorum accounting, via the fault DSL's
        # link oracle (plain transports have none: all links up).
        oracle = getattr(self.transport, "link_oracle", None)
        facade = ReplicatedCoDatabase(
            name, ontology=self.ontology,
            replicas=self.replication_factor,
            journal_factory=journal_factory,
            snapshot_every=self.snapshot_every,
            quorum=self.quorum,
            lease_duration=self.lease_duration,
            link=oracle() if callable(oracle) else None)
        self._replicated[name] = facade
        return facade

    def _deploy_replicas(self, name: str, facade: ReplicatedCoDatabase,
                         product: OrbProduct) -> Ior:
        """Activate one CoDatabaseServant per replica, each on its own
        ORB, bound under ``webfindit/codb/<name>/r<i>``.

        Returns r0's IOR so the base ``webfindit/codb/<name>`` binding
        (what non-failover clients resolve) points at the primary.
        """
        for runtime in facade.runtimes:
            orb = self._replica_orb(name, runtime.index, product)
            servant = CoDatabaseServant(runtime.codatabase)
            ior = orb.activate(servant, CODATABASE_INTERFACE,
                               object_name=f"codb-{name}-r{runtime.index}")
            runtime.orb, runtime.ior, runtime.servant = orb, ior, servant
            # Quorum link checks and partition rules key on the real
            # transport endpoint, not the pre-deployment placeholder.
            runtime.endpoint = ior.primary.endpoint
            self.naming.bind(replica_binding(name, runtime.index), ior)
        return facade.runtimes[0].ior

    def _deploy(self, wrapper: InformationSourceInterface,
                description: SourceDescription, dbms: str,
                orb_product: OrbProduct, gateway: str) -> None:
        name = description.name
        if name in self._deployments:
            raise WebFinditError(f"source {name!r} already deployed")
        if not description.wrapper:
            description.wrapper = (f"{description.location or 'localhost'}"
                                   f"/{wrapper.wrapper_name}")
        if not description.dbms:
            description.dbms = dbms
        description.orb_product = orb_product.name
        if not description.interface:
            description.interface = [t.name
                                     for t in wrapper.exported_types()]
        if not description.structure:
            vocabulary: list[str] = []
            for exported in wrapper.exported_types():
                vocabulary.extend(a.name for a in exported.attributes)
                vocabulary.extend(f.name for f in exported.functions)
            description.structure = vocabulary

        codatabase = self.registry.add_source(description)
        orb = self._source_orb(name, orb_product) if self.isolate_sources \
            else self.orb_for(orb_product)
        if isinstance(codatabase, ReplicatedCoDatabase):
            codb_ior = self._deploy_replicas(name, codatabase, orb_product)
        else:
            codb_ior = orb.activate(CoDatabaseServant(codatabase),
                                    CODATABASE_INTERFACE,
                                    object_name=f"codb-{name}")
        isi_ior = serve_isi(orb, wrapper, object_name=f"isi-{name}")
        self.naming.bind(f"webfindit/codb/{name}", codb_ior)
        self.naming.bind(f"webfindit/isi/{name}", isi_ior)
        self._wrappers[name] = wrapper
        self._deployments[name] = DeploymentRecord(
            source_name=name, dbms=dbms, orb_product=orb_product.name,
            gateway=gateway, location=description.location)

    # ----------------------------------------------------------------- topology --

    def create_coalition(self, name: str, information_type: str,
                         parent: Optional[str] = None, doc: str = ""):
        return self.registry.create_coalition(name, information_type,
                                              parent=parent, doc=doc)

    def join(self, database_name: str, coalition_name: str) -> None:
        self.registry.join(database_name, coalition_name)

    def leave(self, database_name: str, coalition_name: str) -> None:
        self.registry.leave(database_name, coalition_name)

    def link(self, from_kind: str, from_name: str, to_kind: str,
             to_name: str, information_type: str = "",
             description: str = "") -> ServiceLink:
        """Establish a service link between the named endpoints."""
        service_link = ServiceLink(
            from_kind=EndpointKind.parse(from_kind), from_name=from_name,
            to_kind=EndpointKind.parse(to_kind), to_name=to_name,
            information_type=information_type, description=description)
        self.registry.add_service_link(service_link)
        return service_link

    def attach_document(self, source_name: str, format_name: str,
                        content: str, url: str = "") -> None:
        self.registry.attach_document(source_name, format_name, content, url)

    # ------------------------------------------------------------ replication --

    def _facade(self, source_name: str) -> ReplicatedCoDatabase:
        facade = self._replicated.get(source_name)
        if facade is None:
            raise WebFinditError(
                f"source {source_name!r} is not replicated (deploy the "
                f"system with replication_factor > 1 or a durable_dir)")
        return facade

    def kill_replica(self, source_name: str, index: int) -> None:
        """Crash one co-database replica server.

        Its ORB endpoint closes, its journal freezes at the crash
        epoch, and its naming binding is left dangling — a crashed
        server cannot unbind itself, which is precisely the stale-IOR
        situation the generation counters exist for.
        """
        facade = self._facade(source_name)
        runtime = facade.mark_dead(index)
        if runtime.orb is not None:
            runtime.orb.shutdown()

    def restart_replica(self, source_name: str, index: int) -> None:
        """Crash-recover one replica and bring it back into rotation.

        Recovery order: rebuild from snapshot + journal replay (with
        anti-entropy from a live peer when the set advanced past the
        crash epoch), re-activate the servant on a fresh endpoint,
        ``rebind`` its name (bumping the binding generation so cached
        proxies self-invalidate), close its breaker, and drop any
        metadata cached from the dead incarnation.
        """
        facade = self._facade(source_name)
        runtime = facade.recover(index)
        record = self._deployments.get(source_name)
        product = get_product(record.orb_product) if record is not None \
            else VISIBROKER
        orb = self._replica_orb(source_name, index, product)
        servant = CoDatabaseServant(runtime.codatabase)
        ior = orb.activate(servant, CODATABASE_INTERFACE,
                           object_name=f"codb-{source_name}-r{index}")
        runtime.orb, runtime.ior, runtime.servant = orb, ior, servant
        runtime.endpoint = ior.primary.endpoint
        binding = replica_binding(source_name, index)
        self.naming.rebind(binding, ior)
        self._replica_proxies.pop(binding, None)
        if index == 0:
            # The base name tracks the primary for non-failover clients.
            self.naming.rebind(f"webfindit/codb/{source_name}", ior)
            self._ior_cache.pop(f"codb/{source_name}", None)
        # The replica demonstrably answered recovery; close its breaker
        # — and the source-level one discovery keys on, since a source
        # with a live replica is consultable again — so the next call
        # routes to it without waiting out a cooldown.
        self.registry.health.record(replica_key(source_name, index), ok=True)
        self.registry.health.record(source_name, ok=True)
        if self.metadata_cache is not None:
            self.metadata_cache.invalidate_source(source_name)

    def replica_status(self, source_name: Optional[str] = None) -> dict:
        """Per-replica availability view (the CLI's ``\\replicas``)."""
        health = self.registry.health
        if source_name is not None:
            return self._facade(source_name).status(health=health)
        return {name: facade.status(health=health)
                for name, facade in sorted(self._replicated.items())}

    def reconcile_replicas(self, source_name: Optional[str] = None) -> int:
        """Anti-entropy pass: replay live laggards up to the leader.

        Chaos scenarios call this after healing a partition — the
        minority side missed quorum commits while cut off and catches
        up from the leader's journal.  Returns replicas healed.
        """
        # Anti-entropy is maintenance traffic: tag it background so an
        # overloaded server sheds it long before interactive queries.
        with call_policy(traffic_class=BACKGROUND):
            if source_name is not None:
                return self._facade(source_name).reconcile()
            return sum(facade.reconcile()
                       for facade in self._replicated.values())

    # ------------------------------------------------------ sharding / cache tier --

    def sharded_registry_client(self) -> ShardedRegistryClient:
        """A coordinator over the *exported* shard endpoints.

        Where :attr:`registry` orchestrates over in-process shard
        handles, this client resolves every ``webfindit/registry/
        shard<i>`` binding and talks GIOP — the path a peer process
        would use, and what bench S12 and the conformance suites
        exercise.
        """
        if self.shards < 2:
            raise WebFinditError(
                "system was deployed with a single registry shard "
                "(deploy with shards > 1)")
        handles = []
        for index in range(self.shards):
            ior = self.naming.resolve(f"webfindit/registry/shard{index}")
            proxy = self._system_orb.proxy(ior, REGISTRY_SHARD_INTERFACE)
            handles.append(RemoteShard(proxy))
        client = ShardedRegistryClient(handles, ring=self.registry.ring,
                                       ontology=self.ontology)
        client.health = self.registry.health
        return client

    def shard_report(self) -> dict:
        """Ring + per-shard inspection (the CLI's ``\\shards``)."""
        if self.shards > 1:
            statuses = self.registry.shard_statuses()
            ring = self.registry.ring.describe()
        else:
            status = dict(self.registry.shard_status())
            status["shard"] = 0
            statuses, ring = [status], None
        return {
            "shards": self.shards,
            "ring": ring,
            "statuses": statuses,
            "naming_generation": self.naming.namespace_generation(
                "webfindit/registry/"),
            "cache_tier": self._cache_tier_metrics(),
        }

    def _start_cache_tier(self, initial: bool) -> None:
        """Activate a (fresh) cache-tier servant on a fresh endpoint."""
        self._cache_orb = Orb(name="webfindit-cache-tier",
                              transport=self.transport,
                              host="cache-tier.webfindit.net",
                              product="WebFINDIT")
        self.cache_tier_servant = CacheTierServant(ttl=self._cache_tier_ttl)
        ior = self._cache_orb.activate(self.cache_tier_servant,
                                       CACHE_TIER_INTERFACE,
                                       object_name="cache-tier")
        binding = "webfindit/cache/tier0"
        if initial:
            self.naming.bind(binding, ior)
        else:
            self.naming.rebind(binding, ior)
        proxy = self._system_orb.proxy(ior, CACHE_TIER_INTERFACE)
        self._cache_tier_client = CacheTierClient(proxy)
        self._cache_tier_alive = True

    def _deliver_invalidation(self, origin: str, seq: int,
                              floors: dict) -> bool:
        """Broadcast hook: push one floor batch to the current tier."""
        client = self._cache_tier_client
        if client is None:
            raise CommFailure("cache tier is not running")
        return client.invalidate(origin, seq, floors)

    def kill_cache_tier(self) -> None:
        """Crash the cache-tier server: its endpoint closes, lookups
        start raising, and every tiered client degrades to direct GIOP
        (counted in ``cache_bypassed``) — never a failed query."""
        if not self.cache_tier:
            raise WebFinditError(
                "system was deployed without a cache tier "
                "(deploy with cache_tier=True)")
        if self._cache_orb is not None:
            self._cache_orb.shutdown()
        self._cache_tier_alive = False

    def restart_cache_tier(self) -> None:
        """Bring a fresh (cold) cache tier back on a new endpoint.

        The replacement starts empty — floors, sequence numbers and
        entries died with the old process — so the broadcasters flush
        their pending floors at it and read-through refills the rest.
        """
        if not self.cache_tier:
            raise WebFinditError(
                "system was deployed without a cache tier "
                "(deploy with cache_tier=True)")
        self._start_cache_tier(initial=False)
        self._cache_tier_restarts += 1
        for broadcaster in self._broadcasters:
            broadcaster.flush()

    def _cache_tier_metrics(self) -> Optional[dict]:
        if not self.cache_tier:
            return None
        return {
            "alive": self._cache_tier_alive,
            "restarts": self._cache_tier_restarts,
            "servant": (self.cache_tier_servant.stats()
                        if self.cache_tier_servant is not None else None),
            "broadcasters": [broadcaster.status()
                             for broadcaster in self._broadcasters],
        }

    # ----------------------------------------------------------------- access --

    def _client_orb(self) -> Orb:
        return self._system_orb

    def _resolve_ior(self, kind: str, name: str) -> Ior:
        cache_key = f"{kind}/{name}"
        ior = self._ior_cache.get(cache_key)
        if ior is None:
            ior = self.naming.resolve(f"webfindit/{kind}/{name}")
            self._ior_cache[cache_key] = ior
        return ior

    def _replica_proxy(self, binding: str):
        """The current proxy for one replica binding (cached)."""
        cached = self._replica_proxies.get(binding)
        if cached is not None:
            return cached[0]
        ior, generation = self.naming.resolve_with_generation(binding)
        proxy = self._client_orb().proxy(ior, CODATABASE_INTERFACE)
        self._replica_proxies[binding] = (proxy, generation)
        return proxy

    def _refresh_replica_proxy(self, binding: str):
        """Generation-checked re-resolve: ``(proxy, changed)``.

        ``changed`` is True only when the binding was re-bound since the
        cached proxy was built — the signal that a fresh endpoint is
        worth one immediate retry (the stale-IOR window).
        """
        cached = self._replica_proxies.get(binding)
        ior, generation = self.naming.resolve_with_generation(binding)
        if cached is not None and cached[1] == generation:
            return cached[0], False
        proxy = self._client_orb().proxy(ior, CODATABASE_INTERFACE)
        self._replica_proxies[binding] = (proxy, generation)
        return proxy, True

    def _failover_client(self, name: str,
                         facade: ReplicatedCoDatabase) -> CoDatabaseClient:
        targets = []
        for runtime in facade.runtimes:
            binding = replica_binding(name, runtime.index)
            targets.append(ReplicaTarget(
                key=replica_key(name, runtime.index),
                binding=binding,
                proxy=lambda binding=binding: self._replica_proxy(binding),
                refresh=lambda binding=binding:
                    self._refresh_replica_proxy(binding)))
        return FailoverCoDatabaseClient(name, targets,
                                        health=self.registry.health,
                                        cache=self.metadata_cache,
                                        hedge=self.resilience.hedge)

    def codatabase_client(self, database_name: str) -> CoDatabaseClient:
        """A CORBA-backed metadata client for one source's co-database.

        Replicated sources get a failover client over the whole replica
        set; single-servant sources keep the seed's direct (optionally
        caching) client.
        """
        facade = self._replicated.get(database_name)
        if facade is not None:
            try:
                return self._failover_client(database_name, facade)
            except Exception as exc:
                raise UnknownDatabase(
                    f"no co-database bound for {database_name!r}") from exc
        try:
            ior = self._resolve_ior("codb", database_name)
        except Exception as exc:
            raise UnknownDatabase(
                f"no co-database bound for {database_name!r}") from exc
        proxy = self._client_orb().proxy(ior, CODATABASE_INTERFACE)
        if self._cache_tier_client is not None:
            # The shared tier supersedes the per-process cache: one
            # fleet-wide working set instead of N private ones.
            return TieredCoDatabaseClient(proxy, database_name,
                                          self._cache_tier_client)
        if self.metadata_cache is not None:
            return CachingCoDatabaseClient(proxy, database_name,
                                           self.metadata_cache)
        return CoDatabaseClient.for_proxy(proxy, database_name)

    def wrapper_client(self, database_name: str) -> InformationSourceInterface:
        """A CORBA-backed ISI client for one source.

        Clients are cached: the remote interface description is fetched
        once, and subsequent statements cost exactly one GIOP round-trip
        (the stub reuse a real client application would have).
        """
        cached = self._remote_isi_cache.get(database_name)
        if cached is not None:
            return cached
        try:
            ior = self._resolve_ior("isi", database_name)
        except Exception as exc:
            raise UnknownDatabase(
                f"no wrapper bound for {database_name!r}") from exc
        proxy = self._client_orb().proxy(ior, ISI_INTERFACE)
        client = RemoteIsi(proxy)
        self._remote_isi_cache[database_name] = client
        return client

    def local_wrapper(self, database_name: str) -> InformationSourceInterface:
        """The in-process wrapper (bypasses the ORB; used by benches)."""
        wrapper = self._wrappers.get(database_name)
        if wrapper is None:
            raise UnknownDatabase(f"no wrapper for {database_name!r}")
        return wrapper

    def query_processor(self, match_threshold: float = 0.5) -> QueryProcessor:
        """A processor whose metadata and data paths cross the ORB."""
        return QueryProcessor(resolver=self.codatabase_client,
                              wrapper_for=self.wrapper_client,
                              registry=self.registry,
                              match_threshold=match_threshold,
                              parallel=self.parallel_discovery,
                              max_workers=self.discovery_workers,
                              policy=self.resilience)

    def browser(self, home_database: str) -> Browser:
        """An interactive session for a user of *home_database*."""
        self.registry.source(home_database)  # validate
        session = Session(home_database=home_database)
        return Browser(self.query_processor(), session)

    # ----------------------------------------------------------------- reports --

    def deployment_map(self) -> list[DeploymentRecord]:
        """Figure-2 style deployment inventory."""
        return list(self._deployments.values())

    def metrics(self) -> dict:
        """Aggregated middleware counters."""
        transport_metrics = getattr(self.transport, "metrics", None)
        # One atomic snapshot instead of field-by-field getattr reads:
        # related counters (messages vs bytes, shed vs expired) must
        # come from the same instant or they tear under load.
        transport_snapshot = (transport_metrics.snapshot()
                              if transport_metrics is not None else {})
        orb_stats = {
            orb.product: {
                "requests_sent": orb.stats.requests_sent,
                "requests_handled": orb.stats.requests_handled,
                "cross_product_requests": orb.stats.cross_product_requests,
            }
            for orb in [self._system_orb, *self._orbs.values()]
        }
        return {
            "giop_messages": transport_snapshot.get("messages_sent", 0),
            "giop_bytes_sent": transport_snapshot.get("bytes_sent", 0),
            "giop_per_endpoint": transport_snapshot.get("per_endpoint", {}),
            "orbs": orb_stats,
            "registry_updates": self.registry.update_operations,
            "metadata_cache": (self.metadata_cache.stats()
                               if self.metadata_cache is not None else None),
            "resilience": self.resilience.health.snapshot(),
            "overload": {
                "requests_shed": transport_snapshot.get("requests_shed", 0),
                "requests_expired": transport_snapshot.get(
                    "requests_expired", 0),
                "retry_budget": (self.resilience.retry.budget.snapshot()
                                 if self.resilience.retry.budget is not None
                                 else None),
                "hedging": (self.resilience.hedge.snapshot()
                            if self.resilience.hedge is not None else None),
            },
            "replication": self._replication_metrics(),
            "sharding": ({"shards": self.shards,
                          "ring": self.registry.ring.describe(),
                          "per_shard": self.registry.shard_statuses()}
                         if self.shards > 1 else None),
            "cache_tier": self._cache_tier_metrics(),
        }

    def _replication_metrics(self) -> Optional[dict]:
        if not self._replicated:
            return None
        runtimes = [runtime for facade in self._replicated.values()
                    for runtime in facade.runtimes]
        metrics = {
            "sources": len(self._replicated),
            "replicas": len(runtimes),
            "alive": sum(1 for runtime in runtimes if runtime.alive),
            "restarts": sum(runtime.restarts for runtime in runtimes),
            "epochs": {name: facade.epoch
                       for name, facade in sorted(self._replicated.items())},
        }
        if self.quorum:
            metrics["quorum"] = {
                name: facade.lease_status()
                for name, facade in sorted(self._replicated.items())}
            metrics["journal_fsyncs"] = sum(
                getattr(runtime.journal, "fsyncs", 0) for runtime in runtimes)
        return metrics

    def reset_metrics(self) -> None:
        """Zero all counters (benchmarks call this between phases)."""
        transport_metrics = getattr(self.transport, "metrics", None)
        if transport_metrics is not None:
            transport_metrics.reset()
        for orb in [self._system_orb, *self._orbs.values()]:
            orb.stats.reset()


#: Convenience re-export of the paper's product trio for deployments.
PRODUCT_TRIO = (ORBIX, ORBIXWEB, VISIBROKER)
