"""Co-databases: the object-oriented metadata layer.

"Each participating database has a co-database attached to it.  A
co-database is an object-oriented database that stores information
about its associated database, coalitions, and service links" (§2.2).

Faithfully to the paper, a co-database here *is* an
:class:`~repro.oodb.database.ObjectDatabase`: every coalition is a
class in its schema (subclass relationships model topic
specialization), member databases are instances of those classes, and
service links live in a two-subclass lattice (coalition links vs.
database links).  Documents (the multimedia documentation of §2.2) are
stored per source.

The co-database is served over the ORB by :class:`CoDatabaseServant`
(interface :data:`CODATABASE_INTERFACE`) so remote metadata queries are
real middleware traffic.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.coalition import Coalition
from repro.core.model import Ontology, SourceDescription, topic_score
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import UnknownCoalition, UnknownDatabase, WebFinditError
from repro.oodb.database import ObjectDatabase
from repro.oodb.schema import Attribute
from repro.orb.idl import InterfaceBuilder, InterfaceDef

#: Root class name for the coalition lattice inside every co-database.
SOURCE_ROOT_CLASS = "InformationSource"

_SOURCE_ATTRIBUTES = [
    Attribute("name", "string", required=True),
    Attribute("information_type", "string"),
    Attribute("documentation_url", "string"),
    Attribute("location", "string"),
    Attribute("wrapper", "string"),
    Attribute("interface", "string", many=True),
    Attribute("dbms", "string"),
    Attribute("orb_product", "string"),
    Attribute("structure", "string", many=True),
]


class CoDatabase:
    """The metadata repository attached to one information source."""

    def __init__(self, owner_name: str, ontology: Optional[Ontology] = None,
                 product: str = "ObjectStore", version: str = "5.1"):
        self.owner_name = owner_name
        self.ontology = ontology
        self._db = ObjectDatabase(f"co-{owner_name}", product=product,
                                  version=version)
        self._db.define_class(SOURCE_ROOT_CLASS, list(_SOURCE_ATTRIBUTES),
                              doc="Root of the coalition class lattice")
        self._db.define_class("CoalitionInfo", [
            Attribute("name", "string", required=True),
            Attribute("information_type", "string"),
            Attribute("parent", "string"),
            Attribute("doc", "string"),
        ], doc="Metadata about one known coalition")
        self._db.define_class("ServiceLink", [
            Attribute("from_kind", "string"),
            Attribute("from_name", "string"),
            Attribute("to_kind", "string"),
            Attribute("to_name", "string"),
            Attribute("information_type", "string"),
            Attribute("description", "string"),
            Attribute("contact", "string"),
        ], doc="Root of the service-link subschema")
        self._db.define_class("CoalitionServiceLink", bases=["ServiceLink"],
                              doc="Links involving the owner's coalitions")
        self._db.define_class("DatabaseServiceLink", bases=["ServiceLink"],
                              doc="Links involving the owner database itself")
        self._db.define_class("Document", [
            Attribute("owner", "string", required=True),
            Attribute("format", "string"),
            Attribute("content", "string"),
            Attribute("url", "string"),
        ], doc="Multimedia documentation of a source")
        self.local_description: Optional[SourceDescription] = None
        #: Coalitions the owner database is a member of.
        self.memberships: list[str] = []
        #: Metadata query counter (benchmarks read this).
        self.queries_answered = 0
        #: Monotonic version: bumped once per maintenance write.  Two
        #: replicas of the same co-database that applied the same write
        #: prefix carry the same epoch — which is what journal replay,
        #: anti-entropy, and stale-read detection all compare.
        self.epoch = 0
        #: High-water mark of *completed* writes.  ``epoch`` moves at
        #: the start of a write and ``applied`` at its end, so a reader
        #: that tags a value with ``applied`` can only understate its
        #: freshness — never claim a version whose write it missed.
        #: The shared cache tier's epoch tags rely on this.
        self.applied = 0

    # ------------------------------------------------------------ population --

    def advertise(self, description: SourceDescription) -> None:
        """Record the owner's own advertisement."""
        if description.name != self.owner_name:
            raise UnknownDatabase(
                f"co-database of {self.owner_name!r} cannot advertise "
                f"{description.name!r}")
        self.epoch += 1
        self.local_description = description
        self.applied = self.epoch

    def register_coalition(self, coalition: Coalition) -> None:
        """Make *coalition* known: define its class in the lattice."""
        # Epoch bumps are unconditional — a replayed no-op must move the
        # version exactly as the original call did.
        self.epoch += 1
        if self._db.schema.has_class(coalition.name):
            self.applied = self.epoch
            return
        parent = coalition.parent
        base = parent if parent and self._db.schema.has_class(parent) \
            else SOURCE_ROOT_CLASS
        self._db.define_class(coalition.name, [], bases=[base],
                              doc=coalition.doc)
        self._db.create("CoalitionInfo", name=coalition.name,
                        information_type=coalition.information_type,
                        parent=coalition.parent or "",
                        doc=coalition.doc)
        self.applied = self.epoch

    def record_membership(self, coalition_name: str) -> None:
        """Note that the owner belongs to *coalition_name*."""
        self._require_coalition(coalition_name)
        self.epoch += 1
        if coalition_name not in self.memberships:
            self.memberships.append(coalition_name)
        self.applied = self.epoch

    def drop_membership(self, coalition_name: str) -> None:
        self.epoch += 1
        if coalition_name in self.memberships:
            self.memberships.remove(coalition_name)
        self.applied = self.epoch

    def add_member(self, coalition_name: str,
                   description: SourceDescription) -> None:
        """Store *description* as an instance of the coalition class."""
        self._require_coalition(coalition_name)
        self.epoch += 1
        existing = self._db.select(coalition_name, include_subclasses=False,
                                   name=description.name)
        if existing:
            self.applied = self.epoch
            return
        self._db.create(coalition_name, **description.to_wire())
        self.applied = self.epoch

    def remove_member(self, coalition_name: str, source_name: str) -> None:
        self._require_coalition(coalition_name)
        self.epoch += 1
        for obj in self._db.select(coalition_name, include_subclasses=False,
                                   name=source_name):
            self._db.delete(obj.oid)
        self.applied = self.epoch

    def forget_coalition(self, coalition_name: str) -> None:
        """Remove a dissolved coalition's metadata (class stays defined —
        schema evolution is append-only, as in the era's object stores —
        but its info record and instances go away)."""
        self.epoch += 1
        for obj in self._db.select("CoalitionInfo", name=coalition_name):
            self._db.delete(obj.oid)
        if self._db.schema.has_class(coalition_name):
            for obj in self._db.extent(coalition_name,
                                       include_subclasses=False):
                self._db.delete(obj.oid)
        # Inlined (rather than calling drop_membership) so one logical
        # maintenance write bumps the epoch exactly once.
        if coalition_name in self.memberships:
            self.memberships.remove(coalition_name)
        self.applied = self.epoch

    def add_service_link(self, link: ServiceLink) -> None:
        """Record a service link in the appropriate subclass."""
        self.epoch += 1
        involves_owner = link.involves(EndpointKind.DATABASE, self.owner_name)
        class_name = ("DatabaseServiceLink" if involves_owner
                      else "CoalitionServiceLink")
        payload = link.to_wire()
        existing = self._db.select(class_name, include_subclasses=False,
                                   from_name=link.from_name,
                                   to_name=link.to_name)
        if any(o.get("from_kind") == payload["from_kind"]
               and o.get("to_kind") == payload["to_kind"] for o in existing):
            self.applied = self.epoch
            return
        self._db.create(class_name, **payload)
        self.applied = self.epoch

    def remove_service_link(self, link: ServiceLink) -> None:
        self.epoch += 1
        for class_name in ("DatabaseServiceLink", "CoalitionServiceLink"):
            for obj in self._db.select(class_name, include_subclasses=False,
                                       from_name=link.from_name,
                                       to_name=link.to_name):
                if (obj.get("from_kind") == link.from_kind.value
                        and obj.get("to_kind") == link.to_kind.value):
                    self._db.delete(obj.oid)
        self.applied = self.epoch

    def attach_document(self, source_name: str, format_name: str,
                        content: str, url: str = "") -> None:
        """Store one documentation artefact for *source_name*."""
        self.epoch += 1
        self._db.create("Document", owner=source_name, format=format_name,
                        content=content, url=url)
        self.applied = self.epoch

    # ------------------------------------------------------------- queries --

    def _require_coalition(self, name: str) -> None:
        if not self._db.schema.has_class(name) \
                or name in (SOURCE_ROOT_CLASS, "CoalitionInfo", "ServiceLink",
                            "CoalitionServiceLink", "DatabaseServiceLink",
                            "Document"):
            raise UnknownCoalition(
                f"co-database of {self.owner_name!r} knows no coalition "
                f"{name!r}")

    def known_coalitions(self) -> list[Coalition]:
        """All coalitions this co-database has metadata for."""
        self.queries_answered += 1
        result = []
        for obj in self._db.extent("CoalitionInfo"):
            members = [m.get("name") for m in self._db.extent(
                obj["name"], include_subclasses=False)] \
                if self._db.schema.has_class(obj["name"]) else []
            result.append(Coalition(
                name=obj["name"],
                information_type=obj.get("information_type") or "",
                parent=obj.get("parent") or None,
                doc=obj.get("doc") or "",
                members=members))
        return result

    def find_coalitions(self, query: str,
                        threshold: float = 0.5) -> list[dict[str, Any]]:
        """Locally-known coalitions whose topic matches *query*.

        Returns dicts ``{name, information_type, score, members}`` sorted
        by descending score.
        """
        self.queries_answered += 1
        matches: list[dict[str, Any]] = []
        for coalition in self.known_coalitions():
            # A coalition answers for its own topic AND for what its
            # member databases advertise — "every class contains a
            # description about the participating databases and the
            # type of information they contain" (§2.2).
            member_score = 0.0
            if self._db.schema.has_class(coalition.name):
                for member in self._db.extent(coalition.name,
                                              include_subclasses=False):
                    member_score = max(member_score, topic_score(
                        query, member.get("information_type") or "",
                        self.ontology))
            score = max(
                topic_score(query, coalition.information_type, self.ontology),
                topic_score(query, coalition.name, self.ontology),
                member_score)
            # Topic proximity (§2.1: clusters "are related to each other
            # by topic proximity relationships"): a coalition whose
            # topic the ontology marks as *close* to the query is a
            # threshold-level lead even without word overlap.
            if (score < threshold and self.ontology is not None
                    and (self.ontology.are_related(
                        query, coalition.information_type)
                        or self.ontology.are_related(query, coalition.name))):
                score = threshold
            if score >= threshold:
                matches.append({
                    "name": coalition.name,
                    "information_type": coalition.information_type,
                    "score": score,
                    "members": coalition.members,
                })
        matches.sort(key=lambda m: (-m["score"], m["name"]))
        return matches

    def subclasses_of(self, class_name: str) -> list[str]:
        """Direct subclasses of a coalition class (topic specializations)."""
        self.queries_answered += 1
        if class_name != SOURCE_ROOT_CLASS:
            self._require_coalition(class_name)
        return self._db.schema.subclasses(class_name)

    def instances_of(self, class_name: str) -> list[SourceDescription]:
        """Member databases of a coalition class (including specializations)."""
        self.queries_answered += 1
        self._require_coalition(class_name)
        seen: set[str] = set()
        result: list[SourceDescription] = []
        for obj in self._db.extent(class_name, include_subclasses=True):
            name = obj.get("name")
            if name in seen:
                continue
            seen.add(name)
            result.append(SourceDescription.from_wire(obj.values()))
        return result

    def describe_instance(self, source_name: str) -> SourceDescription:
        """Description of one member database, searched across classes."""
        self.queries_answered += 1
        if self.local_description is not None \
                and self.local_description.name == source_name:
            return self.local_description
        for obj in self._db.extent(SOURCE_ROOT_CLASS,
                                   include_subclasses=True):
            if obj.get("name") == source_name:
                return SourceDescription.from_wire(obj.values())
        raise UnknownDatabase(
            f"co-database of {self.owner_name!r} has no description of "
            f"{source_name!r}")

    def documents_of(self, source_name: str) -> list[dict[str, str]]:
        """Documentation artefacts stored for *source_name*."""
        self.queries_answered += 1
        return [
            {"format": obj.get("format") or "",
             "content": obj.get("content") or "",
             "url": obj.get("url") or ""}
            for obj in self._db.select("Document", owner=source_name)
        ]

    def service_links(self) -> list[ServiceLink]:
        """All service links this co-database knows about."""
        self.queries_answered += 1
        return [ServiceLink.from_wire(obj.values())
                for obj in self._db.extent("ServiceLink",
                                           include_subclasses=True)]

    def links_of(self, kind: EndpointKind, name: str) -> list[ServiceLink]:
        """Known links with (kind, name) at either end."""
        return [link for link in self.service_links()
                if link.involves(kind, name)]

    def neighbor_databases(self) -> list[str]:
        """Other members of the owner's coalitions — the databases the
        discovery algorithm may consult next."""
        self.queries_answered += 1
        neighbors: list[str] = []
        for coalition_name in self.memberships:
            if not self._db.schema.has_class(coalition_name):
                continue
            for obj in self._db.extent(coalition_name,
                                       include_subclasses=False):
                name = obj.get("name")
                if name != self.owner_name and name not in neighbors:
                    neighbors.append(name)
        return neighbors

    @property
    def object_database(self) -> ObjectDatabase:
        """The underlying object store (for inspection and tests)."""
        return self._db


# ---------------------------------------------------------------------------
# CORBA surface
# ---------------------------------------------------------------------------

#: The co-database server interface (meta-data layer of Figure 3).
CODATABASE_INTERFACE: InterfaceDef = (
    InterfaceBuilder("CoDatabase", module="webfindit",
                     doc="Metadata queries against one co-database")
    .operation("find_coalitions", "query",
               doc="Locally-known coalitions matching a topic")
    .operation("known_coalitions", doc="All coalition metadata records")
    .operation("memberships", doc="Coalitions the owner belongs to")
    .operation("subclasses_of", "class_name")
    .operation("instances_of", "class_name")
    .operation("describe_instance", "source_name")
    .operation("documents_of", "source_name")
    .operation("service_links")
    .operation("neighbor_databases")
    .operation("owner", doc="Name of the attached database")
    .operation("epoch", doc="Monotonic maintenance-write version")
    .operation("versioned", "operation", "arguments",
               doc="A read plus the epoch tag it is valid at — the "
                   "shared cache tier's fetch path")
    .build())

#: Reads the cache tier may fetch through :meth:`CoDatabaseServant.
#: versioned` — every query operation, never a mutator.
VERSIONED_OPERATIONS = frozenset({
    "find_coalitions", "known_coalitions", "memberships", "subclasses_of",
    "instances_of", "describe_instance", "documents_of", "service_links",
    "neighbor_databases"})


class CoDatabaseServant:
    """CORBA servant exposing one co-database."""

    def __init__(self, codatabase: CoDatabase):
        self._codb = codatabase

    def find_coalitions(self, query: str) -> list[dict[str, Any]]:
        return self._codb.find_coalitions(query)

    def known_coalitions(self) -> list[dict[str, Any]]:
        return [c.to_wire() for c in self._codb.known_coalitions()]

    def memberships(self) -> list[str]:
        return list(self._codb.memberships)

    def subclasses_of(self, class_name: str) -> list[str]:
        return self._codb.subclasses_of(class_name)

    def instances_of(self, class_name: str) -> list[dict[str, Any]]:
        return [d.to_wire() for d in self._codb.instances_of(class_name)]

    def describe_instance(self, source_name: str) -> dict[str, Any]:
        return self._codb.describe_instance(source_name).to_wire()

    def documents_of(self, source_name: str) -> list[dict[str, str]]:
        return self._codb.documents_of(source_name)

    def service_links(self) -> list[dict[str, Any]]:
        return [link.to_wire() for link in self._codb.service_links()]

    def neighbor_databases(self) -> list[str]:
        return self._codb.neighbor_databases()

    def owner(self) -> str:
        return self._codb.owner_name

    def epoch(self) -> int:
        return self._codb.epoch

    def versioned(self, operation: str, arguments: list) -> dict[str, Any]:
        """One read plus the epoch tag it is valid at.

        The tag is the ``applied`` watermark read *before* the value: a
        maintenance write racing this read bumps ``epoch`` first and
        ``applied`` last, so the tag can only understate the value's
        freshness — a stale tag makes the cache tier re-fetch, never
        serve silently stale data.
        """
        if operation not in VERSIONED_OPERATIONS:
            raise WebFinditError(
                f"{operation!r} is not a versioned co-database read")
        tag = self._codb.applied
        value = getattr(self, operation)(*arguments)
        return {"value": value, "epoch": tag}
