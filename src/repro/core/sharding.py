"""Consistent-hash sharding of the WebFINDIT registry.

The paper's repository layer is one logical catalog; this module lets N
autonomous registry servants share it.  Co-database and coalition names
are placed on a :class:`HashRing` (SHA-1 based, vnode-weighted, so the
mapping is identical in every process regardless of ``PYTHONHASHSEED``),
each shard owns the names that hash into its arc, and a
:class:`ShardedRegistryClient` runs the cross-shard orchestration that
:class:`~repro.core.registry.Registry` performs in one process:

* single-name operations (``source``, ``codatabase``, ``advertise``,
  ``remove_source``, ``join``, ``leave``) route by ring lookup;
* global reads (``source_names``, ``summary``, ``epochs``, coalition
  listings) fan out to every shard and merge deterministically — name
  lists sorted, counters summed, per-name dicts unioned;
* coalitions live on the shard owning the coalition name; the
  specialization index of a coalition lives with it; service links are
  federation-wide routing metadata and are replicated to every shard in
  coordinator order, which preserves the singleton's link ordering.

The coordinator composes every mutation from the shard-local
primitives that ``Registry`` itself now uses (``refresh_advertisement``,
``put_coalition``, ``codb_write``, ``notify_mutation`` …), so a sharded
deployment performs the same counted co-database writes and fires the
same invalidation sets as the singleton — the invariant the
conformance suite in ``tests/core/test_sharding_properties.py`` locks
down.

Shards are exported over the ORB by :class:`RegistryShardServant`
(interface :data:`REGISTRY_SHARD_INTERFACE`, bound at
``webfindit/registry/shard<i>``); :class:`RemoteShard` presents a
proxy-backed shard through the same primitive surface, so the
coordinator does not care whether a shard is in-process or across GIOP.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import replace
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core.coalition import Coalition
from repro.core.codatabase import CoDatabase
from repro.core.model import Ontology, SourceDescription
from repro.core.registry import Registry
from repro.core.resilience import HealthBoard
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import (MembershipError, UnknownCoalition,
                          WebFinditError)
from repro.orb.idl import InterfaceBuilder, InterfaceDef

#: Virtual nodes per unit of shard weight.  64 points per shard keeps
#: the largest/smallest arc ratio low enough that random name sets
#: spread within ~2x of even (asserted by the property suite).
DEFAULT_VNODES = 64


class HashRing:
    """A deterministic consistent-hash ring with virtual nodes.

    Placement uses SHA-1 over stable labels, never :func:`hash`, so two
    processes (or two runs with different ``PYTHONHASHSEED``) agree on
    every owner.  Removing a node frees exactly its own arcs: keys it
    did not own keep their owner (the minimal-remapping property).
    """

    def __init__(self, nodes: Iterable = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise WebFinditError("a hash ring needs at least 1 vnode")
        self.vnodes = vnodes
        self._weights: dict = {}
        #: Sorted (point, vnode_label, node); the label breaks the
        #: astronomically-unlikely point tie deterministically.
        self._ring: list[tuple[int, str, Any]] = []
        self._points: list[int] = []
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _hash(label: str) -> int:
        digest = hashlib.sha1(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def add_node(self, node, weight: int = 1) -> None:
        """Join *node* with ``vnodes * weight`` points on the ring."""
        if node in self._weights:
            raise WebFinditError(f"node {node!r} is already on the ring")
        if weight < 1:
            raise WebFinditError("node weight must be >= 1")
        self._weights[node] = weight
        for index in range(self.vnodes * weight):
            label = f"vnode:{node}:{index}"
            entry = (self._hash(label), label, node)
            position = bisect.bisect_left(self._ring, entry[:2])
            self._ring.insert(position, entry)
        self._points = [entry[0] for entry in self._ring]

    def remove_node(self, node) -> None:
        """Leave: only keys *node* owned get a new owner."""
        if node not in self._weights:
            raise WebFinditError(f"node {node!r} is not on the ring")
        del self._weights[node]
        self._ring = [entry for entry in self._ring if entry[2] != node]
        self._points = [entry[0] for entry in self._ring]

    def nodes(self) -> list:
        return list(self._weights)

    def owner(self, key: str):
        """The node owning *key*: first vnode clockwise from its point."""
        if not self._ring:
            raise WebFinditError("hash ring has no nodes")
        point = self._hash(f"key:{key}")
        index = bisect.bisect_right(self._points, point) % len(self._ring)
        return self._ring[index][2]

    def ownership(self, keys: Iterable[str]) -> dict:
        """Partition *keys* by owner (every live node gets an entry)."""
        partition: dict = {node: [] for node in self._weights}
        for key in keys:
            partition[self.owner(key)].append(key)
        return partition

    def describe(self) -> dict:
        """Ring inspection: vnode points per node, for ``\\shards``."""
        counts: dict = {node: 0 for node in self._weights}
        for __, __unused, node in self._ring:
            counts[node] += 1
        return {"vnodes": self.vnodes,
                "points": {str(node): count
                           for node, count in counts.items()}}


# ---------------------------------------------------------------------------
# CORBA surface of one registry shard
# ---------------------------------------------------------------------------

#: The registry-shard server interface: the shard-local primitive
#: surface of :class:`Registry`, plus the reads a coordinator fans out.
REGISTRY_SHARD_INTERFACE: InterfaceDef = (
    InterfaceBuilder("RegistryShard", module="webfindit",
                     doc="One consistent-hash arc of the registry")
    .operation("has_source", "name")
    .operation("get_source", "name")
    .operation("source_names")
    .operation("memberships_of", "name")
    .operation("coalitions_containing", "member")
    .operation("epochs")
    .operation("epoch_of", "name")
    .operation("leases")
    .operation("summary")
    .operation("has_coalition", "name")
    .operation("get_coalition", "name")
    .operation("coalition_names")
    .operation("children_of", "name")
    .operation("service_links")
    .operation("find_link", "link")
    .operation("shard_status")
    .operation("add_source", "description", "codatabase_product")
    .operation("refresh_advertisement", "description")
    .operation("refresh_member", "member_name", "coalition_name",
               "description")
    .operation("drop_source", "name")
    .operation("drop_links_involving", "kind", "name")
    .operation("put_coalition", "coalition")
    .operation("drop_coalition", "name")
    .operation("note_child", "parent", "child")
    .operation("forget_child", "parent", "child")
    .operation("coalition_add_member", "coalition_name", "database_name")
    .operation("coalition_remove_member", "coalition_name", "database_name")
    .operation("append_link", "link")
    .operation("remove_link", "link")
    .operation("codb_write", "database_name", "operation", "arguments")
    .operation("notify_mutation", "names")
    .build())


def _encode_arg(value: Any) -> Any:
    """CDR-friendly encoding of one primitive argument."""
    if isinstance(value, SourceDescription):
        return {"__kind__": "source", "value": value.to_wire()}
    if isinstance(value, Coalition):
        return {"__kind__": "coalition", "value": value.to_wire()}
    if isinstance(value, ServiceLink):
        return {"__kind__": "link", "value": value.to_wire()}
    return value


def _decode_arg(value: Any) -> Any:
    if isinstance(value, dict) and "__kind__" in value:
        kind = value["__kind__"]
        payload = value.get("value", {})
        if kind == "source":
            return SourceDescription.from_wire(payload)
        if kind == "coalition":
            return Coalition.from_wire(payload)
        if kind == "link":
            return ServiceLink.from_wire(payload)
        raise WebFinditError(f"unknown wire argument kind {kind!r}")
    return value


class RegistryShardServant:
    """CORBA servant exposing one shard's registry primitives.

    A shard server is a single authoritative writer for its arc, so the
    servant serializes every operation under one lock (the in-process
    :class:`Registry` is not thread-safe).  ``service_time`` models the
    per-write commit cost of a real registry server; bench S12 uses it
    to measure how aggregate throughput scales when independent shard
    endpoints absorb that cost concurrently.
    """

    def __init__(self, registry: Registry, service_time: float = 0.0):
        self.registry = registry
        self.service_time = service_time
        self._lock = threading.Lock()

    def _commit_cost(self) -> None:
        if self.service_time > 0:
            time.sleep(self.service_time)

    # ----------------------------------------------------------------- reads --

    def has_source(self, name: str) -> bool:
        with self._lock:
            return self.registry.has_source(name)

    def get_source(self, name: str) -> dict:
        with self._lock:
            return self.registry.source(name).to_wire()

    def source_names(self) -> list[str]:
        with self._lock:
            return self.registry.source_names()

    def memberships_of(self, name: str) -> list[str]:
        with self._lock:
            return self.registry.memberships_of(name)

    def coalitions_containing(self, member: str) -> list[str]:
        with self._lock:
            return self.registry.coalitions_containing(member)

    def epochs(self) -> dict:
        with self._lock:
            return self.registry.epochs()

    def epoch_of(self, name: str) -> int:
        with self._lock:
            return self.registry.epoch_of(name)

    def leases(self) -> dict:
        with self._lock:
            return self.registry.leases()

    def summary(self) -> dict:
        with self._lock:
            return self.registry.summary()

    def has_coalition(self, name: str) -> bool:
        with self._lock:
            return self.registry.has_coalition(name)

    def get_coalition(self, name: str) -> dict:
        with self._lock:
            return self.registry.coalition(name).to_wire()

    def coalition_names(self) -> list[str]:
        with self._lock:
            return self.registry.coalition_names()

    def children_of(self, name: str) -> list[str]:
        with self._lock:
            return self.registry.children_of(name)

    def service_links(self) -> list[dict]:
        with self._lock:
            return [link.to_wire() for link in self.registry.service_links()]

    def find_link(self, link: dict) -> Optional[dict]:
        with self._lock:
            stored = self.registry.find_link(ServiceLink.from_wire(link))
            return stored.to_wire() if stored is not None else None

    def shard_status(self) -> dict:
        with self._lock:
            return self.registry.shard_status()

    # ------------------------------------------------------------- mutations --

    def add_source(self, description: dict, codatabase_product: str) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.add_source(SourceDescription.from_wire(description),
                                     codatabase_product or "ObjectStore")
            return True

    def refresh_advertisement(self, description: dict) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.refresh_advertisement(
                SourceDescription.from_wire(description))
            return True

    def refresh_member(self, member_name: str, coalition_name: str,
                       description: dict) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.refresh_member(
                member_name, coalition_name,
                SourceDescription.from_wire(description))
            return True

    def drop_source(self, name: str) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.drop_source(name)
            return True

    def drop_links_involving(self, kind: str, name: str) -> bool:
        with self._lock:
            self.registry.drop_links_involving(EndpointKind.parse(kind), name)
            return True

    def put_coalition(self, coalition: dict) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.put_coalition(Coalition.from_wire(coalition))
            return True

    def drop_coalition(self, name: str) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.drop_coalition(name)
            return True

    def note_child(self, parent: str, child: str) -> bool:
        with self._lock:
            self.registry.note_child(parent, child)
            return True

    def forget_child(self, parent: str, child: str) -> bool:
        with self._lock:
            self.registry.forget_child(parent, child)
            return True

    def coalition_add_member(self, coalition_name: str,
                             database_name: str) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.coalition_add_member(coalition_name, database_name)
            return True

    def coalition_remove_member(self, coalition_name: str,
                                database_name: str) -> bool:
        with self._lock:
            self._commit_cost()
            self.registry.coalition_remove_member(coalition_name,
                                                  database_name)
            return True

    def append_link(self, link: dict) -> bool:
        with self._lock:
            self.registry.append_link(ServiceLink.from_wire(link))
            return True

    def remove_link(self, link: dict) -> bool:
        with self._lock:
            stored = self.registry.find_link(ServiceLink.from_wire(link))
            if stored is None:
                raise WebFinditError(
                    f"no stored link matches {link.get('from_name')!r} -> "
                    f"{link.get('to_name')!r}")
            self.registry.remove_link(stored)
            return True

    def codb_write(self, database_name: str, operation: str,
                   arguments: list) -> bool:
        with self._lock:
            self._commit_cost()
            decoded = [_decode_arg(argument) for argument in arguments]
            self.registry.codb_write(database_name, operation, *decoded)
            return True

    def notify_mutation(self, names: list[str]) -> bool:
        with self._lock:
            self.registry.notify_mutation(names)
            return True


class RemoteShard:
    """A proxy-backed shard handle with the same primitive surface a
    local :class:`Registry` offers, so :class:`ShardedRegistryClient`
    orchestrates identically over in-process and GIOP shards."""

    def __init__(self, proxy):
        self._proxy = proxy

    # ----------------------------------------------------------------- reads --

    def has_source(self, name: str) -> bool:
        return bool(self._proxy.invoke("has_source", name))

    def source(self, name: str) -> SourceDescription:
        return SourceDescription.from_wire(self._proxy.invoke("get_source",
                                                              name))

    def source_names(self) -> list[str]:
        return list(self._proxy.invoke("source_names"))

    def memberships_of(self, name: str) -> list[str]:
        return list(self._proxy.invoke("memberships_of", name))

    def coalitions_containing(self, member: str) -> list[str]:
        return list(self._proxy.invoke("coalitions_containing", member))

    def epochs(self) -> dict:
        return dict(self._proxy.invoke("epochs"))

    def epoch_of(self, name: str) -> int:
        return int(self._proxy.invoke("epoch_of", name))

    def leases(self) -> dict:
        return dict(self._proxy.invoke("leases"))

    def summary(self) -> dict:
        return dict(self._proxy.invoke("summary"))

    def has_coalition(self, name: str) -> bool:
        return bool(self._proxy.invoke("has_coalition", name))

    def coalition(self, name: str) -> Coalition:
        return Coalition.from_wire(self._proxy.invoke("get_coalition", name))

    def coalition_names(self) -> list[str]:
        return list(self._proxy.invoke("coalition_names"))

    def children_of(self, name: str) -> list[str]:
        return list(self._proxy.invoke("children_of", name))

    def service_links(self) -> list[ServiceLink]:
        return [ServiceLink.from_wire(payload)
                for payload in self._proxy.invoke("service_links")]

    def find_link(self, link: ServiceLink) -> Optional[ServiceLink]:
        payload = self._proxy.invoke("find_link", link.to_wire())
        return ServiceLink.from_wire(payload) if payload else None

    def shard_status(self) -> dict:
        return dict(self._proxy.invoke("shard_status"))

    def codatabase(self, name: str) -> CoDatabase:
        raise WebFinditError(
            "co-database objects are shard-local; resolve the co-database "
            "servant through the naming service instead")

    # ------------------------------------------------------------- mutations --

    def add_source(self, description: SourceDescription,
                   codatabase_product: str = "ObjectStore") -> None:
        self._proxy.invoke("add_source", description.to_wire(),
                           codatabase_product)

    def refresh_advertisement(self, description: SourceDescription) -> None:
        self._proxy.invoke("refresh_advertisement", description.to_wire())

    def refresh_member(self, member_name: str, coalition_name: str,
                       description: SourceDescription) -> None:
        self._proxy.invoke("refresh_member", member_name, coalition_name,
                           description.to_wire())

    def drop_source(self, name: str) -> None:
        self._proxy.invoke("drop_source", name)

    def drop_links_involving(self, kind: EndpointKind, name: str) -> None:
        self._proxy.invoke("drop_links_involving", kind.value, name)

    def put_coalition(self, coalition: Coalition) -> None:
        self._proxy.invoke("put_coalition", coalition.to_wire())

    def drop_coalition(self, name: str) -> None:
        self._proxy.invoke("drop_coalition", name)

    def note_child(self, parent: str, child: str) -> None:
        self._proxy.invoke("note_child", parent, child)

    def forget_child(self, parent: str, child: str) -> None:
        self._proxy.invoke("forget_child", parent, child)

    def coalition_add_member(self, coalition_name: str,
                             database_name: str) -> None:
        self._proxy.invoke("coalition_add_member", coalition_name,
                           database_name)

    def coalition_remove_member(self, coalition_name: str,
                                database_name: str) -> None:
        self._proxy.invoke("coalition_remove_member", coalition_name,
                           database_name)

    def append_link(self, link: ServiceLink) -> None:
        self._proxy.invoke("append_link", link.to_wire())

    def remove_link(self, link: ServiceLink) -> None:
        self._proxy.invoke("remove_link", link.to_wire())

    def codb_write(self, database_name: str, operation: str, *args) -> None:
        self._proxy.invoke("codb_write", database_name, operation,
                           [_encode_arg(argument) for argument in args])

    def notify_mutation(self, names: Iterable[str]) -> None:
        self._proxy.invoke("notify_mutation", sorted(set(names)))


ShardHandle = Union[Registry, RemoteShard]


class ShardedRegistryClient:
    """Routes registry maintenance across consistent-hash shards.

    The client mirrors the :class:`Registry` API (same operations, same
    exceptions, same ``update_operations`` accounting in aggregate) so
    :class:`~repro.core.query_processor.QueryProcessor` and
    :class:`~repro.core.system.WebFinditSystem` use either
    interchangeably.  Shard handles may be in-process ``Registry``
    instances, proxy-backed :class:`RemoteShard` handles, or a mix.
    """

    def __init__(self, shards: Sequence[ShardHandle],
                 ring: Optional[HashRing] = None,
                 ontology: Optional[Ontology] = None):
        if not shards:
            raise WebFinditError("a sharded registry needs >= 1 shard")
        self._shards = list(shards)
        self.ring = ring if ring is not None \
            else HashRing(range(len(self._shards)))
        if sorted(self.ring.nodes()) != sorted(range(len(self._shards))):
            raise WebFinditError(
                "ring nodes must be the shard indices 0..N-1")
        self.ontology = ontology
        self._health = HealthBoard()
        for shard in self._shards:
            if isinstance(shard, Registry):
                shard.health = self._health

    @classmethod
    def local(cls, shard_count: int, ontology: Optional[Ontology] = None,
              codatabase_factory: Optional[Callable[[str], CoDatabase]]
              = None,
              vnodes: int = DEFAULT_VNODES) -> "ShardedRegistryClient":
        """Build *shard_count* in-process registries behind one ring."""
        registries = [Registry(ontology=ontology,
                               codatabase_factory=codatabase_factory)
                      for __ in range(shard_count)]
        return cls(registries,
                   ring=HashRing(range(shard_count), vnodes=vnodes),
                   ontology=ontology)

    # ------------------------------------------------------------- plumbing --

    @property
    def shards(self) -> list[ShardHandle]:
        return list(self._shards)

    def shard_of(self, name: str) -> int:
        """Ring lookup: index of the shard owning *name*."""
        return self.ring.owner(name)

    def _shard(self, name: str) -> ShardHandle:
        return self._shards[self.ring.owner(name)]

    @property
    def health(self) -> HealthBoard:
        return self._health

    @health.setter
    def health(self, board: HealthBoard) -> None:
        self._health = board
        for shard in self._shards:
            if isinstance(shard, Registry):
                shard.health = board

    @property
    def update_operations(self) -> int:
        """Aggregate counted co-database writes across all shards."""
        return sum(shard.shard_status()["update_operations"]
                   for shard in self._shards)

    def add_invalidation_listener(
            self, listener: Callable[[frozenset[str]], None]) -> None:
        """Subscribe to mutations on every in-process shard.

        Remote shards run their listeners server-side (that is where
        the cache-tier invalidation broadcaster lives), so a proxy-only
        client cannot subscribe from here.
        """
        for shard in self._shards:
            if not isinstance(shard, Registry):
                raise WebFinditError(
                    "invalidation listeners attach in the shard server "
                    "process, not through a remote shard handle")
        for shard in self._shards:
            shard.add_invalidation_listener(listener)

    def _notify_names(self, names: Iterable[str]) -> None:
        """Tell each shard which of its co-databases were written; the
        per-shard subsets union to exactly the singleton's notify set."""
        by_shard: dict[int, set[str]] = {}
        for name in names:
            if not name:
                continue
            by_shard.setdefault(self.ring.owner(name), set()).add(name)
        for index in sorted(by_shard):
            self._shards[index].notify_mutation(sorted(by_shard[index]))

    def shard_statuses(self) -> list[dict]:
        """Per-shard inspection rows for ``\\shards`` and metrics."""
        statuses = []
        for index, shard in enumerate(self._shards):
            status = dict(shard.shard_status())
            status["shard"] = index
            statuses.append(status)
        return statuses

    # ------------------------------------------------------------- sources --

    def add_source(self, description: SourceDescription,
                   codatabase_product: str = "ObjectStore"):
        shard = self._shard(description.name)
        return shard.add_source(description, codatabase_product)

    def advertise(self, description: SourceDescription):
        name = description.name
        shard = self._shard(name)
        if not shard.has_source(name):
            return self.add_source(description)
        shard.refresh_advertisement(description)
        touched = {name}
        for coalition_name in shard.memberships_of(name):
            coalition_shard = self._shard(coalition_name)
            if not coalition_shard.has_coalition(coalition_name):
                continue
            for member in list(coalition_shard.coalition(
                    coalition_name).members):
                self._shard(member).refresh_member(member, coalition_name,
                                                   description)
                touched.add(member)
        self._notify_names(touched)
        if isinstance(shard, Registry):
            return shard.codatabase(name)
        return None

    def source(self, name: str) -> SourceDescription:
        return self._shard(name).source(name)

    def has_source(self, name: str) -> bool:
        return self._shard(name).has_source(name)

    def codatabase(self, name: str) -> CoDatabase:
        return self._shard(name).codatabase(name)

    def source_names(self) -> list[str]:
        """Fan-out merge: every shard's names, sorted (the deterministic
        merge order; a singleton registry reports insertion order)."""
        merged: list[str] = []
        for shard in self._shards:
            merged.extend(shard.source_names())
        return sorted(merged)

    def epochs(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for shard in self._shards:
            merged.update(shard.epochs())
        return merged

    def leases(self) -> dict[str, dict]:
        merged: dict[str, dict] = {}
        for shard in self._shards:
            merged.update(shard.leases())
        return merged

    def remove_source(self, name: str) -> None:
        shard = self._shard(name)
        shard.source(name)
        for coalition_shard in self._shards:
            for coalition_name in coalition_shard.coalitions_containing(name):
                self.leave(name, coalition_name)
        for any_shard in self._shards:
            any_shard.drop_links_involving(EndpointKind.DATABASE, name)
        shard.drop_source(name)

    # ------------------------------------------------------------ coalitions --

    def create_coalition(self, name: str, information_type: str,
                         parent: Optional[str] = None,
                         doc: str = "") -> Coalition:
        shard = self._shard(name)
        if shard.has_coalition(name):
            raise WebFinditError(f"coalition {name!r} already exists")
        parent_shard = None
        if parent is not None:
            parent_shard = self._shard(parent)
            if not parent_shard.has_coalition(parent):
                raise UnknownCoalition(f"no parent coalition {parent!r}")
        coalition = Coalition(name=name, information_type=information_type,
                              parent=parent, doc=doc)
        shard.put_coalition(coalition)
        if parent is not None and parent_shard is not None:
            parent_shard.note_child(parent, name)
            parent_members = list(parent_shard.coalition(parent).members)
            for member in parent_members:
                self._write_lattice(member, coalition)
            self._notify_names(parent_members)
        return coalition

    def coalition(self, name: str) -> Coalition:
        return self._shard(name).coalition(name)

    def has_coalition(self, name: str) -> bool:
        return self._shard(name).has_coalition(name)

    def coalition_names(self) -> list[str]:
        merged: list[str] = []
        for shard in self._shards:
            merged.extend(shard.coalition_names())
        return sorted(merged)

    def dissolve_coalition(self, name: str) -> None:
        shard = self._shard(name)
        coalition = shard.coalition(name)
        children = shard.children_of(name)
        if children:
            raise WebFinditError(
                f"coalition {name!r} has specializations "
                f"{children!r}; dissolve them first")
        for member in list(coalition.members):
            self.leave(member, name)
        for link in [l for l in self.service_links()
                     if l.involves(EndpointKind.COALITION, name)]:
            self.remove_service_link(link)
        if coalition.parent is not None:
            self._shard(coalition.parent).forget_child(coalition.parent,
                                                       name)
        shard.drop_coalition(name)

    # ------------------------------------------------------------ membership --

    def _coalition_chain(self, coalition: Coalition) -> list[Coalition]:
        """*coalition* plus its ancestors, fetched shard by shard."""
        chain = [coalition]
        current = coalition
        while current.parent:
            parent_shard = self._shard(current.parent)
            if not parent_shard.has_coalition(current.parent):
                break
            current = parent_shard.coalition(current.parent)
            chain.append(current)
        return chain

    def _write_lattice(self, database_name: str,
                       coalition: Coalition) -> None:
        """Register *coalition* and its ancestor chain in the owner's
        co-database — one counted write per lattice class, exactly as
        the singleton's ``_register_lattice``."""
        shard = self._shard(database_name)
        for ancestor in reversed(self._coalition_chain(coalition)):
            shard.codb_write(database_name, "register_coalition", ancestor)

    def join(self, database_name: str, coalition_name: str) -> None:
        database_shard = self._shard(database_name)
        coalition_shard = self._shard(coalition_name)
        description = database_shard.source(database_name)
        coalition = coalition_shard.coalition(coalition_name)
        if coalition.has_member(database_name):
            raise MembershipError(
                f"{database_name!r} is already in {coalition_name!r}")
        coalition_shard.coalition_add_member(coalition_name, database_name)
        members = list(coalition_shard.coalition(coalition_name).members)

        self._write_lattice(database_name, coalition)
        for child_name in coalition_shard.children_of(coalition_name):
            child = self._shard(child_name).coalition(child_name)
            self._write_lattice(database_name, child)
        database_shard.codb_write(database_name, "record_membership",
                                  coalition_name)

        # The joiner learns every existing member (and itself)...
        for member in members:
            member_description = self._shard(member).source(member)
            database_shard.codb_write(database_name, "add_member",
                                      coalition_name, member_description)
        # ...and existing links involving the coalition.
        for link in self.service_links():
            if link.involves(EndpointKind.COALITION, coalition_name):
                database_shard.codb_write(database_name, "add_service_link",
                                          link)

        # Existing members learn the joiner.
        for member in members:
            if member == database_name:
                continue
            self._shard(member).codb_write(member, "add_member",
                                           coalition_name, description)
        self._notify_names(members)

    def leave(self, database_name: str, coalition_name: str) -> None:
        coalition_shard = self._shard(coalition_name)
        coalition = coalition_shard.coalition(coalition_name)
        if not coalition.has_member(database_name):
            raise MembershipError(
                f"{database_name!r} is not in {coalition_name!r}")
        coalition_shard.coalition_remove_member(coalition_name,
                                                database_name)
        remaining = [member for member in coalition.members
                     if member != database_name]
        self._shard(database_name).codb_write(database_name,
                                              "forget_coalition",
                                              coalition_name)
        for member in remaining:
            self._shard(member).codb_write(member, "remove_member",
                                           coalition_name, database_name)
        self._notify_names([database_name, *remaining])

    # ------------------------------------------------------------ service links --

    def _audience_names(self, link: ServiceLink) -> list[str]:
        """Databases whose co-databases must know about *link* — the
        singleton's audience, by name."""
        audience: list[str] = []
        for kind, name in ((link.from_kind, link.from_name),
                           (link.to_kind, link.to_name)):
            if kind is EndpointKind.COALITION:
                for member in self.coalition(name).members:
                    if member not in audience:
                        audience.append(member)
            else:
                self.source(name)
                if name not in audience:
                    audience.append(name)
        return audience

    def add_service_link(self, link: ServiceLink) -> None:
        for kind, name in ((link.from_kind, link.from_name),
                           (link.to_kind, link.to_name)):
            if kind is EndpointKind.COALITION:
                self.coalition(name)
            else:
                self.source(name)
        if not link.contact:
            if link.to_kind is EndpointKind.DATABASE:
                contact = link.to_name
            else:
                members = self.coalition(link.to_name).members
                contact = members[0] if members else ""
            link = replace(link, contact=contact)
        if self._shards[0].find_link(link) is not None:
            raise WebFinditError(f"service link {link.label} already exists")
        # Links are replicated to every shard in coordinator order, so
        # each shard's stored list matches the singleton's ordering.
        for shard in self._shards:
            shard.append_link(link)
        audience = self._audience_names(link)
        for name in audience:
            self._shard(name).codb_write(name, "add_service_link", link)
        self._notify_names(audience)

    def remove_service_link(self, link: ServiceLink) -> None:
        stored = self._shards[0].find_link(link)
        if stored is None:
            raise WebFinditError(f"no service link {link.label}")
        for shard in self._shards:
            shard.remove_link(stored)
        audience = self._audience_names(stored)
        for name in audience:
            self._shard(name).codb_write(name, "remove_service_link", stored)
        self._notify_names(audience)

    def service_links(self) -> list[ServiceLink]:
        return self._shards[0].service_links()

    # ------------------------------------------------------------- documents --

    def attach_document(self, source_name: str, format_name: str,
                        content: str, url: str = "") -> None:
        shard = self._shard(source_name)
        shard.codb_write(source_name, "attach_document", source_name,
                         format_name, content, url)
        shard.notify_mutation([source_name])

    # ------------------------------------------------------------- summary --

    def summary(self) -> dict:
        """Deterministic fan-out merge: counters summed; the replicated
        link list counted once."""
        parts = [shard.summary() for shard in self._shards]
        return {
            "sources": sum(part["sources"] for part in parts),
            "coalitions": sum(part["coalitions"] for part in parts),
            "service_links": parts[0]["service_links"],
            "memberships": sum(part["memberships"] for part in parts),
        }
