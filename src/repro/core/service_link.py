"""Service links: low-overhead, loosely-coupled sharing agreements.

The paper defines three kinds (§2.1): coalition↔coalition,
database↔database, and coalition↔database.  A link carries a *minimal
description* of the information the provider is willing to share —
which is what discovery follows when local coalitions fail to answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WebFinditError


class EndpointKind(enum.Enum):
    """What each end of a service link is."""

    COALITION = "coalition"
    DATABASE = "database"

    @classmethod
    def parse(cls, value: str) -> "EndpointKind":
        try:
            return cls(value.lower())
        except ValueError as exc:
            raise WebFinditError(
                f"service-link endpoint kind must be coalition or "
                f"database, not {value!r}") from exc


@dataclass(frozen=True)
class ServiceLink:
    """A directed sharing agreement: provider → consumer.

    The *from* side offers a minimal description of *information_type*
    to the *to* side.  ``ATO_to_Medical`` in Figure 1 is
    ``ServiceLink(database:ATO -> coalition:Medical)``.
    """

    from_kind: EndpointKind
    from_name: str
    to_kind: EndpointKind
    to_name: str
    information_type: str = ""
    description: str = ""
    #: A database whose co-database can answer for the *to* side — the
    #: to-database itself, or a designated member of the to-coalition.
    #: Filled in by the registry when the link is established.
    contact: str = ""

    @property
    def kind(self) -> str:
        """The paper's three service types."""
        if self.from_kind is EndpointKind.COALITION \
                and self.to_kind is EndpointKind.COALITION:
            return "coalition-coalition"
        if self.from_kind is EndpointKind.DATABASE \
                and self.to_kind is EndpointKind.DATABASE:
            return "database-database"
        return "coalition-database"

    @property
    def label(self) -> str:
        """Figure-1 style label, e.g. ``ATO_to_Medical``."""
        def compact(name: str) -> str:
            return name.replace(" ", "")
        return f"{compact(self.from_name)}_to_{compact(self.to_name)}"

    def involves(self, kind: EndpointKind, name: str) -> bool:
        """True when either endpoint is (kind, name)."""
        return ((self.from_kind is kind and self.from_name == name)
                or (self.to_kind is kind and self.to_name == name))

    def to_wire(self) -> dict:
        return {
            "from_kind": self.from_kind.value,
            "from_name": self.from_name,
            "to_kind": self.to_kind.value,
            "to_name": self.to_name,
            "information_type": self.information_type,
            "description": self.description,
            "contact": self.contact,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "ServiceLink":
        return cls(
            from_kind=EndpointKind.parse(payload.get("from_kind", "database")),
            from_name=payload.get("from_name", ""),
            to_kind=EndpointKind.parse(payload.get("to_kind", "database")),
            to_name=payload.get("to_name", ""),
            information_type=payload.get("information_type", ""),
            description=payload.get("description", ""),
            contact=payload.get("contact", ""))
