"""The WebFINDIT information-space registry.

The registry is the administrative bookkeeping that keeps every
co-database consistent with the paper's locality rule: the co-database
of database *D* stores

* *D*'s own advertisement,
* the coalitions *D* is a member of — their class (plus lattice
  context), their metadata record, and descriptions of **all** their
  members,
* service links involving those coalitions or *D* itself.

Nothing else: a co-database never holds a global view, which is what
lets WebFINDIT scale and is what the discovery algorithm navigates.

Query traffic is remote (CORBA, via :class:`~repro.core.codatabase.
CoDatabaseServant`); maintenance operations run through the registry,
which writes directly into the affected co-databases and counts every
write — the currency of benches S2/S3.

The public maintenance operations are layered over *shard-local
primitives* (``refresh_advertisement``, ``put_coalition``,
``codb_write``, …) that touch only state this registry instance owns.
A singleton deployment calls the orchestration methods below directly;
a sharded deployment (:mod:`repro.core.sharding`) runs the same
orchestration once in the coordinator and issues the primitives to
whichever shard the consistent-hash ring says owns each name.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Optional

from repro.core.coalition import Coalition
from repro.core.codatabase import CoDatabase
from repro.core.model import Ontology, SourceDescription
from repro.core.resilience import HealthBoard
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import (MembershipError, UnknownCoalition, UnknownDatabase,
                          WebFinditError)


class Registry:
    """Administers coalitions, service links, sources, and co-databases."""

    def __init__(self, ontology: Optional[Ontology] = None,
                 codatabase_factory: Optional[Callable[[str], CoDatabase]]
                 = None):
        self.ontology = ontology
        #: Builds the co-database for a newly registered source.  The
        #: default is one plain in-process CoDatabase; the availability
        #: layer injects a factory producing
        #: :class:`~repro.core.replication.ReplicatedCoDatabase` sets.
        self._codatabase_factory = codatabase_factory
        self._sources: dict[str, SourceDescription] = {}
        self._codatabases: dict[str, CoDatabase] = {}
        self._coalitions: dict[str, Coalition] = {}
        self._links: list[ServiceLink] = []
        #: Children of each coalition (topic specialisations).
        self._children: dict[str, list[str]] = {}
        #: Count of individual co-database writes — the maintenance-cost
        #: currency reported by benches S2/S3.
        self.update_operations = 0
        #: Called with the set of database names whose co-databases a
        #: mutation just wrote to; metadata caches subscribe here.
        self._invalidation_listeners: \
            list[Callable[[frozenset[str]], None]] = []
        #: Per-source circuit breakers, shared by every discovery engine
        #: in the federation so health memory outlives a single query.
        self.health = HealthBoard()
        #: Monotonic shard-level mutation version: bumped once per
        #: invalidation broadcast.  The cache tier and the ``\shards``
        #: inspection read it to see how far a shard has moved.
        self.mutation_epoch = 0

    # --------------------------------------------------------- invalidation --

    def add_invalidation_listener(
            self, listener: Callable[[frozenset[str]], None]) -> None:
        """Subscribe to co-database mutations.

        *listener* receives the names of every database whose
        co-database content just changed — exactly the entries a
        metadata cache must drop to stay coherent.
        """
        self._invalidation_listeners.append(listener)

    def _notify(self, names: Iterable[str]) -> None:
        affected = frozenset(name for name in names if name)
        if not affected:
            return
        self.mutation_epoch += 1
        for listener in self._invalidation_listeners:
            listener(affected)

    def notify_mutation(self, names: Iterable[str]) -> None:
        """Shard-local primitive: fire the invalidation listeners.

        A sharded coordinator finishes a cross-shard mutation by telling
        each shard which of its co-databases were written, so listeners
        (metadata caches, the shared cache tier) see exactly the union a
        singleton registry would have announced in one call.
        """
        self._notify(names)

    # ------------------------------------------------------------- sources --

    def add_source(self, description: SourceDescription,
                   codatabase_product: str = "ObjectStore") -> CoDatabase:
        """Register an information source; creates its co-database."""
        if description.name in self._sources:
            raise WebFinditError(
                f"source {description.name!r} already registered")
        if self._codatabase_factory is not None:
            codatabase = self._codatabase_factory(description.name)
        else:
            codatabase = CoDatabase(description.name, ontology=self.ontology,
                                    product=codatabase_product)
        codatabase.advertise(description)
        self._sources[description.name] = description
        self._codatabases[description.name] = codatabase
        self.update_operations += 1
        self._notify([description.name])
        return codatabase

    def advertise(self, description: SourceDescription) -> CoDatabase:
        """Create the source if new, else replace its advertisement
        (propagating the refreshed description to coalition peers)."""
        if description.name not in self._sources:
            return self.add_source(description)
        self.refresh_advertisement(description)
        codatabase = self._codatabases[description.name]
        touched = {description.name}
        for coalition_name in list(codatabase.memberships):
            coalition = self._coalitions.get(coalition_name)
            if coalition is None:
                continue
            for member_name in coalition.members:
                self.refresh_member(member_name, coalition_name, description)
                touched.add(member_name)
        self._notify(touched)
        return codatabase

    def refresh_advertisement(self, description: SourceDescription) -> None:
        """Shard-local primitive: replace an owned source's advertisement
        (no peer propagation, no invalidation — the caller orchestrates
        both)."""
        self.source(description.name)
        self._sources[description.name] = description
        self._codatabases[description.name].advertise(description)
        self.update_operations += 1

    def refresh_member(self, member_name: str, coalition_name: str,
                       description: SourceDescription) -> None:
        """Shard-local primitive: replace one member record in an owned
        co-database — a single logical maintenance write."""
        member_codb = self.codatabase(member_name)
        member_codb.remove_member(coalition_name, description.name)
        member_codb.add_member(coalition_name, description)
        self.update_operations += 1

    def has_source(self, name: str) -> bool:
        return name in self._sources

    def source(self, name: str) -> SourceDescription:
        description = self._sources.get(name)
        if description is None:
            raise UnknownDatabase(f"no source {name!r} registered")
        return description

    def codatabase(self, name: str) -> CoDatabase:
        codatabase = self._codatabases.get(name)
        if codatabase is None:
            raise UnknownDatabase(f"no co-database for {name!r}")
        return codatabase

    def source_names(self) -> list[str]:
        return list(self._sources)

    def epochs(self) -> dict[str, int]:
        """Per-co-database maintenance-write versions."""
        return {name: getattr(codatabase, "epoch", 0)
                for name, codatabase in self._codatabases.items()}

    def leases(self) -> dict[str, dict]:
        """Per-co-database lease/fence view (quorum-replicated sets only).

        Sources whose co-database is a plain (or non-quorum) facade are
        omitted — they have no election state to report.
        """
        leases: dict[str, dict] = {}
        for name, codatabase in self._codatabases.items():
            status = getattr(codatabase, "lease_status", None)
            if status is None:
                continue
            snapshot = status()
            if snapshot.get("quorum"):
                leases[name] = snapshot
        return leases

    def remove_source(self, name: str) -> None:
        """Unregister a source, leaving all its coalitions first."""
        self.source(name)
        for coalition_name in self.coalitions_containing(name):
            self.leave(name, coalition_name)
        self.drop_links_involving(EndpointKind.DATABASE, name)
        self.drop_source(name)

    def coalitions_containing(self, member: str) -> list[str]:
        """Owned coalitions (in creation order) that *member* belongs to."""
        return [coalition.name for coalition in self._coalitions.values()
                if coalition.has_member(member)]

    def drop_links_involving(self, kind: EndpointKind, name: str) -> None:
        """Shard-local primitive: forget stored links touching an
        endpoint, without co-database writes (mirrors what source
        removal has always done)."""
        self._links = [link for link in self._links
                       if not link.involves(kind, name)]

    def drop_source(self, name: str) -> None:
        """Shard-local primitive: unregister an owned source whose
        coalition memberships and links the caller already unwound."""
        self.source(name)
        del self._sources[name]
        del self._codatabases[name]
        self.update_operations += 1
        self.health.forget(name)
        self._notify([name])

    # ------------------------------------------------------------ coalitions --

    def create_coalition(self, name: str, information_type: str,
                         parent: Optional[str] = None,
                         doc: str = "") -> Coalition:
        """Create a coalition (optionally specializing *parent*)."""
        if name in self._coalitions:
            raise WebFinditError(f"coalition {name!r} already exists")
        if parent is not None and parent not in self._coalitions:
            raise UnknownCoalition(f"no parent coalition {parent!r}")
        coalition = Coalition(name=name, information_type=information_type,
                              parent=parent, doc=doc)
        self.put_coalition(coalition)
        if parent is not None:
            self.note_child(parent, name)
            # Members of the parent learn the new specialization so the
            # class lattice stays browsable from their co-databases.
            for member in self._coalitions[parent].members:
                self._register_lattice(self._codatabases[member], coalition)
            self._notify(self._coalitions[parent].members)
        return coalition

    def put_coalition(self, coalition: Coalition) -> None:
        """Shard-local primitive: store an owned coalition record."""
        self._coalitions[coalition.name] = coalition
        self._children.setdefault(coalition.name, [])

    def drop_coalition(self, name: str) -> None:
        """Shard-local primitive: forget an owned (already emptied)
        coalition record."""
        self.coalition(name)
        del self._coalitions[name]
        self._children.pop(name, None)

    def note_child(self, parent: str, child: str) -> None:
        """Shard-local primitive: record a specialization under an owned
        parent coalition."""
        self._children.setdefault(parent, []).append(child)

    def forget_child(self, parent: str, child: str) -> None:
        if child in self._children.get(parent, []):
            self._children[parent].remove(child)

    def children_of(self, name: str) -> list[str]:
        return list(self._children.get(name, []))

    def has_coalition(self, name: str) -> bool:
        return name in self._coalitions

    def coalition(self, name: str) -> Coalition:
        coalition = self._coalitions.get(name)
        if coalition is None:
            raise UnknownCoalition(f"no coalition {name!r}")
        return coalition

    def coalition_add_member(self, coalition_name: str,
                             database_name: str) -> None:
        """Shard-local primitive: record membership in an owned
        coalition (the caller validated and propagates)."""
        self.coalition(coalition_name).add_member(database_name)

    def coalition_remove_member(self, coalition_name: str,
                                database_name: str) -> None:
        self.coalition(coalition_name).remove_member(database_name)

    def coalition_names(self) -> list[str]:
        return list(self._coalitions)

    def dissolve_coalition(self, name: str) -> None:
        """Dissolve a coalition: members leave, links to it are dropped."""
        coalition = self.coalition(name)
        if self._children.get(name):
            raise WebFinditError(
                f"coalition {name!r} has specializations "
                f"{self._children[name]!r}; dissolve them first")
        for member in list(coalition.members):
            self.leave(member, name)
        for link in [l for l in self._links
                     if l.involves(EndpointKind.COALITION, name)]:
            self.remove_service_link(link)
        parent = coalition.parent
        if parent is not None:
            self.forget_child(parent, name)
        self.drop_coalition(name)

    # ------------------------------------------------------------ membership --

    def _register_lattice(self, codatabase: CoDatabase,
                          coalition: Coalition) -> None:
        """Register *coalition* and its ancestor chain in *codatabase*."""
        chain: list[Coalition] = []
        current: Optional[Coalition] = coalition
        while current is not None:
            chain.append(current)
            current = (self._coalitions.get(current.parent)
                       if current.parent else None)
        for ancestor in reversed(chain):
            codatabase.register_coalition(ancestor)
            self.update_operations += 1

    def join(self, database_name: str, coalition_name: str) -> None:
        """Join a database to a coalition, propagating metadata both ways."""
        description = self.source(database_name)
        coalition = self.coalition(coalition_name)
        if coalition.has_member(database_name):
            raise MembershipError(
                f"{database_name!r} is already in {coalition_name!r}")
        coalition.add_member(database_name)

        joiner = self._codatabases[database_name]
        self._register_lattice(joiner, coalition)
        for child_name in self._children.get(coalition_name, []):
            self._register_lattice(joiner, self._coalitions[child_name])
        joiner.record_membership(coalition_name)
        self.update_operations += 1

        # The joiner learns every existing member (and itself)...
        for member_name in coalition.members:
            joiner.add_member(coalition_name, self.source(member_name))
            self.update_operations += 1
        # ...and existing links involving the coalition.
        for link in self._links:
            if link.involves(EndpointKind.COALITION, coalition_name):
                joiner.add_service_link(link)
                self.update_operations += 1

        # Existing members learn the joiner.
        for member_name in coalition.members:
            if member_name == database_name:
                continue
            member_codb = self._codatabases[member_name]
            member_codb.add_member(coalition_name, description)
            self.update_operations += 1
        self._notify(coalition.members)

    def leave(self, database_name: str, coalition_name: str) -> None:
        """Remove a database from a coalition, updating all co-databases."""
        coalition = self.coalition(coalition_name)
        if not coalition.has_member(database_name):
            raise MembershipError(
                f"{database_name!r} is not in {coalition_name!r}")
        coalition.remove_member(database_name)
        leaver = self._codatabases[database_name]
        leaver.forget_coalition(coalition_name)
        self.update_operations += 1
        for member_name in coalition.members:
            self._codatabases[member_name].remove_member(coalition_name,
                                                         database_name)
            self.update_operations += 1
        self._notify([database_name, *coalition.members])

    # ------------------------------------------------------------ service links --

    def _link_audience(self, link: ServiceLink) -> list[CoDatabase]:
        """Co-databases that must know about *link*: members of coalition
        endpoints, the database endpoints themselves."""
        audience: list[CoDatabase] = []
        for kind, name in ((link.from_kind, link.from_name),
                           (link.to_kind, link.to_name)):
            if kind is EndpointKind.COALITION:
                for member in self.coalition(name).members:
                    codatabase = self._codatabases[member]
                    if codatabase not in audience:
                        audience.append(codatabase)
            else:
                codatabase = self.codatabase(name)
                if codatabase not in audience:
                    audience.append(codatabase)
        return audience

    def add_service_link(self, link: ServiceLink) -> None:
        """Establish a service link and propagate it to its audience.

        The link's *contact* is filled in when empty: the to-database
        itself, or the first member of the to-coalition — the co-database
        discovery will consult to continue past the link.
        """
        for kind, name in ((link.from_kind, link.from_name),
                           (link.to_kind, link.to_name)):
            if kind is EndpointKind.COALITION:
                self.coalition(name)
            else:
                self.source(name)
        if not link.contact:
            if link.to_kind is EndpointKind.DATABASE:
                contact = link.to_name
            else:
                members = self.coalition(link.to_name).members
                contact = members[0] if members else ""
            link = replace(link, contact=contact)
        if self.find_link(link) is not None:
            raise WebFinditError(f"service link {link.label} already exists")
        self.append_link(link)
        audience = self._link_audience(link)
        for codatabase in audience:
            codatabase.add_service_link(link)
            self.update_operations += 1
        self._notify(codb.owner_name for codb in audience)

    def remove_service_link(self, link: ServiceLink) -> None:
        stored = self.find_link(link)
        if stored is None:
            raise WebFinditError(f"no service link {link.label}")
        self.remove_link(stored)
        audience = self._link_audience(stored)
        for codatabase in audience:
            codatabase.remove_service_link(stored)
            self.update_operations += 1
        self._notify(codb.owner_name for codb in audience)

    def find_link(self, link: ServiceLink) -> Optional[ServiceLink]:
        """The stored link matching *link*'s identity (label + endpoint
        kinds), or None."""
        return next((existing for existing in self._links
                     if existing.label == link.label
                     and existing.from_kind == link.from_kind
                     and existing.to_kind == link.to_kind), None)

    def append_link(self, link: ServiceLink) -> None:
        """Shard-local primitive: append to the stored link list (the
        caller validated, filled the contact, and writes the audience)."""
        self._links.append(link)

    def remove_link(self, link: ServiceLink) -> None:
        self._links.remove(link)

    def service_links(self) -> list[ServiceLink]:
        return list(self._links)

    # ------------------------------------------------------------- documents --

    def attach_document(self, source_name: str, format_name: str,
                        content: str, url: str = "") -> None:
        """Store documentation in the owner's co-database."""
        self.codatabase(source_name).attach_document(source_name, format_name,
                                                     content, url)
        self.update_operations += 1
        self._notify([source_name])

    # ----------------------------------------------------- shard primitives --

    #: Co-database mutators a coordinator may issue through
    #: :meth:`codb_write`.  Keeping the list explicit makes the wire
    #: surface of a registry shard auditable.
    CODB_WRITE_OPERATIONS = frozenset({
        "register_coalition", "record_membership", "drop_membership",
        "forget_coalition", "add_member", "remove_member",
        "add_service_link", "remove_service_link", "attach_document",
    })

    def codb_write(self, database_name: str, operation: str,
                   *args) -> None:
        """Shard-local primitive: one counted maintenance write into an
        owned co-database.

        This is the unit the sharded coordinator composes cross-shard
        operations from; each call is exactly one ``update_operations``
        tick, matching the singleton's accounting.
        """
        if operation not in self.CODB_WRITE_OPERATIONS:
            raise WebFinditError(
                f"{operation!r} is not a co-database maintenance write")
        codatabase = self.codatabase(database_name)
        getattr(codatabase, operation)(*args)
        self.update_operations += 1

    def epoch_of(self, name: str) -> int:
        """Maintenance-write version of one owned co-database."""
        return getattr(self.codatabase(name), "epoch", 0)

    def memberships_of(self, name: str) -> list[str]:
        """Coalitions an owned source belongs to, in join order."""
        return list(self.codatabase(name).memberships)

    def shard_status(self) -> dict:
        """Inspection snapshot for ``\\shards`` and shard metrics."""
        return {
            "sources": len(self._sources),
            "coalitions": len(self._coalitions),
            "service_links": len(self._links),
            "update_operations": self.update_operations,
            "mutation_epoch": self.mutation_epoch,
        }

    # ------------------------------------------------------------- summary --

    def summary(self) -> dict:
        """Topology snapshot: counts checked against Figure 1 in tests."""
        return {
            "sources": len(self._sources),
            "coalitions": len(self._coalitions),
            "service_links": len(self._links),
            "memberships": sum(len(c.members)
                               for c in self._coalitions.values()),
        }
