"""The WebFINDIT browser (the Java-applet UI of the paper, scripted).

"The browser is the user's interface to WebFINDIT.  It uses the
meta-data stored in the co-databases to educate users about the
available information space, locate the information source servers,
send query to remote databases and display their results."

:class:`Browser` is a programmatic stand-in for the applet: statements
go in as WebTassili text, rendered results come back and accumulate in
a transcript.  :meth:`information_tree` reproduces the left-hand pane
of Figure 4 — coalitions with their member databases.
"""

from __future__ import annotations

from typing import Optional

from repro.core.query_processor import QueryProcessor, Session, WtResult


class Browser:
    """One interactive exploration session."""

    def __init__(self, processor: QueryProcessor, session: Session):
        self._processor = processor
        self.session = session
        #: (statement, rendered result) pairs, oldest first.
        self.transcript: list[tuple[str, str]] = []

    def submit(self, statement: str) -> WtResult:
        """Execute one WebTassili statement and record it."""
        result = self._processor.execute(statement, self.session)
        self.transcript.append((statement, result.text))
        return result

    # -- guided operations (the applet's buttons) ----------------------------------

    def find(self, information: str) -> WtResult:
        """``Find Coalitions With Information ...``"""
        return self.submit(f"Find Coalitions With Information '{information}'")

    def connect_coalition(self, name: str) -> WtResult:
        return self.submit(f"Connect To Coalition '{name}'")

    def connect_database(self, name: str) -> WtResult:
        return self.submit(f"Connect To Database '{name}'")

    def subclasses(self, class_name: str) -> WtResult:
        return self.submit(f"Display SubClasses of Class '{class_name}'")

    def instances(self, class_name: str) -> WtResult:
        return self.submit(f"Display Instances of Class '{class_name}'")

    def documentation(self, instance: str,
                      class_name: Optional[str] = None) -> WtResult:
        statement = f"Display Document of Instance '{instance}'"
        if class_name:
            statement += f" Of Class '{class_name}'"
        return self.submit(statement)

    def access_information(self, instance: str) -> WtResult:
        return self.submit(
            f"Display Access Information of Instance '{instance}'")

    def interface(self, instance: str) -> WtResult:
        return self.submit(f"Display Interface of Instance '{instance}'")

    def fetch(self, database: str, native_query: str) -> WtResult:
        """The Fetch button of Figure 6: run a native query."""
        escaped = native_query.replace("'", "''")
        return self.submit(f"Query '{database}' Native '{escaped}'")

    def invoke(self, database: str, type_name: str, function: str,
               *args) -> WtResult:
        rendered_args = ", ".join(_literal(a) for a in args)
        statement = (f"Invoke '{function}' Of Type '{type_name}' "
                     f"On '{database}'")
        if args:
            statement += f" With ({rendered_args})"
        return self.submit(statement)

    # -- display -------------------------------------------------------------------

    def information_tree(self) -> str:
        """Figure-4-style tree of the coalitions known at the current
        entry point, with member databases as leaves."""
        client = self._processor._client(self.session.metadata_source)
        lines = [f"Information space (from co-database of "
                 f"{self.session.metadata_source}):"]
        for coalition in client.known_coalitions():
            lines.append(f"  + {coalition['name']}  "
                         f"[{coalition.get('information_type', '')}]")
            for member in coalition.get("members", []):
                lines.append(f"      - {member}")
        return "\n".join(lines)

    def render_transcript(self) -> str:
        """The whole session as alternating prompt/response text."""
        blocks = []
        for statement, text in self.transcript:
            blocks.append(f"webtassili> {statement}\n{text}")
        return "\n\n".join(blocks)


def _literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)
