"""The shared metadata cache tier.

A per-process :class:`~repro.core.metacache.MetadataCache` stops paying
off once the registry is sharded: every client process re-fetches the
same hot coalition listings from the authoritative co-databases.  This
module adds the paper-era remedy — one cache *server* (itself just
another CORBA object on the fabric) that peers consult before making a
GIOP round-trip to an authoritative co-database.

Coherence reuses the PR 3 epoch machinery end to end:

* every cached value carries the epoch tag of the co-database state it
  was read from (:meth:`CoDatabaseServant.versioned` reads the
  ``applied`` watermark *before* the value, so a racing write can only
  make the tag conservative);
* a registry mutation bumps the owning co-database's epoch and the
  shard's :class:`InvalidationBroadcaster` pushes ``{name: floor}``
  batches to the tier — the floor is the post-mutation epoch, or
  :data:`TOMBSTONE` when the source was removed;
* the tier drops every entry below its floor, refuses *stores* below
  it (an in-flight read that fetched pre-mutation data cannot
  resurrect it), and deduplicates replayed batches by per-origin
  sequence number, so retrying a dropped broadcast is always safe.

Staleness after a mutation is therefore bounded by one broadcast delay
plus the configured retry budget — and it is never silent: a broadcast
that exhausts its retries stays in :attr:`InvalidationBroadcaster.
pending` and is re-pushed with the next batch.

Availability is strictly one-way: :class:`TieredCoDatabaseClient`
treats any tier failure (killed servant, refused connection, shed
request) as a miss and goes straight to the authoritative co-database,
counting the event in ``cache_bypassed`` — queries keep completeness
1.00 with the tier down (the chaos suite in
``tests/core/test_cachetier_chaos.py`` kills it mid-query to prove
this).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Optional

from repro.core.codatabase import CoDatabase
from repro.core.discovery import CoDatabaseClient
from repro.core.metacache import CACHEABLE_OPERATIONS, MetadataCache
from repro.core.resilience import call_policy
from repro.errors import CommFailure, ObjectNotExist, ServerBusy
from repro.orb.idl import InterfaceBuilder, InterfaceDef
from repro.orb.orb import RemoteSystemError

#: Floor value meaning "this source is gone: cache nothing for it".
TOMBSTONE = -1

#: Tier failures that degrade to a direct GIOP call instead of failing
#: the query: dead endpoint, deactivated servant, shed request, or any
#: unexpected server-side error.  The cache tier is an optimisation; it
#: is never allowed to subtract availability.
BYPASS_ERRORS = (CommFailure, ObjectNotExist, ServerBusy,
                 RemoteSystemError)

#: The cache-tier server interface.
CACHE_TIER_INTERFACE: InterfaceDef = (
    InterfaceBuilder("CacheTier", module="webfindit",
                     doc="Shared epoch-floored metadata cache")
    .operation("ping", doc="Liveness probe")
    .operation("lookup", "database", "operation", "arguments")
    .operation("store", "database", "operation", "arguments", "value",
               "epoch")
    .operation("invalidate", "origin", "seq", "floors",
               doc="Apply one epoch-floor batch from a registry shard")
    .operation("stats")
    .build())


class CacheTierServant:
    """CORBA servant for the shared cache tier.

    Entries live in a :class:`MetadataCache` (TTL + bounded size); the
    servant adds per-source epoch floors and the idempotent
    invalidation protocol.  Floor bookkeeping and entry access share
    one lock so a store racing an invalidation can never slip a
    pre-mutation value past its floor.
    """

    def __init__(self, cache: Optional[MetadataCache] = None,
                 ttl: float = 300.0, max_entries: int = 65536):
        self.cache = cache if cache is not None \
            else MetadataCache(ttl=ttl, max_entries=max_entries)
        self._floors: dict[str, int] = {}
        #: (origin, database) -> last applied broadcast sequence.
        self._applied_seq: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self.lookups = 0
        self.stores = 0
        self.stale_stores_refused = 0
        self.invalidation_batches = 0
        self.invalidated_entries = 0

    def ping(self) -> bool:
        return True

    def lookup(self, database: str, operation: str,
               arguments: list) -> dict[str, Any]:
        with self._lock:
            self.lookups += 1
            floor = self._floors.get(database)
            if floor == TOMBSTONE:
                return {"hit": False, "value": None}
            hit, value = self.cache.lookup_fresh(database, operation,
                                                 tuple(arguments), floor)
            return {"hit": hit, "value": value}

    def store(self, database: str, operation: str, arguments: list,
              value: Any, epoch: int) -> bool:
        """Accept a read-through fill unless it is provably stale.

        A fill tagged below the source's floor fetched pre-mutation
        state that an invalidation already retired; accepting it would
        resurrect stale data with no bound on how long it survives.
        """
        with self._lock:
            floor = self._floors.get(database)
            if floor == TOMBSTONE \
                    or (floor is not None
                        and (epoch is None or epoch < floor)):
                self.stale_stores_refused += 1
                return False
            self.cache.store(database, operation, tuple(arguments), value,
                             epoch)
            self.stores += 1
            return True

    def invalidate(self, origin: str, seq: int, floors: dict) -> bool:
        """Apply one floor batch from shard *origin*.

        Idempotent: each source's floor only moves when the batch
        sequence is newer than the last one applied for it from that
        origin, so dropped-and-retried or duplicated broadcasts cannot
        regress a floor (every source is owned by exactly one shard,
        hence one origin).
        """
        with self._lock:
            self.invalidation_batches += 1
            affected = []
            for database, floor in floors.items():
                key = (origin, database)
                last = self._applied_seq.get(key)
                if last is not None and seq <= last:
                    continue
                self._applied_seq[key] = seq
                self._floors[database] = floor
                affected.append(database)
            if affected:
                before = self.cache.invalidations
                self.cache.invalidate(affected)
                self.invalidated_entries += (self.cache.invalidations
                                             - before)
            return True

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "lookups": self.lookups,
                "stores": self.stores,
                "stale_stores_refused": self.stale_stores_refused,
                "invalidation_batches": self.invalidation_batches,
                "invalidated_entries": self.invalidated_entries,
                "floors": len(self._floors),
                "cache": self.cache.stats(),
            }


class CacheTierClient:
    """Thin client over the cache tier, local or behind the ORB.

    Raises the transport's own errors — the *caller* decides whether a
    tier failure degrades (discovery does) or propagates (tests).
    """

    def __init__(self, target):
        self._target = target

    def _invoke(self, operation: str, *args: Any) -> Any:
        if hasattr(self._target, "invoke"):
            # Cache-tier operations are all safe to resend: lookups and
            # stores are value-idempotent, invalidations carry seqs.
            with call_policy(idempotent=True):
                return self._target.invoke(operation, *args)
        return getattr(self._target, operation)(*args)

    def ping(self) -> bool:
        return bool(self._invoke("ping"))

    def lookup(self, database: str, operation: str,
               args: tuple) -> tuple[bool, Any]:
        reply = self._invoke("lookup", database, operation, list(args))
        return bool(reply.get("hit")), reply.get("value")

    def store(self, database: str, operation: str, args: tuple,
              value: Any, epoch: int) -> bool:
        return bool(self._invoke("store", database, operation, list(args),
                                 value, epoch))

    def invalidate(self, origin: str, seq: int, floors: dict) -> bool:
        return bool(self._invoke("invalidate", origin, seq, floors))

    def stats(self) -> dict[str, Any]:
        return dict(self._invoke("stats"))


def _wire(value: Any) -> Any:
    """Shape a read result for CDR: objects become their wire structs
    (what the cacheable operations' proxies return anyway)."""
    if isinstance(value, list):
        return [_wire(item) for item in value]
    if hasattr(value, "to_wire"):
        return value.to_wire()
    return value


class TieredCoDatabaseClient(CoDatabaseClient):
    """A co-database client that consults the shared cache tier before
    crossing the ORB to the authoritative co-database.

    Misses fetch through the co-database's ``versioned`` operation so
    the fill carries a conservative epoch tag.  Any tier failure counts
    in :attr:`cache_bypassed` and falls through to a direct call —
    results are always complete, with or without the tier.
    """

    def __init__(self, target: Any, name: str, tier: CacheTierClient):
        super().__init__(target, name)
        self._tier = tier
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bypassed = 0

    @classmethod
    def wrapping(cls, client: CoDatabaseClient,
                 tier: CacheTierClient) -> "TieredCoDatabaseClient":
        """Wrap an existing client (same target, same name)."""
        return cls(client.target, client.name, tier)

    def _fetch_versioned(self, operation: str,
                         args: tuple) -> tuple[Any, int]:
        """One counted metadata call returning ``(value, epoch_tag)``."""
        self.calls += 1
        target = self.target
        if isinstance(target, CoDatabase):
            tag = target.applied
            if operation == "memberships":
                value: Any = list(target.memberships)
            else:
                value = getattr(target, operation)(*args)
            return _wire(value), tag
        with call_policy(idempotent=True):
            reply = target.invoke("versioned", operation, list(args))
        return reply["value"], int(reply["epoch"])

    def _call(self, operation: str, *args: Any) -> Any:
        if operation not in CACHEABLE_OPERATIONS:
            return super()._call(operation, *args)
        try:
            hit, value = self._tier.lookup(self.name, operation, args)
        except BYPASS_ERRORS:
            self.cache_bypassed += 1
            return super()._call(operation, *args)
        if hit:
            self.cache_hits += 1
            return value
        self.cache_misses += 1
        value, epoch = self._fetch_versioned(operation, args)
        try:
            self._tier.store(self.name, operation, args, value, epoch)
        except BYPASS_ERRORS:
            self.cache_bypassed += 1
        return value


def tiered_resolver(resolver: Callable[[str], CoDatabaseClient],
                    tier: Optional[CacheTierClient]
                    ) -> Callable[[str], CoDatabaseClient]:
    """Wrap *resolver* so every client it yields consults *tier* first
    (``tier=None`` returns the resolver unchanged)."""
    if tier is None:
        return resolver

    def resolve(name: str) -> CoDatabaseClient:
        return TieredCoDatabaseClient.wrapping(resolver(name), tier)

    return resolve


class InvalidationBroadcaster:
    """Registry invalidation listener that pushes epoch floors to the
    cache tier.

    One broadcaster per registry shard, attached with
    :meth:`Registry.add_invalidation_listener`.  Each mutation's
    audience becomes a ``{name: floor}`` batch — the current
    co-database epoch, or :data:`TOMBSTONE` for a removed source —
    delivered with a per-origin sequence number and a bounded retry
    budget.  Undeliverable floors stay in :attr:`pending` and ride the
    next batch, so staleness is bounded and observable (the
    ``pending_floors`` metric), never silent.
    """

    def __init__(self, registry, deliver: Callable[[str, int, dict], Any],
                 origin: str = "shard0", retries: int = 2,
                 backoff: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.registry = registry
        self._deliver = deliver
        self.origin = origin
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep
        self._lock = threading.Lock()
        self._seq = 0
        self.pending: dict[str, int] = {}
        self.broadcasts = 0
        self.retried = 0
        self.failed_broadcasts = 0

    def __call__(self, names: Iterable[str]) -> None:
        """The listener hook: compute floors for *names* and push."""
        floors: dict[str, int] = {}
        for name in names:
            if self.registry.has_source(name):
                floors[name] = self.registry.epoch_of(name)
            else:
                floors[name] = TOMBSTONE
        self.push(floors)

    def push(self, floors: dict) -> bool:
        with self._lock:
            # Later floors overwrite earlier pending ones: epochs only
            # grow and a tombstone is terminal until re-registration.
            self.pending.update(floors)
            if not self.pending:
                return True
            batch = dict(self.pending)
            self._seq += 1
            seq = self._seq
        for attempt in range(1 + self.retries):
            if attempt:
                self.retried += 1
                if self.backoff > 0:
                    self._sleep(self.backoff * attempt)
            try:
                self._deliver(self.origin, seq, batch)
            except BYPASS_ERRORS:
                continue
            with self._lock:
                for name, floor in batch.items():
                    if self.pending.get(name) == floor:
                        del self.pending[name]
            self.broadcasts += 1
            return True
        self.failed_broadcasts += 1
        return False

    def flush(self) -> bool:
        """Retry whatever is still pending (e.g. after a heal)."""
        return self.push({})

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {"origin": self.origin, "seq": self._seq,
                    "broadcasts": self.broadcasts,
                    "retried": self.retried,
                    "failed_broadcasts": self.failed_broadcasts,
                    "pending_floors": len(self.pending)}
