"""WebFINDIT core: the paper's primary contribution.

Coalitions, service links, co-databases, topic discovery, the
WebTassili query processor, the browser, and the system facade that
wires the four layers (query, communication, meta-data, data) together.
"""

from repro.core.browser import Browser
from repro.core.coalition import Coalition
from repro.core.codatabase import (CODATABASE_INTERFACE, CoDatabase,
                                   CoDatabaseServant)
from repro.core.discovery import (CoalitionLead, CoDatabaseClient,
                                  DiscoveryEngine, DiscoveryResult)
from repro.core.metacache import (CachingCoDatabaseClient, MetadataCache,
                                  caching_resolver)
from repro.core.model import (InformationType, Ontology, SourceDescription,
                              topic_score, topic_words)
from repro.core.query_processor import QueryProcessor, Session, WtResult
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.core.snapshot import (export_topology, import_topology,
                                 load_topology, save_topology)
from repro.core.system import DeploymentRecord, WebFinditSystem

__all__ = [
    "WebFinditSystem", "DeploymentRecord",
    "Registry", "Coalition", "ServiceLink", "EndpointKind",
    "CoDatabase", "CoDatabaseServant", "CODATABASE_INTERFACE",
    "DiscoveryEngine", "DiscoveryResult", "CoalitionLead",
    "CoDatabaseClient",
    "MetadataCache", "CachingCoDatabaseClient", "caching_resolver",
    "QueryProcessor", "Session", "WtResult", "Browser",
    "SourceDescription", "InformationType", "Ontology",
    "topic_score", "topic_words",
    "export_topology", "import_topology", "save_topology", "load_topology",
]
