"""Synthetic information-space generation for scalability benchmarks.

The paper's testbed is 14 databases; its scalability claims (§1, §2)
are architectural.  To measure them we generate topologies of arbitrary
size with the same shape as the healthcare world: databases clustered
into topic coalitions, a sparse mesh of service links between
coalitions, and everything reachable from everything via links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.broadcast import BroadcastDirectory
from repro.baselines.global_schema import GlobalSchemaMultidatabase
from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink

#: Topic vocabulary used to label synthetic coalitions.
TOPIC_NOUNS = ("cardiology", "oncology", "radiology", "pathology",
               "pharmacy", "genetics", "neurology", "immunology",
               "pediatrics", "geriatrics", "surgery", "nursing",
               "insurance", "billing", "transport", "research",
               "nutrition", "psychiatry", "dermatology", "audiology")


@dataclass
class ScaledSpace:
    """A generated topology plus the handles benchmarks need."""

    registry: Registry
    broadcast: BroadcastDirectory
    global_schema: GlobalSchemaMultidatabase
    database_names: list[str]
    coalition_topics: dict[str, str]  # coalition name -> topic

    def local_resolver(self, name: str) -> CoDatabaseClient:
        """Resolver over in-process co-databases (no ORB overhead), so
        counted metadata calls are purely algorithmic."""
        return CoDatabaseClient.for_local(self.registry.codatabase(name))

    def discovery_engine(self, **kwargs) -> DiscoveryEngine:
        return DiscoveryEngine(self.local_resolver, **kwargs)

    def caching_engine(self, cache, **kwargs) -> DiscoveryEngine:
        """An engine whose resolver answers reads from *cache*."""
        from repro.core.metacache import caching_resolver
        return DiscoveryEngine(caching_resolver(self.local_resolver, cache),
                               **kwargs)


def build_scaled_system(databases: int, coalitions: int,
                        links_per_coalition: int = 2,
                        seed: int = 1234, transport=None,
                        metadata_cache=None,
                        parallel_discovery: bool = False,
                        discovery_workers=None):
    """Deploy a *running* scaled federation: real engines, wrappers,
    co-database servants and naming bindings on an IIOP fabric — the
    in-memory one by default, or any *transport* (e.g. a pooled
    :class:`~repro.orb.transport.TcpTransport`) — so scalability can be
    measured in GIOP messages and wall-clock, not just metadata calls.

    Sources rotate over the three ORB products.  Each source is a tiny
    relational database with one table and one exported function.
    *metadata_cache*, *parallel_discovery*, and *discovery_workers*
    pass straight through to the system (the S1 hot-path knobs).
    Returns a :class:`~repro.core.system.WebFinditSystem`.
    """
    import random as _random

    from repro.core.model import SourceDescription
    from repro.core.service_link import EndpointKind, ServiceLink
    from repro.core.system import WebFinditSystem
    from repro.orb.products import ORBIX, ORBIXWEB, VISIBROKER
    from repro.sql.engine import Database
    from repro.wrappers.base import (ExportedAttribute, ExportedFunction,
                                     ExportedType, SqlBinding)

    if coalitions < 1 or databases < coalitions:
        raise ValueError("need at least one database per coalition")
    rng = _random.Random(seed)
    system = WebFinditSystem(transport=transport,
                             metadata_cache=metadata_cache,
                             parallel_discovery=parallel_discovery,
                             discovery_workers=discovery_workers)
    products = (ORBIX, ORBIXWEB, VISIBROKER)

    coalition_names: list[str] = []
    topics: dict[str, str] = {}
    for index in range(coalitions):
        topic = _topic_for(index)
        name = f"C{index:04d} {topic}"
        system.create_coalition(name, topic)
        coalition_names.append(name)
        topics[name] = topic

    for index in range(databases):
        coalition_name = coalition_names[index % coalitions]
        topic = topics[coalition_name]
        name = f"db{index:05d}"
        database = Database(name)
        database.execute("CREATE TABLE items (id INT PRIMARY KEY, "
                         "label VARCHAR(30))")
        database.execute("INSERT INTO items VALUES (1, ?)", [topic])
        exported = ExportedType(
            "Items",
            attributes=[ExportedAttribute("items.label", "string")],
            functions=[ExportedFunction(
                "LabelOf", ("item_id",), "string",
                SqlBinding("SELECT label FROM items WHERE id = ?",
                           ("item_id",)))])
        system.register_relational_source(
            database,
            SourceDescription(name=name, information_type=topic,
                              location=f"{name}.example.net"),
            exported_types=[exported],
            orb_product=products[index % len(products)])
        system.join(name, coalition_name)

    for index, coalition_name in enumerate(coalition_names):
        targets = {coalition_names[(index + 1) % coalitions]}
        while len(targets) < min(links_per_coalition, coalitions - 1):
            candidate = rng.choice(coalition_names)
            if candidate != coalition_name:
                targets.add(candidate)
        for target in targets:
            try:
                system.registry.add_service_link(ServiceLink(
                    from_kind=EndpointKind.COALITION,
                    from_name=coalition_name,
                    to_kind=EndpointKind.COALITION, to_name=target,
                    information_type=topics[target]))
            except Exception:
                pass  # duplicate edge
    return system


def _topic_for(index: int) -> str:
    noun = TOPIC_NOUNS[index % len(TOPIC_NOUNS)]
    generation = index // len(TOPIC_NOUNS)
    return f"{noun} {generation}" if generation else noun


def build_scaled_space(databases: int, coalitions: int,
                       links_per_coalition: int = 2,
                       seed: int = 1234) -> ScaledSpace:
    """Generate a federation of *databases* sources in *coalitions*
    clusters with a ring-plus-random link mesh.

    Databases are distributed round-robin over coalitions; each
    coalition links to its ring successor (guaranteeing reachability)
    plus ``links_per_coalition - 1`` random others.
    """
    if coalitions < 1 or databases < coalitions:
        raise ValueError("need at least one database per coalition")
    rng = random.Random(seed)
    registry = Registry()
    broadcast = BroadcastDirectory()
    global_schema = GlobalSchemaMultidatabase()

    coalition_topics: dict[str, str] = {}
    for index in range(coalitions):
        topic = _topic_for(index)
        name = f"C{index:04d} {topic}"
        registry.create_coalition(name, topic)
        coalition_topics[name] = topic
    coalition_names = list(coalition_topics)

    database_names: list[str] = []
    for index in range(databases):
        coalition_name = coalition_names[index % coalitions]
        topic = coalition_topics[coalition_name]
        name = f"db{index:05d}"
        description = SourceDescription(
            name=name, information_type=topic,
            location=f"{name}.example.net",
            interface=[f"{topic.split()[0].title()}Data"])
        registry.add_source(description)
        registry.join(name, coalition_name)
        broadcast.register(description)
        global_schema.integrate_source(
            description, [f"{topic}_table_{i}" for i in range(3)])
        database_names.append(name)

    for index, coalition_name in enumerate(coalition_names):
        targets = {coalition_names[(index + 1) % coalitions]}
        while len(targets) < min(links_per_coalition, coalitions - 1):
            candidate = rng.choice(coalition_names)
            if candidate != coalition_name:
                targets.add(candidate)
        for target in targets:
            link = ServiceLink(
                from_kind=EndpointKind.COALITION, from_name=coalition_name,
                to_kind=EndpointKind.COALITION, to_name=target,
                information_type=coalition_topics[target])
            try:
                registry.add_service_link(link)
            except Exception:
                pass  # duplicate ring/random edge; keep the mesh sparse

    return ScaledSpace(registry=registry, broadcast=broadcast,
                       global_schema=global_schema,
                       database_names=database_names,
                       coalition_topics=coalition_topics)
