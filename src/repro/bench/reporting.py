"""Plain-text tables for the benchmark harness output.

Every bench prints the rows/series it regenerates through
:func:`print_table`, so `pytest benchmarks/ --benchmark-only` output is
directly comparable with EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned text table with a title rule."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(column)) for column in columns]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    header = " | ".join(str(column).ljust(width)
                        for column, width in zip(columns, widths))
    rule = "-+-".join("-" * width for width in widths)
    body = [" | ".join(value.ljust(width)
                       for value, width in zip(row, widths))
            for row in materialized]
    top = f"== {title} =="
    return "\n".join([top, header, rule, *body])


def print_table(title: str, columns: Sequence[str],
                rows: Iterable[Sequence[Any]]) -> None:
    """Print a table (flushes so pytest-benchmark output interleaves
    predictably)."""
    print()
    print(format_table(title, columns, rows), flush=True)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for speedup columns."""
    return numerator / denominator if denominator else float("inf")
