"""Benchmark support: synthetic topologies, workloads, and reporting."""

from repro.bench.reporting import format_table, print_table, ratio
from repro.bench.scale import (ScaledSpace, build_scaled_space,
                               build_scaled_system)
from repro.bench.workload import (HEALTHCARE_QUERIES, Query,
                                  discovery_workload, sql_workload)

__all__ = ["build_scaled_space", "build_scaled_system", "ScaledSpace",
           "discovery_workload", "sql_workload", "Query",
           "HEALTHCARE_QUERIES",
           "format_table", "print_table", "ratio"]
