"""Benchmark support: synthetic topologies, workloads, and reporting."""

from repro.bench.reporting import format_table, print_table, ratio
from repro.bench.scale import (ScaledSpace, build_scaled_space,
                               build_scaled_system)
from repro.bench.workload import (HEALTHCARE_QUERIES, Arrival, OpenLoopResult,
                                  Query, discovery_workload, open_loop_plan,
                                  percentile, run_open_loop, sql_workload,
                                  zipf_weights)

__all__ = ["build_scaled_space", "build_scaled_system", "ScaledSpace",
           "discovery_workload", "sql_workload", "Query",
           "HEALTHCARE_QUERIES",
           "Arrival", "OpenLoopResult", "open_loop_plan", "run_open_loop",
           "percentile", "zipf_weights",
           "format_table", "print_table", "ratio"]
