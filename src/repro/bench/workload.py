"""Query workload generation for the benchmark harness."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.scale import ScaledSpace


@dataclass(frozen=True)
class Query:
    """One discovery query with its ground truth."""

    text: str
    #: Topic the query targets (empty for miss queries).
    target_topic: str
    #: Name of a database whose co-database the query starts from.
    start_database: str


def discovery_workload(space: ScaledSpace, queries: int,
                       miss_rate: float = 0.0,
                       seed: int = 99) -> list[Query]:
    """Generate *queries* topic lookups over a scaled space.

    Each query targets a random coalition topic and starts at a random
    database (usually in a *different* coalition, so resolution has to
    travel).  A *miss_rate* fraction asks for topics nobody advertises.
    """
    rng = random.Random(seed)
    topics = list(space.coalition_topics.values())
    result: list[Query] = []
    for index in range(queries):
        start = rng.choice(space.database_names)
        if rng.random() < miss_rate:
            result.append(Query(text=f"nonexistent topic {index}",
                                target_topic="", start_database=start))
        else:
            topic = rng.choice(topics)
            result.append(Query(text=topic, target_topic=topic,
                                start_database=start))
    return result


#: Topics of the healthcare world, used by the figure benches.
HEALTHCARE_QUERIES = (
    "Medical Research",
    "Medical Insurance",
    "Superannuation",
    "Medical Workers Union",
    "Medical",
)


def sql_workload(seed: int = 7, statements: int = 50) -> list[str]:
    """A mixed read workload against the RBH schema (bench F6/S5)."""
    rng = random.Random(seed)
    templates = [
        "SELECT * FROM MedicalStudent",
        "SELECT Name FROM MedicalStudent WHERE Year >= {year}",
        "SELECT COUNT(*) FROM Patient",
        "SELECT Title, Funding FROM ResearchProjects WHERE Funding > {amount}",
        "SELECT d.Position, COUNT(*) FROM Doctors d GROUP BY d.Position",
        "SELECT p.Name, h.Description FROM Patient p "
        "JOIN History h ON p.PatientId = h.PatientId "
        "WHERE h.DateRecorded > '{date}'",
    ]
    workload = []
    for __ in range(statements):
        template = rng.choice(templates)
        workload.append(template.format(
            year=rng.randint(1, 6),
            amount=rng.randint(50000, 800000),
            date=f"199{rng.randint(4, 8)}-0{rng.randint(1, 9)}-15"))
    return workload
