"""Query workload generation for the benchmark harness.

Two families live here:

* the closed-loop discovery/SQL generators the figure benches use
  (each virtual client waits for its reply before asking again), and
* the **open-loop** generator for the overload bench (S11): arrivals
  follow a Poisson process at a fixed offered rate regardless of how
  the server is doing — the regime where congestion collapse shows,
  because a slow server faces the *same* arrival rate plus its backlog.
  Popularity over keys is zipfian, the classic skew of web traffic.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.bench.scale import ScaledSpace


@dataclass(frozen=True)
class Query:
    """One discovery query with its ground truth."""

    text: str
    #: Topic the query targets (empty for miss queries).
    target_topic: str
    #: Name of a database whose co-database the query starts from.
    start_database: str


def discovery_workload(space: ScaledSpace, queries: int,
                       miss_rate: float = 0.0,
                       seed: int = 99) -> list[Query]:
    """Generate *queries* topic lookups over a scaled space.

    Each query targets a random coalition topic and starts at a random
    database (usually in a *different* coalition, so resolution has to
    travel).  A *miss_rate* fraction asks for topics nobody advertises.
    """
    rng = random.Random(seed)
    topics = list(space.coalition_topics.values())
    result: list[Query] = []
    for index in range(queries):
        start = rng.choice(space.database_names)
        if rng.random() < miss_rate:
            result.append(Query(text=f"nonexistent topic {index}",
                                target_topic="", start_database=start))
        else:
            topic = rng.choice(topics)
            result.append(Query(text=topic, target_topic=topic,
                                start_database=start))
    return result


#: Topics of the healthcare world, used by the figure benches.
HEALTHCARE_QUERIES = (
    "Medical Research",
    "Medical Insurance",
    "Superannuation",
    "Medical Workers Union",
    "Medical",
)


#  ------------------------------------------------- open-loop (bench S11) --


@dataclass(frozen=True)
class Arrival:
    """One scheduled request of an open-loop plan."""

    #: Seconds after the run starts at which this request fires.
    at: float
    #: Zipf-popular key index in ``[0, keys)``.
    key: int
    #: ``"interactive"`` or ``"background"`` (overload traffic class).
    traffic_class: str = "interactive"


def zipf_weights(keys: int, skew: float = 1.1) -> list[float]:
    """Unnormalised zipfian popularity weights ``1 / rank**skew``."""
    if keys < 1:
        raise ValueError(f"keys must be >= 1, got {keys}")
    return [1.0 / (rank ** skew) for rank in range(1, keys + 1)]


def open_loop_plan(rate: float, duration: float, *, keys: int = 16,
                   skew: float = 1.1, background_fraction: float = 0.0,
                   seed: int = 7) -> list[Arrival]:
    """A deterministic Poisson arrival plan at *rate* requests/second.

    Inter-arrival gaps are exponential (memoryless), keys are drawn
    zipfian, and a *background_fraction* of arrivals is tagged as
    maintenance traffic.  The plan is a pure function of its arguments,
    so every bench configuration replays the identical offered load.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    weights = zipf_weights(keys, skew)
    population = list(range(keys))
    plan: list[Arrival] = []
    at = rng.expovariate(rate)
    while at < duration:
        traffic_class = ("background"
                         if rng.random() < background_fraction
                         else "interactive")
        plan.append(Arrival(at=at,
                            key=rng.choices(population, weights)[0],
                            traffic_class=traffic_class))
        at += rng.expovariate(rate)
    return plan


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run at a fixed offered rate."""

    offered: int = 0
    completed: int = 0
    #: Failures bucketed by the runner's classifier (e.g. ``"shed"``,
    #: ``"expired"``, ``"error"``).
    failures: dict = field(default_factory=dict)
    #: Wall-clock latency of each *successful* request (seconds).
    latencies: list = field(default_factory=list)
    #: Wall-clock span of the whole run (first fire to last settle).
    elapsed: float = 0.0

    def goodput(self) -> float:
        """Successful replies per second of wall clock."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def latency_percentile(self, quantile: float) -> Optional[float]:
        return percentile(self.latencies, quantile)


def percentile(values: list, quantile: float) -> Optional[float]:
    """The *quantile* (0..1) of *values* by nearest-rank, None if empty."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(quantile * len(ordered)))
    return ordered[rank]


def run_open_loop(plan: list[Arrival],
                  issue: Callable[[Arrival], Any],
                  classify: Optional[Callable[[Exception], str]] = None,
                  settle_timeout: float = 30.0) -> OpenLoopResult:
    """Replay *plan* in real time against *issue*, open loop.

    Each arrival fires on schedule in its own thread whether or not
    earlier requests have been answered — the generator never slows
    down for a struggling server.  ``issue(arrival)`` performs one
    request; an exception counts as a failure in the bucket *classify*
    assigns it (default: the exception class name).
    """
    result = OpenLoopResult(offered=len(plan))
    lock = threading.Lock()
    threads: list[threading.Thread] = []

    def fire(arrival: Arrival) -> None:
        began = time.monotonic()
        try:
            issue(arrival)
        except Exception as exc:  # noqa: BLE001 - bucketed, not dropped
            bucket = (classify(exc) if classify is not None
                      else type(exc).__name__)
            with lock:
                result.failures[bucket] = result.failures.get(bucket, 0) + 1
        else:
            elapsed = time.monotonic() - began
            with lock:
                result.completed += 1
                result.latencies.append(elapsed)

    start = time.monotonic()
    for arrival in sorted(plan, key=lambda entry: entry.at):
        delay = start + arrival.at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire, args=(arrival,), daemon=True)
        thread.start()
        threads.append(thread)
    deadline = time.monotonic() + settle_timeout
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    result.elapsed = time.monotonic() - start
    return result


def sql_workload(seed: int = 7, statements: int = 50) -> list[str]:
    """A mixed read workload against the RBH schema (bench F6/S5)."""
    rng = random.Random(seed)
    templates = [
        "SELECT * FROM MedicalStudent",
        "SELECT Name FROM MedicalStudent WHERE Year >= {year}",
        "SELECT COUNT(*) FROM Patient",
        "SELECT Title, Funding FROM ResearchProjects WHERE Funding > {amount}",
        "SELECT d.Position, COUNT(*) FROM Doctors d GROUP BY d.Position",
        "SELECT p.Name, h.Description FROM Patient p "
        "JOIN History h ON p.PatientId = h.PatientId "
        "WHERE h.DateRecorded > '{date}'",
    ]
    workload = []
    for __ in range(statements):
        template = rng.choice(templates)
        workload.append(template.format(
            year=rng.randint(1, 6),
            amount=rng.randint(50000, 800000),
            date=f"199{rng.randint(4, 8)}-0{rng.randint(1, 9)}-15"))
    return workload
