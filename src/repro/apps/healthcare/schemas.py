"""Database schemas and exported interfaces for the healthcare world.

The Royal Brisbane Hospital schema is transcribed from §2.2 of the
paper (Patient, Beds, Occupancy, History, Doctors, ResearchProjects,
MedicalStudent, ResearchProjectAttendants).  The other thirteen are
reconstructed from the database names and roles in Figure 1.

Each source also declares its *exported interface* — the types (with
attributes and access functions) its wrapper advertises, including the
paper's ``ResearchProjects``/``PatientHistory`` exports for RBH and the
``Funding()`` function whose SQL translation the paper prints.
"""

from __future__ import annotations

from repro.apps.healthcare import topology as topo
from repro.oodb.database import ObjectDatabase
from repro.oodb.schema import Attribute
from repro.wrappers.base import (CallableBinding, ExportedAttribute,
                                 ExportedFunction, ExportedType, OqlBinding,
                                 SqlBinding)

# ---------------------------------------------------------------------------
# Relational DDL (per source)
# ---------------------------------------------------------------------------

RBH_DDL = """
CREATE TABLE Patient (
    PatientId INT PRIMARY KEY,
    Name VARCHAR(60) NOT NULL,
    DateOfBirth DATE,
    Gender VARCHAR(1),
    Address VARCHAR(120)
);
CREATE TABLE Beds (
    BedId INT PRIMARY KEY,
    Location VARCHAR(40),
    DefaultPatientType VARCHAR(20)
);
CREATE TABLE Occupancy (
    BedId INT,
    PatientId INT,
    DateFrom DATE,
    DateTo DATE
);
CREATE TABLE History (
    PatientId INT,
    DateRecorded DATE,
    Description VARCHAR(200),
    DescriptionNotes VARCHAR(200),
    DoctorId INT
);
CREATE TABLE Doctors (
    EmployeeId INT PRIMARY KEY,
    Qualification VARCHAR(60),
    Position VARCHAR(40)
);
CREATE TABLE ResearchProjects (
    ProjectId INT PRIMARY KEY,
    Title VARCHAR(100),
    Keywords VARCHAR(200),
    SupervisingDoctor INT,
    BeginDate DATE,
    CompletedDate DATE,
    Funding REAL
);
CREATE TABLE MedicalStudent (
    StudentId INT PRIMARY KEY,
    Name VARCHAR(60),
    Course VARCHAR(40),
    Year INT
);
CREATE TABLE ResearchProjectAttendants (
    ProjectId INT,
    StudentId INT,
    Task VARCHAR(80),
    DateStarted DATE,
    DateCompleted DATE,
    Results VARCHAR(200)
);
CREATE INDEX idx_rbh_projects_title ON ResearchProjects (Title);
CREATE INDEX idx_rbh_history_patient ON History (PatientId);
"""

MEDIBANK_DDL = """
CREATE TABLE Member (
    MemberId INT PRIMARY KEY,
    Name VARCHAR(60),
    JoinDate DATE,
    CoverLevel VARCHAR(20)
);
CREATE TABLE Policy (
    PolicyId INT PRIMARY KEY,
    MemberId INT,
    AnnualPremium REAL,
    Excess REAL
);
CREATE TABLE Claim (
    ClaimId INT PRIMARY KEY,
    PolicyId INT,
    ClaimDate DATE,
    Amount REAL,
    Status VARCHAR(16)
);
CREATE INDEX idx_medibank_claim_policy ON Claim (PolicyId);
"""

MBF_DDL = """
CREATE TABLE Customer (
    CustomerId INT PRIMARY KEY,
    Name VARCHAR(60),
    State VARCHAR(3)
);
CREATE TABLE CoverPlan (
    PlanId INT PRIMARY KEY,
    PlanName VARCHAR(40),
    MonthlyPremium REAL
);
CREATE TABLE Subscription (
    CustomerId INT,
    PlanId INT,
    StartDate DATE
);
"""

ATO_DDL = """
CREATE TABLE Taxpayer (
    TaxFileNumber INT PRIMARY KEY,
    Name VARCHAR(60),
    Category VARCHAR(20)
);
CREATE TABLE TaxReturn (
    ReturnId INT PRIMARY KEY,
    TaxFileNumber INT,
    Year INT,
    TaxableIncome REAL,
    MedicareLevy REAL
);
CREATE INDEX idx_ato_return_tfn ON TaxReturn (TaxFileNumber);
"""

MEDICARE_DDL = """
CREATE TABLE Enrolment (
    MedicareNumber INT PRIMARY KEY,
    Name VARCHAR(60),
    EnrolDate DATE
);
CREATE TABLE BenefitClaim (
    ClaimId INT PRIMARY KEY,
    MedicareNumber INT,
    ServiceCode VARCHAR(10),
    Benefit REAL,
    ClaimDate DATE
);
CREATE TABLE ServiceSchedule (
    ServiceCode VARCHAR(10) PRIMARY KEY,
    Description VARCHAR(100),
    ScheduleFee REAL
);
"""

RMIT_DDL = """
CREATE TABLE Project (
    ProjectId INT PRIMARY KEY,
    Title VARCHAR(100),
    Area VARCHAR(60),
    Grant_Amount REAL,
    StartDate DATE
);
CREATE TABLE Researcher (
    ResearcherId INT PRIMARY KEY,
    Name VARCHAR(60),
    School VARCHAR(60)
);
CREATE TABLE Publication (
    PublicationId INT PRIMARY KEY,
    ProjectId INT,
    Title VARCHAR(120),
    Venue VARCHAR(60),
    Year INT
);
"""

QLD_CANCER_DDL = """
CREATE TABLE Trial (
    TrialId INT PRIMARY KEY,
    Name VARCHAR(80),
    CancerType VARCHAR(40),
    Phase INT,
    Funding REAL
);
CREATE TABLE Donor (
    DonorId INT PRIMARY KEY,
    Name VARCHAR(60),
    TotalDonated REAL
);
"""

CENTRE_LINK_DDL = """
CREATE TABLE Recipient (
    RecipientId INT PRIMARY KEY,
    Name VARCHAR(60),
    PaymentType VARCHAR(30)
);
CREATE TABLE Payment (
    PaymentId INT PRIMARY KEY,
    RecipientId INT,
    Amount REAL,
    PaidOn DATE
);
"""

SGF_DDL = """
CREATE TABLE Program (
    ProgramId INT PRIMARY KEY,
    Name VARCHAR(80),
    Portfolio VARCHAR(40),
    Budget REAL
);
CREATE TABLE Allocation (
    AllocationId INT PRIMARY KEY,
    ProgramId INT,
    Recipient VARCHAR(80),
    Amount REAL,
    FiscalYear INT
);
"""

QUT_DDL = """
CREATE TABLE Survey (
    SurveyId INT PRIMARY KEY,
    Topic VARCHAR(80),
    Lead VARCHAR(60),
    StartDate DATE
);
CREATE TABLE Dataset (
    DatasetId INT PRIMARY KEY,
    SurveyId INT,
    Name VARCHAR(80),
    Records INT
);
"""

RELATIONAL_DDL: dict[str, str] = {
    topo.RBH: RBH_DDL,
    topo.MEDIBANK: MEDIBANK_DDL,
    topo.MBF: MBF_DDL,
    topo.ATO: ATO_DDL,
    topo.MEDICARE: MEDICARE_DDL,
    topo.RMIT: RMIT_DDL,
    topo.QLD_CANCER: QLD_CANCER_DDL,
    topo.CENTRE_LINK: CENTRE_LINK_DDL,
    topo.SGF: SGF_DDL,
    topo.QUT: QUT_DDL,
}


# ---------------------------------------------------------------------------
# Object-database schemas
# ---------------------------------------------------------------------------

def define_amp_schema(database: ObjectDatabase) -> None:
    """AMP: superannuation members, funds and contributions."""
    database.define_class("Fund", [
        Attribute("name", "string", required=True),
        Attribute("category", "string"),
        Attribute("five_year_return", "real"),
    ])
    database.define_class("Member", [
        Attribute("member_no", "integer", required=True),
        Attribute("name", "string"),
        Attribute("employer", "string"),
        Attribute("balance", "real"),
        Attribute("fund", "object", target="Fund"),
    ])


def define_rbh_workers_schema(database: ObjectDatabase) -> None:
    """RBH Workers Union: members, roles, agreements."""
    database.define_class("UnionMember", [
        Attribute("member_no", "integer", required=True),
        Attribute("name", "string"),
        Attribute("role", "string"),
        Attribute("ward", "string"),
    ])
    database.define_class("Agreement", [
        Attribute("title", "string", required=True),
        Attribute("effective", "date"),
        Attribute("pay_rise_percent", "real"),
    ])


def define_prince_charles_schema(database: ObjectDatabase) -> None:
    """Prince Charles Hospital: cardiac-specialty patient objects."""
    database.define_class("Ward", [
        Attribute("name", "string", required=True),
        Attribute("beds", "integer"),
    ])
    database.define_class("Patient", [
        Attribute("patient_no", "integer", required=True),
        Attribute("name", "string"),
        Attribute("condition", "string"),
        Attribute("ward", "object", target="Ward"),
    ])
    database.define_class("CardiacPatient", [
        Attribute("procedure", "string"),
    ], bases=["Patient"])


def define_ambulance_schema(database: ObjectDatabase) -> None:
    """Ambulance (Ontos): stations, vehicles, callouts."""
    database.define_class("Station", [
        Attribute("name", "string", required=True),
        Attribute("region", "string"),
    ])
    database.define_class("Callout", [
        Attribute("callout_no", "integer", required=True),
        Attribute("priority", "integer"),
        Attribute("on_date", "date"),
        Attribute("station", "object", target="Station"),
        Attribute("destination_hospital", "string"),
    ])


OBJECT_SCHEMAS = {
    topo.AMP: define_amp_schema,
    topo.RBH_WORKERS: define_rbh_workers_schema,
    topo.PRINCE_CHARLES: define_prince_charles_schema,
    topo.AMBULANCE: define_ambulance_schema,
}


# ---------------------------------------------------------------------------
# Exported interfaces
# ---------------------------------------------------------------------------

def rbh_exports() -> list[ExportedType]:
    """RBH exports ResearchProjects and PatientHistory (§2.2/§2.3)."""
    research_projects = ExportedType(
        name="ResearchProjects",
        doc="Research conducted at the Royal Brisbane Hospital",
        attributes=[
            ExportedAttribute("ResearchProjects.Title", "string"),
            ExportedAttribute("ResearchProjects.Keywords", "string"),
            ExportedAttribute("ResearchProjects.BeginDate", "date"),
        ],
        functions=[
            ExportedFunction(
                name="Funding", parameters=("title",), result_type="real",
                doc="Budget of a given research project",
                binding=SqlBinding(
                    "SELECT a.Funding FROM ResearchProjects a "
                    "WHERE a.Title = ?", ("title",))),
            ExportedFunction(
                name="ProjectsByKeyword", parameters=("keyword",),
                result_type="rows",
                doc="Projects whose keywords mention a term",
                binding=SqlBinding(
                    "SELECT Title, Funding FROM ResearchProjects "
                    "WHERE Keywords LIKE ?", ("keyword",))),
        ])
    patient_history = ExportedType(
        name="PatientHistory",
        doc="Recorded patient histories",
        attributes=[
            ExportedAttribute("Patient.Name", "string"),
            ExportedAttribute("History.DateRecorded", "int"),
        ],
        functions=[
            ExportedFunction(
                name="Description", parameters=("name", "date_recorded"),
                result_type="string",
                doc="Description of a patient sickness at a given date",
                binding=SqlBinding(
                    "SELECT h.Description FROM History h "
                    "JOIN Patient p ON h.PatientId = p.PatientId "
                    "WHERE p.Name = ? AND h.DateRecorded = ?",
                    ("name", "date_recorded"))),
        ])
    return [research_projects, patient_history]


def _scalar_export(type_name: str, doc: str, function_name: str,
                   parameters: tuple[str, ...], result_type: str,
                   sql: str, attributes: list[ExportedAttribute],
                   extra_functions: list[ExportedFunction] | None = None
                   ) -> ExportedType:
    functions = [ExportedFunction(name=function_name, parameters=parameters,
                                  result_type=result_type,
                                  binding=SqlBinding(sql, parameters))]
    functions.extend(extra_functions or [])
    return ExportedType(name=type_name, doc=doc, attributes=attributes,
                        functions=functions)


def relational_exports() -> dict[str, list[ExportedType]]:
    """Exported interfaces for every relational source."""
    return {
        topo.RBH: rbh_exports(),
        topo.MEDIBANK: [_scalar_export(
            "Claims", "Insurance claims lodged by members",
            "TotalClaimed", ("member_name",), "real",
            "SELECT SUM(c.Amount) FROM Claim c "
            "JOIN Policy p ON c.PolicyId = p.PolicyId "
            "JOIN Member m ON p.MemberId = m.MemberId WHERE m.Name = ?",
            [ExportedAttribute("Claim.Amount", "real"),
             ExportedAttribute("Member.Name", "string")],
            [ExportedFunction(
                "ClaimsByStatus", ("status",), "rows",
                binding=SqlBinding(
                    "SELECT ClaimId, Amount, Status FROM Claim "
                    "WHERE Status = ?", ("status",)))])],
        topo.MBF: [_scalar_export(
            "Cover", "Cover plans and premiums",
            "PlanPremium", ("plan_name",), "real",
            "SELECT MonthlyPremium FROM CoverPlan WHERE PlanName = ?",
            [ExportedAttribute("CoverPlan.PlanName", "string"),
             ExportedAttribute("CoverPlan.MonthlyPremium", "real")])],
        topo.ATO: [_scalar_export(
            "MedicareLevy", "Medicare levy collected per year",
            "LevyForYear", ("year",), "real",
            "SELECT SUM(MedicareLevy) FROM TaxReturn WHERE Year = ?",
            [ExportedAttribute("TaxReturn.Year", "int"),
             ExportedAttribute("TaxReturn.MedicareLevy", "real")])],
        topo.MEDICARE: [_scalar_export(
            "Benefits", "Medicare benefit claims",
            "BenefitTotal", ("service_code",), "real",
            "SELECT SUM(Benefit) FROM BenefitClaim WHERE ServiceCode = ?",
            [ExportedAttribute("BenefitClaim.ServiceCode", "string"),
             ExportedAttribute("BenefitClaim.Benefit", "real")])],
        topo.RMIT: [_scalar_export(
            "Projects", "Medical research projects at RMIT",
            "GrantAmount", ("title",), "real",
            "SELECT Grant_Amount FROM Project WHERE Title = ?",
            [ExportedAttribute("Project.Title", "string"),
             ExportedAttribute("Project.Area", "string")],
            [ExportedFunction(
                "ProjectsInArea", ("area",), "rows",
                binding=SqlBinding(
                    "SELECT Title, Grant_Amount FROM Project "
                    "WHERE Area = ?", ("area",)))])],
        topo.QLD_CANCER: [_scalar_export(
            "Trials", "Cancer trials and their funding",
            "TrialFunding", ("name",), "real",
            "SELECT Funding FROM Trial WHERE Name = ?",
            [ExportedAttribute("Trial.Name", "string"),
             ExportedAttribute("Trial.CancerType", "string")])],
        topo.CENTRE_LINK: [_scalar_export(
            "Payments", "Social-security payments",
            "TotalPaid", ("payment_type",), "real",
            "SELECT SUM(p.Amount) FROM Payment p "
            "JOIN Recipient r ON p.RecipientId = r.RecipientId "
            "WHERE r.PaymentType = ?",
            [ExportedAttribute("Payment.Amount", "real"),
             ExportedAttribute("Recipient.PaymentType", "string")])],
        topo.SGF: [_scalar_export(
            "Funding", "State funding programs",
            "ProgramBudget", ("name",), "real",
            "SELECT Budget FROM Program WHERE Name = ?",
            [ExportedAttribute("Program.Name", "string"),
             ExportedAttribute("Program.Budget", "real")])],
        topo.QUT: [_scalar_export(
            "Surveys", "Health surveys run by QUT Research",
            "SurveyLead", ("topic",), "string",
            "SELECT Lead FROM Survey WHERE Topic = ?",
            [ExportedAttribute("Survey.Topic", "string"),
             ExportedAttribute("Survey.Lead", "string")])],
    }


def _amp_balance(database: ObjectDatabase, member_name: str):
    """Direct-call binding: total balance of one AMP member."""
    members = database.select("Member", name=member_name)
    return sum(m.get("balance") or 0.0 for m in members)


def object_exports() -> dict[str, list[ExportedType]]:
    """Exported interfaces for the object sources."""
    return {
        topo.AMP: [ExportedType(
            name="Superannuation",
            doc="Superannuation funds and balances",
            attributes=[ExportedAttribute("Member.name", "string"),
                        ExportedAttribute("Member.balance", "real")],
            functions=[
                ExportedFunction(
                    "MemberBalance", ("name",), "real",
                    doc="Balance via direct method invocation",
                    binding=CallableBinding(_amp_balance)),
                ExportedFunction(
                    "FundsByCategory", ("category",), "rows",
                    binding=OqlBinding(
                        "SELECT name, five_year_return FROM Fund "
                        "WHERE category = {category}", ("category",))),
            ])],
        topo.RBH_WORKERS: [ExportedType(
            name="UnionMembers",
            doc="Union membership of RBH workers",
            attributes=[ExportedAttribute("UnionMember.name", "string"),
                        ExportedAttribute("UnionMember.role", "string")],
            functions=[ExportedFunction(
                "MembersInRole", ("role",), "rows",
                binding=OqlBinding(
                    "SELECT name, ward FROM UnionMember "
                    "WHERE role = {role}", ("role",)))])],
        topo.PRINCE_CHARLES: [ExportedType(
            name="CardiacCare",
            doc="Cardiac patients and wards",
            attributes=[ExportedAttribute("Patient.name", "string"),
                        ExportedAttribute("Patient.condition", "string")],
            functions=[ExportedFunction(
                "PatientsInWard", ("ward",), "rows",
                binding=OqlBinding(
                    "SELECT name, condition FROM Patient "
                    "WHERE ward.name = {ward}", ("ward",)))])],
        topo.AMBULANCE: [ExportedType(
            name="Callouts",
            doc="Emergency callouts by station",
            attributes=[ExportedAttribute("Callout.priority", "int"),
                        ExportedAttribute("Callout.destination_hospital",
                                          "string")],
            functions=[ExportedFunction(
                "CalloutsTo", ("hospital",), "rows",
                binding=OqlBinding(
                    "SELECT callout_no, priority FROM Callout "
                    "WHERE destination_hospital = {hospital}",
                    ("hospital",)))])],
    }
