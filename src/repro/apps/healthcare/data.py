"""Seeded synthetic data for the healthcare world.

The paper's testbed data is not published; these generators produce
deterministic (seeded) data shaped to the scenarios the paper walks
through — in particular RBH carries the ``AIDS and drugs`` research
project whose ``Funding()`` invocation §2.3 traces, and a populated
``MedicalStudent`` table for the Figure-6 query.
"""

from __future__ import annotations

import datetime
import random

from repro.apps.healthcare import topology as topo
from repro.oodb.database import ObjectDatabase
from repro.sql.engine import Database

FIRST_NAMES = ("Alice", "Brian", "Chen", "Dana", "Emeka", "Fiona", "Gita",
               "Harry", "Ines", "Jack", "Keiko", "Liam", "Mei", "Noah",
               "Olga", "Priya", "Quinn", "Rosa", "Sam", "Tara")
LAST_NAMES = ("Anderson", "Bui", "Costa", "Dawson", "Evans", "Fischer",
              "Garcia", "Huang", "Ivanov", "Jones", "Kelly", "Lee",
              "Mitchell", "Nguyen", "O'Brien", "Patel", "Quist", "Rossi",
              "Smith", "Taylor")

#: The project the paper's running example queries.
AIDS_PROJECT_TITLE = "AIDS and drugs"
AIDS_PROJECT_FUNDING = 1250000.0


def _name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def _date(rng: random.Random, start_year: int = 1990,
          end_year: int = 1998) -> datetime.date:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return datetime.date(year, month, day)


def populate_rbh(database: Database, seed: int = 7,
                 patients: int = 60, students: int = 12,
                 projects: int = 8) -> None:
    """Fill the Royal Brisbane Hospital schema."""
    rng = random.Random(seed)
    for patient_id in range(1, patients + 1):
        database.execute(
            "INSERT INTO Patient VALUES (?, ?, ?, ?, ?)",
            [patient_id, _name(rng), _date(rng, 1920, 1990).isoformat(),
             rng.choice("MF"), f"{rng.randint(1, 400)} Example St, Brisbane"])
    for bed_id in range(1, 41):
        database.execute(
            "INSERT INTO Beds VALUES (?, ?, ?)",
            [bed_id, f"Ward {rng.choice('ABCDE')}",
             rng.choice(["general", "intensive", "maternity"])])
    for __ in range(80):
        date_from = _date(rng, 1995, 1998)
        database.execute(
            "INSERT INTO Occupancy VALUES (?, ?, ?, ?)",
            [rng.randint(1, 40), rng.randint(1, patients),
             date_from.isoformat(),
             (date_from + datetime.timedelta(days=rng.randint(1, 30)))
             .isoformat()])
    conditions = ("influenza", "fracture", "pneumonia", "appendicitis",
                  "hypertension", "asthma")
    for __ in range(120):
        database.execute(
            "INSERT INTO History VALUES (?, ?, ?, ?, ?)",
            [rng.randint(1, patients), _date(rng, 1994, 1998).isoformat(),
             rng.choice(conditions), "routine notes", rng.randint(1, 15)])
    for employee_id in range(1, 16):
        database.execute(
            "INSERT INTO Doctors VALUES (?, ?, ?)",
            [employee_id, rng.choice(["MBBS", "MBBS PhD", "FRACS"]),
             rng.choice(["RMO", "Registrar", "Consultant", "Chief"])])
    titles = [AIDS_PROJECT_TITLE, "Melanoma early detection",
              "Tropical disease vectors", "Cardiac rehabilitation",
              "Diabetes in remote communities", "Asthma triggers",
              "Burns treatment protocols", "Neonatal outcomes"]
    for project_id, title in enumerate(titles[:projects], start=1):
        funding = AIDS_PROJECT_FUNDING if title == AIDS_PROJECT_TITLE \
            else round(rng.uniform(50000, 900000), 2)
        database.execute(
            "INSERT INTO ResearchProjects VALUES (?, ?, ?, ?, ?, ?, ?)",
            [project_id, title, "medical,queensland", rng.randint(1, 15),
             _date(rng, 1994, 1997).isoformat(), None, funding])
    for student_id in range(1, students + 1):
        database.execute(
            "INSERT INTO MedicalStudent VALUES (?, ?, ?, ?)",
            [student_id, _name(rng), rng.choice(["MBBS", "BNursing"]),
             rng.randint(1, 6)])
    for __ in range(20):
        database.execute(
            "INSERT INTO ResearchProjectAttendants VALUES (?, ?, ?, ?, ?, ?)",
            [rng.randint(1, projects), rng.randint(1, students),
             rng.choice(["data collection", "analysis", "lab work"]),
             _date(rng, 1996, 1998).isoformat(), None, None])


def populate_medibank(database: Database, seed: int = 11,
                      members: int = 50) -> None:
    rng = random.Random(seed)
    for member_id in range(1, members + 1):
        database.execute(
            "INSERT INTO Member VALUES (?, ?, ?, ?)",
            [member_id, _name(rng), _date(rng, 1985, 1998).isoformat(),
             rng.choice(["basic", "standard", "premium"])])
        database.execute(
            "INSERT INTO Policy VALUES (?, ?, ?, ?)",
            [member_id, member_id, round(rng.uniform(400, 2400), 2),
             rng.choice([0.0, 250.0, 500.0])])
    for claim_id in range(1, members * 2 + 1):
        database.execute(
            "INSERT INTO Claim VALUES (?, ?, ?, ?, ?)",
            [claim_id, rng.randint(1, members),
             _date(rng, 1996, 1998).isoformat(),
             round(rng.uniform(40, 3000), 2),
             rng.choice(["paid", "pending", "rejected"])])


def populate_mbf(database: Database, seed: int = 13) -> None:
    rng = random.Random(seed)
    plans = [("Hospital Basic", 58.0), ("Hospital Plus", 96.5),
             ("Extras", 33.75), ("Family Complete", 142.0)]
    for plan_id, (plan_name, premium) in enumerate(plans, start=1):
        database.execute("INSERT INTO CoverPlan VALUES (?, ?, ?)",
                         [plan_id, plan_name, premium])
    for customer_id in range(1, 41):
        database.execute(
            "INSERT INTO Customer VALUES (?, ?, ?)",
            [customer_id, _name(rng), rng.choice(["QLD", "NSW", "VIC"])])
        database.execute(
            "INSERT INTO Subscription VALUES (?, ?, ?)",
            [customer_id, rng.randint(1, len(plans)),
             _date(rng, 1990, 1998).isoformat()])


def populate_ato(database: Database, seed: int = 17,
                 taxpayers: int = 80) -> None:
    rng = random.Random(seed)
    for tfn in range(1, taxpayers + 1):
        database.execute(
            "INSERT INTO Taxpayer VALUES (?, ?, ?)",
            [tfn, _name(rng), rng.choice(["individual", "company"])])
        for year in (1996, 1997):
            income = round(rng.uniform(18000, 140000), 2)
            database.execute(
                "INSERT INTO TaxReturn VALUES (?, ?, ?, ?, ?)",
                [tfn * 10 + (year - 1996), tfn, year, income,
                 round(income * 0.015, 2)])


def populate_medicare(database: Database, seed: int = 19,
                      enrolled: int = 70) -> None:
    rng = random.Random(seed)
    services = [("GP001", "GP consultation", 36.5),
                ("SP201", "Specialist referral", 85.0),
                ("XR310", "X-ray", 112.4),
                ("PTH42", "Pathology panel", 54.3)]
    for code, description, fee in services:
        database.execute("INSERT INTO ServiceSchedule VALUES (?, ?, ?)",
                         [code, description, fee])
    for medicare_no in range(1, enrolled + 1):
        database.execute(
            "INSERT INTO Enrolment VALUES (?, ?, ?)",
            [medicare_no, _name(rng), _date(rng, 1984, 1998).isoformat()])
    for claim_id in range(1, enrolled * 3 + 1):
        code, __, fee = rng.choice(services)
        database.execute(
            "INSERT INTO BenefitClaim VALUES (?, ?, ?, ?, ?)",
            [claim_id, rng.randint(1, enrolled), code,
             round(fee * rng.uniform(0.7, 1.0), 2),
             _date(rng, 1997, 1998).isoformat()])


def populate_rmit(database: Database, seed: int = 23) -> None:
    rng = random.Random(seed)
    areas = ["immunology", "oncology", "public health", "biomechanics"]
    titles = ["Vaccine adjuvants", "Tumour imaging", "Air quality and asthma",
              "Prosthetic joints", "Antibiotic resistance", "Telehealth"]
    for project_id, title in enumerate(titles, start=1):
        database.execute(
            "INSERT INTO Project VALUES (?, ?, ?, ?, ?)",
            [project_id, title, rng.choice(areas),
             round(rng.uniform(80000, 600000), 2),
             _date(rng, 1994, 1998).isoformat()])
    for researcher_id in range(1, 13):
        database.execute(
            "INSERT INTO Researcher VALUES (?, ?, ?)",
            [researcher_id, _name(rng),
             rng.choice(["Medical Sciences", "Engineering"])])
    for publication_id in range(1, 21):
        database.execute(
            "INSERT INTO Publication VALUES (?, ?, ?, ?, ?)",
            [publication_id, rng.randint(1, len(titles)),
             f"Paper {publication_id}", rng.choice(["MJA", "Lancet", "BMJ"]),
             rng.randint(1994, 1998)])


def populate_qld_cancer(database: Database, seed: int = 29) -> None:
    rng = random.Random(seed)
    cancer_types = ["melanoma", "breast", "lung", "prostate"]
    for trial_id in range(1, 9):
        database.execute(
            "INSERT INTO Trial VALUES (?, ?, ?, ?, ?)",
            [trial_id, f"Trial QC-{trial_id:03d}",
             rng.choice(cancer_types), rng.randint(1, 3),
             round(rng.uniform(100000, 800000), 2)])
    for donor_id in range(1, 31):
        database.execute(
            "INSERT INTO Donor VALUES (?, ?, ?)",
            [donor_id, _name(rng), round(rng.uniform(50, 20000), 2)])


def populate_centre_link(database: Database, seed: int = 31,
                         recipients: int = 60) -> None:
    rng = random.Random(seed)
    payment_types = ["sickness allowance", "disability support", "carer"]
    for recipient_id in range(1, recipients + 1):
        database.execute(
            "INSERT INTO Recipient VALUES (?, ?, ?)",
            [recipient_id, _name(rng), rng.choice(payment_types)])
    for payment_id in range(1, recipients * 2 + 1):
        database.execute(
            "INSERT INTO Payment VALUES (?, ?, ?, ?)",
            [payment_id, rng.randint(1, recipients),
             round(rng.uniform(120, 700), 2),
             _date(rng, 1997, 1998).isoformat()])


def populate_sgf(database: Database, seed: int = 37) -> None:
    rng = random.Random(seed)
    programs = [("Hospital Capital Works", "Health", 24000000.0),
                ("Rural Clinics", "Health", 6500000.0),
                ("Medical Research Grants", "Science", 12000000.0),
                ("Ambulance Fleet Renewal", "Emergency", 8200000.0)]
    for program_id, (name, portfolio, budget) in enumerate(programs, start=1):
        database.execute("INSERT INTO Program VALUES (?, ?, ?, ?)",
                         [program_id, name, portfolio, budget])
    for allocation_id in range(1, 21):
        database.execute(
            "INSERT INTO Allocation VALUES (?, ?, ?, ?, ?)",
            [allocation_id, rng.randint(1, len(programs)),
             rng.choice([topo.RBH, topo.PRINCE_CHARLES, topo.QLD_CANCER]),
             round(rng.uniform(50000, 2000000), 2), rng.choice([1997, 1998])])


def populate_qut(database: Database, seed: int = 41) -> None:
    rng = random.Random(seed)
    topics = ["Health in Queensland", "Hospital treatment costs",
              "Insurance uptake", "Aged care access"]
    for survey_id, topic in enumerate(topics, start=1):
        database.execute(
            "INSERT INTO Survey VALUES (?, ?, ?, ?)",
            [survey_id, topic, _name(rng),
             _date(rng, 1996, 1998).isoformat()])
        for dataset_id in range(1, 4):
            database.execute(
                "INSERT INTO Dataset VALUES (?, ?, ?, ?)",
                [survey_id * 10 + dataset_id, survey_id,
                 f"{topic} — wave {dataset_id}", rng.randint(200, 5000)])


RELATIONAL_POPULATORS = {
    topo.RBH: populate_rbh,
    topo.MEDIBANK: populate_medibank,
    topo.MBF: populate_mbf,
    topo.ATO: populate_ato,
    topo.MEDICARE: populate_medicare,
    topo.RMIT: populate_rmit,
    topo.QLD_CANCER: populate_qld_cancer,
    topo.CENTRE_LINK: populate_centre_link,
    topo.SGF: populate_sgf,
    topo.QUT: populate_qut,
}


# -- object databases -------------------------------------------------------------


def populate_amp(database: ObjectDatabase, seed: int = 43) -> None:
    rng = random.Random(seed)
    funds = [database.create("Fund", name=name, category=category,
                             five_year_return=round(rng.uniform(3.5, 11.0), 2))
             for name, category in (("AMP Balanced", "balanced"),
                                    ("AMP Growth", "growth"),
                                    ("AMP Capital Secure", "conservative"))]
    for member_no in range(1, 41):
        database.create(
            "Member", member_no=member_no, name=_name(rng),
            employer=rng.choice([topo.RBH, topo.PRINCE_CHARLES, "QUT"]),
            balance=round(rng.uniform(4000, 230000), 2),
            fund=rng.choice(funds))


def populate_rbh_workers(database: ObjectDatabase, seed: int = 47) -> None:
    rng = random.Random(seed)
    for member_no in range(1, 31):
        database.create(
            "UnionMember", member_no=member_no, name=_name(rng),
            role=rng.choice(["nurse", "orderly", "technician", "clerk"]),
            ward=f"Ward {rng.choice('ABCDE')}")
    database.create("Agreement", title="Enterprise Agreement 1998",
                    effective=datetime.date(1998, 7, 1),
                    pay_rise_percent=3.2)


def populate_prince_charles(database: ObjectDatabase, seed: int = 53) -> None:
    rng = random.Random(seed)
    wards = [database.create("Ward", name=f"Cardiac {letter}",
                             beds=rng.randint(8, 24))
             for letter in "AB"]
    for patient_no in range(1, 26):
        if rng.random() < 0.5:
            database.create(
                "CardiacPatient", patient_no=patient_no, name=_name(rng),
                condition="cardiac", ward=rng.choice(wards),
                procedure=rng.choice(["bypass", "stent", "valve repair"]))
        else:
            database.create(
                "Patient", patient_no=patient_no, name=_name(rng),
                condition=rng.choice(["respiratory", "observation"]),
                ward=rng.choice(wards))


def populate_ambulance(database: ObjectDatabase, seed: int = 59) -> None:
    rng = random.Random(seed)
    stations = [database.create("Station", name=name, region=region)
                for name, region in (("Brisbane Central", "metro"),
                                     ("Cairns", "north"),
                                     ("Toowoomba", "west"))]
    for callout_no in range(1, 61):
        database.create(
            "Callout", callout_no=callout_no, priority=rng.randint(1, 3),
            on_date=_date(rng, 1997, 1998), station=rng.choice(stations),
            destination_hospital=rng.choice([topo.RBH, topo.PRINCE_CHARLES]))


OBJECT_POPULATORS = {
    topo.AMP: populate_amp,
    topo.RBH_WORKERS: populate_rbh_workers,
    topo.PRINCE_CHARLES: populate_prince_charles,
    topo.AMBULANCE: populate_ambulance,
}
