"""The paper's healthcare application (Section 4/5): 14 databases,
5 coalitions, 9 service links across five DBMSs and three ORBs."""

from repro.apps.healthcare.deploy import (HealthcareDeployment,
                                          RBH_HTML_DOCUMENT,
                                          build_healthcare_system)
from repro.apps.healthcare import topology

__all__ = ["build_healthcare_system", "HealthcareDeployment",
           "RBH_HTML_DOCUMENT", "topology"]
