"""The medical-world topology of Figure 1.

Fourteen databases, five coalitions, nine service links — exactly the
inventory §4/§5 of the paper describes, with the DBMS/ORB assignment of
Figure 2:

* Oracle databases behind **VisiBroker for Java** (JDBC),
* mSQL and DB2 databases behind **OrbixWeb** (JDBC),
* ObjectStore databases behind **Orbix** (C++ method invocation),
* the Ontos database behind **OrbixWeb** (JNI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import Ontology

# -- database names (exactly the paper's fourteen) ------------------------------

SGF = "State Government Funding"
RBH = "Royal Brisbane Hospital"
RBH_WORKERS = "RBH Workers Union"
CENTRE_LINK = "Centre Link"
MEDIBANK = "Medibank"
MBF = "MBF"
RMIT = "RMIT Medical Research"
QLD_CANCER = "Queensland Cancer Fund"
ATO = "Australian Taxation Office"
MEDICARE = "Medicare"
QUT = "QUT Research"
AMBULANCE = "Ambulance"
AMP = "AMP"
PRINCE_CHARLES = "Prince Charles Hospital"

ALL_DATABASES = (SGF, RBH, RBH_WORKERS, CENTRE_LINK, MEDIBANK, MBF, RMIT,
                 QLD_CANCER, ATO, MEDICARE, QUT, AMBULANCE, AMP,
                 PRINCE_CHARLES)

# -- coalitions -------------------------------------------------------------------

RESEARCH = "Research"
MEDICAL = "Medical"
MEDICAL_INSURANCE = "Medical Insurance"
SUPERANNUATION = "Superannuation"
WORKERS_UNION = "Medical Workers Union"

ALL_COALITIONS = (RESEARCH, MEDICAL, MEDICAL_INSURANCE, SUPERANNUATION,
                  WORKERS_UNION)


@dataclass(frozen=True)
class CoalitionSpec:
    """Declarative description of one coalition."""

    name: str
    information_type: str
    members: tuple[str, ...]
    doc: str = ""


COALITION_SPECS: tuple[CoalitionSpec, ...] = (
    CoalitionSpec(
        name=RESEARCH, information_type="Medical Research",
        members=(QUT, RMIT, QLD_CANCER, RBH),
        doc="Medical research conducted in Queensland institutions"),
    CoalitionSpec(
        name=MEDICAL, information_type="Medical",
        members=(RBH, PRINCE_CHARLES),
        doc="Hospitals and medical service providers"),
    CoalitionSpec(
        name=MEDICAL_INSURANCE, information_type="Medical Insurance",
        members=(MEDIBANK, MBF),
        doc="Private and public health insurers"),
    CoalitionSpec(
        name=SUPERANNUATION, information_type="Superannuation",
        members=(AMP,),
        doc="Retirement and superannuation funds"),
    CoalitionSpec(
        name=WORKERS_UNION, information_type="Medical Workers Union",
        members=(RBH_WORKERS,),
        doc="Unions of medical-sector workers"),
)


@dataclass(frozen=True)
class LinkSpec:
    """Declarative description of one service link (Figure 1 labels)."""

    from_kind: str
    from_name: str
    to_kind: str
    to_name: str
    information_type: str


#: The nine service links of Figure 1.
LINK_SPECS: tuple[LinkSpec, ...] = (
    LinkSpec("database", SGF, "database", MEDICARE, "Government Funding"),
    LinkSpec("database", ATO, "database", MEDICARE, "Taxation"),
    LinkSpec("database", SGF, "coalition", MEDICAL, "Government Funding"),
    LinkSpec("database", ATO, "coalition", MEDICAL, "Taxation"),
    LinkSpec("coalition", SUPERANNUATION, "coalition", MEDICAL,
             "Superannuation"),
    LinkSpec("database", CENTRE_LINK, "coalition", MEDICAL,
             "Social Security"),
    LinkSpec("coalition", WORKERS_UNION, "coalition", MEDICAL,
             "Medical Workers Union"),
    LinkSpec("database", AMBULANCE, "coalition", MEDICAL,
             "Emergency Transport"),
    LinkSpec("coalition", MEDICAL, "coalition", MEDICAL_INSURANCE,
             "Medical Insurance"),
)


@dataclass(frozen=True)
class DatabaseSpec:
    """Deployment facts for one source (the rows of Figure 2)."""

    name: str
    dbms: str  # oracle | msql | db2 | objectstore | ontos
    orb_product: str  # Orbix | OrbixWeb | VisiBroker for Java
    location: str
    information_type: str
    documentation_url: str
    coalitions: tuple[str, ...] = field(default=())


DATABASE_SPECS: tuple[DatabaseSpec, ...] = (
    DatabaseSpec(RBH, "oracle", "VisiBroker for Java",
                 "dba.icis.qut.edu.au", "Research and Medical",
                 "http://www.medicine.uq.edu.au/RBH",
                 coalitions=(RESEARCH, MEDICAL)),
    DatabaseSpec(MEDIBANK, "oracle", "VisiBroker for Java",
                 "db.medibank.com.au", "Medical Insurance",
                 "http://www.medibank.com.au/info",
                 coalitions=(MEDICAL_INSURANCE,)),
    DatabaseSpec(ATO, "oracle", "VisiBroker for Java",
                 "db.ato.gov.au", "Taxation",
                 "http://www.ato.gov.au/about"),
    DatabaseSpec(MEDICARE, "oracle", "VisiBroker for Java",
                 "db.medicare.gov.au", "Medicare Benefits",
                 "http://www.medicare.gov.au/schemes"),
    DatabaseSpec(RMIT, "msql", "OrbixWeb",
                 "research.rmit.edu.au", "Medical Research",
                 "http://www.rmit.edu.au/medical-research",
                 coalitions=(RESEARCH,)),
    DatabaseSpec(QLD_CANCER, "msql", "OrbixWeb",
                 "db.qldcancer.org.au", "Cancer Research",
                 "http://www.qldcancer.org.au/research",
                 coalitions=(RESEARCH,)),
    DatabaseSpec(CENTRE_LINK, "msql", "OrbixWeb",
                 "db.centrelink.gov.au", "Social Security",
                 "http://www.centrelink.gov.au/payments"),
    DatabaseSpec(SGF, "msql", "OrbixWeb",
                 "db.qld.gov.au", "Government Funding",
                 "http://www.qld.gov.au/funding"),
    DatabaseSpec(MBF, "db2", "OrbixWeb",
                 "db.mbf.com.au", "Medical Insurance",
                 "http://www.mbf.com.au/cover",
                 coalitions=(MEDICAL_INSURANCE,)),
    DatabaseSpec(QUT, "db2", "OrbixWeb",
                 "research.qut.edu.au", "Medical Research",
                 "http://www.qut.edu.au/research",
                 coalitions=(RESEARCH,)),
    DatabaseSpec(AMP, "objectstore", "Orbix",
                 "db.amp.com.au", "Superannuation",
                 "http://www.amp.com.au/funds",
                 coalitions=(SUPERANNUATION,)),
    DatabaseSpec(RBH_WORKERS, "objectstore", "Orbix",
                 "union.rbh.org.au", "Medical Workers Union",
                 "http://www.rbhunion.org.au",
                 coalitions=(WORKERS_UNION,)),
    DatabaseSpec(PRINCE_CHARLES, "objectstore", "Orbix",
                 "db.pch.health.qld.gov.au", "Medical",
                 "http://www.health.qld.gov.au/pch",
                 coalitions=(MEDICAL,)),
    DatabaseSpec(AMBULANCE, "ontos", "OrbixWeb",
                 "db.ambulance.qld.gov.au", "Emergency Transport",
                 "http://www.ambulance.qld.gov.au"),
)


def healthcare_ontology() -> Ontology:
    """Topic synonyms and proximities for the medical world."""
    ontology = Ontology()
    ontology.add_synonyms("medical", ["health", "healthcare", "medicine"])
    ontology.add_synonyms("research", ["study", "studies"])
    ontology.add_synonyms("insurance", ["cover", "insurer"])
    ontology.add_synonyms("superannuation", ["retirement", "pension"])
    ontology.add_synonyms("funding", ["budget", "grants"])
    ontology.relate("Medical", "Medical Insurance")
    ontology.relate("Medical", "Medical Research")
    ontology.relate("Superannuation", "Medical Workers Union")
    return ontology


def verify_figure1_counts() -> dict[str, int]:
    """The headline numbers of Figure 1 / §5 (checked by tests)."""
    return {
        "databases": len(ALL_DATABASES),
        "coalitions": len(COALITION_SPECS),
        "service_links": len(LINK_SPECS),
        "codatabases": len(ALL_DATABASES),
        "total_databases": 2 * len(ALL_DATABASES),  # "28 databases"
    }
