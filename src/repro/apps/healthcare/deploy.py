"""One-call deployment of the paper's healthcare application (§4/§5).

``build_healthcare_system()`` assembles the complete testbed:

* 14 native databases (10 relational across Oracle/mSQL/DB2 dialects,
  3 ObjectStore-style and 1 Ontos-style object database), populated
  with seeded synthetic data;
* 14 co-databases, one per source;
* three ORB products (Orbix, OrbixWeb, VisiBroker for Java) sharing one
  IIOP fabric, with each DBMS behind the product Figure 2 assigns it;
* 5 coalitions and 9 service links per Figure 1;
* the RBH documentation artefacts browsed in Figures 4–5.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.healthcare import data, schemas
from repro.apps.healthcare import topology as topo
from repro.core.model import SourceDescription
from repro.core.replication import replica_binding
from repro.core.resilience import ResiliencePolicy
from repro.core.system import WebFinditSystem
from repro.oodb.database import ObjectDatabase
from repro.orb.products import get_product
from repro.orb.transport import Transport
from repro.sql.engine import Database

#: The HTML document displayed in Figure 5.
RBH_HTML_DOCUMENT = """<html>
<head><title>Royal Brisbane Hospital</title></head>
<body>
<h1>Royal Brisbane Hospital</h1>
<p>The Royal Brisbane Hospital is a teaching hospital conducting
medical research and providing acute care for Queensland.</p>
<ul>
  <li>Exported types: ResearchProjects, PatientHistory</li>
  <li>Member of coalitions: Research, Medical</li>
</ul>
</body>
</html>"""

#: Text documentation shown alongside the HTML format in Figure 4.
RBH_TEXT_DOCUMENT = ("Royal Brisbane Hospital: Oracle database covering "
                     "patients, beds, doctors, research projects and "
                     "medical students.")

_DIALECT_FOR = {"oracle": "oracle", "msql": "msql", "db2": "db2"}
_OODB_PRODUCT = {"objectstore": ("ObjectStore", "5.1"),
                 "ontos": ("Ontos", "3.1")}


class HealthcareDeployment:
    """Handle to the deployed testbed: system plus native engines."""

    def __init__(self, system: WebFinditSystem,
                 relational: dict[str, Database],
                 objects: dict[str, ObjectDatabase]):
        self.system = system
        self.relational = relational
        self.objects = objects

    def browser(self, home_database: str = topo.QUT):
        """A browser session homed (by default) at QUT Research — the
        user the paper's walkthrough follows."""
        return self.system.browser(home_database)

    def codatabase_endpoint(self, name: str):
        """The (host, port) a source's co-database listens on — what a
        fault plan targets to make that co-database misbehave."""
        ior = self.system.naming.resolve(f"webfindit/codb/{name}")
        return ior.primary.endpoint

    def codatabase_replica_endpoint(self, name: str, index: int):
        """The (host, port) of one co-database replica — what a chaos
        plan targets to kill exactly that replica's server."""
        ior = self.system.naming.resolve(replica_binding(name, index))
        return ior.primary.endpoint


def build_healthcare_system(
        transport: Optional[Transport] = None,
        seed_offset: int = 0,
        resilience: Optional[ResiliencePolicy] = None,
        parallel_discovery: bool = False,
        discovery_workers: Optional[int] = None,
        isolate_sources: bool = False,
        replication_factor: int = 1,
        durable_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        quorum: bool = False,
        journal_sync: str = "never",
        lease_duration: Optional[float] = None,
        metadata_cache=None,
        shards: int = 1,
        cache_tier: bool = False) -> HealthcareDeployment:
    """Deploy the full healthcare federation and return its handle."""
    extra = {} if lease_duration is None \
        else {"lease_duration": lease_duration}
    system = WebFinditSystem(transport=transport,
                             ontology=topo.healthcare_ontology(),
                             metadata_cache=metadata_cache,
                             resilience=resilience,
                             parallel_discovery=parallel_discovery,
                             discovery_workers=discovery_workers,
                             isolate_sources=isolate_sources,
                             replication_factor=replication_factor,
                             durable_dir=durable_dir,
                             snapshot_every=snapshot_every,
                             quorum=quorum,
                             journal_sync=journal_sync,
                             shards=shards,
                             cache_tier=cache_tier,
                             **extra)
    relational: dict[str, Database] = {}
    objects: dict[str, ObjectDatabase] = {}
    relational_exports = schemas.relational_exports()
    object_exports = schemas.object_exports()

    for spec in topo.DATABASE_SPECS:
        description = SourceDescription(
            name=spec.name,
            information_type=spec.information_type,
            documentation_url=spec.documentation_url,
            location=spec.location)
        product = get_product(spec.orb_product)
        if spec.dbms in _DIALECT_FOR:
            database = Database(spec.name, dialect=_DIALECT_FOR[spec.dbms])
            database.execute_script(schemas.RELATIONAL_DDL[spec.name])
            populate = data.RELATIONAL_POPULATORS[spec.name]
            populate(database)
            system.register_relational_source(
                database, description,
                exported_types=relational_exports[spec.name],
                orb_product=product)
            relational[spec.name] = database
        else:
            product_name, version = _OODB_PRODUCT[spec.dbms]
            database = ObjectDatabase(spec.name, product=product_name,
                                      version=version)
            schemas.OBJECT_SCHEMAS[spec.name](database)
            data.OBJECT_POPULATORS[spec.name](database)
            system.register_object_source(
                database, description,
                exported_types=object_exports[spec.name],
                orb_product=product)
            objects[spec.name] = database

    for coalition in topo.COALITION_SPECS:
        system.create_coalition(coalition.name, coalition.information_type,
                                doc=coalition.doc)
    for coalition in topo.COALITION_SPECS:
        for member in coalition.members:
            system.join(member, coalition.name)
    for link in topo.LINK_SPECS:
        system.link(link.from_kind, link.from_name, link.to_kind,
                    link.to_name, information_type=link.information_type)

    system.attach_document(topo.RBH, "html", RBH_HTML_DOCUMENT,
                           url="http://www.medicine.uq.edu.au/RBH")
    system.attach_document(topo.RBH, "text", RBH_TEXT_DOCUMENT)

    return HealthcareDeployment(system, relational, objects)
