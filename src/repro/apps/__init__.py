"""Example applications built on the WebFINDIT core."""
