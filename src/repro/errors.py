"""Library-wide exception hierarchy.

Every subsystem raises exceptions derived from :class:`ReproError` so
applications can catch at whatever granularity they need: a single
``except ReproError`` for "anything this library did", or the specific
subclass for targeted handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for relational-engine errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class CatalogError(SqlError):
    """A table, column, or index is missing or duplicated."""


class IntegrityError(SqlError):
    """A constraint (primary key, not-null, type) was violated."""


class SqlTypeError(SqlError):
    """A value could not be coerced to the declared column type."""


class TransactionError(SqlError):
    """Invalid transaction state transition (e.g. commit with no begin)."""


# ---------------------------------------------------------------------------
# Object-oriented engine
# ---------------------------------------------------------------------------

class OodbError(ReproError):
    """Base class for object-database errors."""


class SchemaError(OodbError):
    """Class/attribute definitions are inconsistent."""


class ObjectNotFound(OodbError):
    """No object matches the requested identity or predicate."""


class OqlError(OodbError):
    """An object query was malformed."""


# ---------------------------------------------------------------------------
# ORB substrate
# ---------------------------------------------------------------------------

class OrbError(ReproError):
    """Base class for ORB-layer errors."""


class MarshalError(OrbError):
    """A value could not be encoded to or decoded from CDR."""


class CommFailure(OrbError):
    """Transport-level failure (connection refused, truncated message)."""


class ObjectNotExist(OrbError):
    """The object reference does not designate a live servant."""


class ServerBusy(CommFailure):
    """The server refused the request under overload (GIOP ``BUSY``).

    Derives from :class:`CommFailure` so failover routing and
    idempotence-gated retries treat a shedding server like any other
    unreachable endpoint — but retries against it are additionally
    capped by the client's :class:`~repro.deadline.RetryBudget`, so a
    brownout never amplifies into a retry storm.
    """


class QuorumError(CommFailure):
    """Base class for quorum-replication failures.

    Derives from :class:`CommFailure` so the resilience layer treats a
    lost quorum exactly like any other transport-level outage: callers
    that survive partitions by retrying elsewhere keep working.
    """


class QuorumLost(QuorumError):
    """Fewer than a majority of replicas acknowledged the write."""


class FencedOut(QuorumError):
    """The write carried a stale fencing epoch: a majority of replicas
    promised a newer lease, so the issuing primary has been deposed."""


class ElectionLost(QuorumError):
    """The candidate could not collect a majority of lease grants."""


class LeaseExpired(QuorumError):
    """The primary's lease lapsed before the write could be issued."""


class BadOperation(OrbError):
    """The operation is not part of the target interface."""


class IdlError(OrbError):
    """An interface definition is malformed."""


class NamingError(OrbError):
    """Name-service binding/resolution failure."""


# ---------------------------------------------------------------------------
# Resilience (deadlines, retries, circuit breakers)
# ---------------------------------------------------------------------------

class ResilienceError(ReproError):
    """Base class for failures raised by the fault-tolerance layer."""


class DeadlineExceeded(ResilienceError):
    """The call's total time budget ran out before it completed."""


class CircuitOpen(ResilienceError):
    """A circuit breaker is refusing calls to an unhealthy endpoint."""


# ---------------------------------------------------------------------------
# Gateway (DB connectivity)
# ---------------------------------------------------------------------------

class GatewayError(ReproError):
    """Base class for the DB-API-style connectivity layer."""


class DriverNotFound(GatewayError):
    """No registered driver accepts the connection URL."""


class ConnectionClosed(GatewayError):
    """Operation attempted on a closed connection or cursor."""


# ---------------------------------------------------------------------------
# Wrappers (Information Source Interfaces)
# ---------------------------------------------------------------------------

class WrapperError(ReproError):
    """Base class for wrapper/ISI errors."""


class TranslationError(WrapperError):
    """A WebTassili request could not be translated for the source."""


# ---------------------------------------------------------------------------
# WebTassili language
# ---------------------------------------------------------------------------

class WebTassiliError(ReproError):
    """Base class for WebTassili language errors."""


class WebTassiliSyntaxError(WebTassiliError):
    """The WebTassili statement could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# WebFINDIT core
# ---------------------------------------------------------------------------

class WebFinditError(ReproError):
    """Base class for WebFINDIT-core errors."""


class UnknownCoalition(WebFinditError):
    """The named coalition is not registered."""


class UnknownDatabase(WebFinditError):
    """The named information source is not registered."""


class UnknownInformationType(WebFinditError):
    """No coalition or source advertises the requested information type."""


class MembershipError(WebFinditError):
    """Invalid coalition join/leave operation."""


class DiscoveryFailure(WebFinditError):
    """Query resolution exhausted the reachable information space."""


class AccessError(WebFinditError):
    """The exported interface does not allow the requested access."""
