"""WebFINDIT reproduction.

A full-stack Python reimplementation of *Using Java and CORBA for
Implementing Internet Databases* (Bouguettaya, Benatallah, Ouzzani,
Hendra - ICDE 1999): coalition-based organization and discovery of
federated, heterogeneous databases over a CORBA-style middleware.

Quickstart::

    from repro.apps.healthcare import build_healthcare_system

    deployment = build_healthcare_system()
    browser = deployment.browser()           # a QUT Research user
    print(browser.find("Medical Research").text)
    print(browser.fetch("Royal Brisbane Hospital",
                        "SELECT * FROM MedicalStudent").text)

Layer map (Figure 3 of the paper):

* query layer - :mod:`repro.webtassili`, :class:`repro.core.QueryProcessor`,
  :class:`repro.core.Browser`
* communication layer - :mod:`repro.orb` (CDR, GIOP/IIOP, IORs, naming)
* meta-data layer - :class:`repro.core.CoDatabase` on :mod:`repro.oodb`
* data layer - :mod:`repro.sql`, :mod:`repro.oodb`, :mod:`repro.gateway`,
  :mod:`repro.wrappers`
"""

from repro.core import (Browser, Coalition, CoDatabase, DiscoveryEngine,
                        Ontology, QueryProcessor, Registry, ServiceLink,
                        Session, SourceDescription, WebFinditSystem)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "WebFinditSystem", "Registry", "Browser", "QueryProcessor", "Session",
    "Coalition", "ServiceLink", "CoDatabase", "DiscoveryEngine",
    "SourceDescription", "Ontology", "ReproError",
    "__version__",
]
