"""A from-scratch object-oriented database engine.

Stands in for the ObjectStore and Ontos stores of the paper's data
layer, and provides the class-lattice machinery co-databases are built
on.  Public surface:

* :class:`~repro.oodb.database.ObjectDatabase`
* :class:`~repro.oodb.schema.Schema`, :class:`~repro.oodb.schema.OClass`,
  :class:`~repro.oodb.schema.Attribute`
* :class:`~repro.oodb.objects.OObject`, :class:`~repro.oodb.objects.Oid`
"""

from repro.oodb.database import ObjectDatabase
from repro.oodb.objects import Oid, OObject
from repro.oodb.schema import Attribute, OClass, Schema

__all__ = ["ObjectDatabase", "Schema", "OClass", "Attribute", "OObject", "Oid"]
