"""The object database facade (ObjectStore / Ontos stand-in).

An :class:`ObjectDatabase` owns a :class:`~repro.oodb.schema.Schema`,
allocates object identity, maintains per-class extents, and answers
extent and predicate queries.  A tiny OQL-flavoured string query surface
lives in :mod:`repro.oodb.query` and is reachable through
:meth:`ObjectDatabase.query`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import ObjectNotFound, SchemaError
from repro.oodb.objects import Extent, Oid, OObject, validate_new_object
from repro.oodb.schema import Attribute, OClass, Schema


class ObjectDatabase:
    """One in-memory object-oriented database."""

    def __init__(self, name: str, schema: Optional[Schema] = None,
                 product: str = "ObjectStore", version: str = "5.1"):
        self.name = name
        self.schema = schema or Schema(name=f"{name}-schema")
        self.product = product
        self.version = version
        self._objects: dict[Oid, OObject] = {}
        self._extents: dict[str, Extent] = {}
        self._next_oid = 1

    # ------------------------------------------------------------- metadata --

    @property
    def banner(self) -> str:
        """Product banner, e.g. ``ObjectStore 5.1``."""
        return f"{self.product} {self.version}"

    def define_class(self, name: str,
                     attributes: Optional[list[Attribute]] = None,
                     bases: Optional[list[str]] = None, doc: str = "",
                     abstract: bool = False) -> OClass:
        """Define a class and create its (empty) extent."""
        oclass = self.schema.define_class(name, attributes, bases, doc,
                                          abstract)
        self._extents[name] = Extent(name)
        return oclass

    def add_attribute(self, class_name: str, attribute: Attribute,
                      default: Any = None) -> None:
        """Schema evolution: add *attribute* to *class_name*, backfilling
        every stored instance (of the class and its descendants) with
        *default* (or ``[]`` for multi-valued attributes)."""
        if attribute.required and default is None and not attribute.many:
            raise SchemaError(
                f"adding required attribute {attribute.name!r} needs a "
                f"non-NULL default to backfill existing objects")
        self.schema.add_attribute(class_name, attribute)
        if default is not None:
            attribute.validate(default)
        fill = [] if attribute.many and default is None else default
        for stored in self.extent(class_name, include_subclasses=True):
            if attribute.name not in stored:
                stored._values[attribute.name] = \
                    list(fill) if isinstance(fill, list) else fill

    def attribute_of(self, class_name: str, attribute_name: str) -> Attribute:
        """Resolve an attribute (inherited or own) of *class_name*."""
        attributes = self.schema.all_attributes(class_name)
        attribute = attributes.get(attribute_name)
        if attribute is None:
            raise SchemaError(
                f"class {class_name!r} has no attribute {attribute_name!r}")
        return attribute

    # ------------------------------------------------------------- lifecycle --

    def create(self, class_name: str, **values: Any) -> OObject:
        """Create and store a new object of *class_name*."""
        normalized = validate_new_object(self.schema, class_name, values)
        oid = Oid(self._next_oid)
        self._next_oid += 1
        stored = OObject(oid, class_name, normalized, self)
        self._objects[oid] = stored
        extent = self._extents.get(class_name)
        if extent is None:  # class defined directly on the schema object
            extent = Extent(class_name)
            self._extents[class_name] = extent
        extent.add(oid)
        return stored

    def get(self, oid: Oid) -> OObject:
        """Fetch by identity."""
        stored = self._objects.get(oid)
        if stored is None:
            raise ObjectNotFound(f"no object {oid!r} in {self.name!r}")
        return stored

    def delete(self, oid: Oid) -> None:
        """Remove an object; dangling references raise on dereference."""
        stored = self._objects.pop(oid, None)
        if stored is None:
            raise ObjectNotFound(f"no object {oid!r} in {self.name!r}")
        extent = self._extents.get(stored.class_name)
        if extent is not None:
            extent.remove(oid)

    def __len__(self) -> int:
        return len(self._objects)

    # ---------------------------------------------------------------- queries --

    def extent(self, class_name: str, include_subclasses: bool = True
               ) -> list[OObject]:
        """All instances of a class (by default including subclasses)."""
        self.schema.get(class_name)
        class_names = [class_name]
        if include_subclasses:
            class_names.extend(self.schema.descendants(class_name))
        result: list[OObject] = []
        for name in class_names:
            extent = self._extents.get(name)
            if extent is not None:
                result.extend(self._objects[oid] for oid in extent)
        return result

    def select(self, class_name: str,
               predicate: Optional[Callable[[OObject], bool]] = None,
               include_subclasses: bool = True,
               **equalities: Any) -> list[OObject]:
        """Instances of *class_name* matching a predicate and/or
        attribute equalities, e.g. ``db.select("Doctor", position="RMO")``."""
        candidates = self.extent(class_name, include_subclasses)
        result: list[OObject] = []
        for candidate in candidates:
            if predicate is not None and not predicate(candidate):
                continue
            if any(candidate.get(attr) != wanted
                   for attr, wanted in equalities.items()):
                continue
            result.append(candidate)
        return result

    def find_one(self, class_name: str, **equalities: Any) -> OObject:
        """The unique instance matching the equalities; raises otherwise."""
        matches = self.select(class_name, **equalities)
        if not matches:
            raise ObjectNotFound(
                f"no {class_name} matching {equalities!r} in {self.name!r}")
        if len(matches) > 1:
            raise ObjectNotFound(
                f"{len(matches)} {class_name} objects match {equalities!r}")
        return matches[0]

    def query(self, oql: str) -> list[dict[str, Any]]:
        """Run an OQL-flavoured string query; see :mod:`repro.oodb.query`."""
        from repro.oodb.query import run_query
        return run_query(self, oql)

    # ---------------------------------------------------------------- loading --

    def create_many(self, class_name: str,
                    rows: Iterable[dict[str, Any]]) -> list[OObject]:
        """Bulk object creation."""
        return [self.create(class_name, **row) for row in rows]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ObjectDatabase(name={self.name!r}, product={self.product!r}, "
                f"objects={len(self._objects)})")
