"""Persistent objects and object identity for the OO engine."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import SchemaError
from repro.oodb.schema import Attribute, Schema


class Oid:
    """An object identifier: stable, hashable, ordered by allocation."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Oid) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("oid", self.value))

    def __lt__(self, other: "Oid") -> bool:
        return self.value < other.value

    def __repr__(self) -> str:
        return f"Oid({self.value})"


class OObject:
    """One stored object: identity + class + attribute values.

    Attribute access is dict-like via :meth:`get` / :meth:`set`, plus
    read-only attribute sugar (``obj["name"]``).  Values referencing
    other objects hold :class:`Oid` instances; :meth:`deref` follows them
    through the owning database.
    """

    def __init__(self, oid: Oid, class_name: str, values: dict[str, Any],
                 database: "ObjectDatabaseProtocol"):
        self.oid = oid
        self.class_name = class_name
        self._values = values
        self._database = database

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def __getitem__(self, name: str) -> Any:
        if name not in self._values:
            raise KeyError(f"object {self.oid!r} has no attribute {name!r}")
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def set(self, name: str, value: Any) -> None:
        """Update one attribute, re-validating against the schema."""
        attribute = self._database.attribute_of(self.class_name, name)
        self._values[name] = _validate_value(attribute, value)

    def values(self) -> dict[str, Any]:
        """A copy of the attribute map."""
        return dict(self._values)

    def deref(self, name: str) -> Optional["OObject"]:
        """Follow an object-valued attribute to the referenced object."""
        value = self._values.get(name)
        if value is None:
            return None
        if not isinstance(value, Oid):
            raise SchemaError(f"attribute {name!r} is not an object reference")
        return self._database.get(value)

    def deref_many(self, name: str) -> list["OObject"]:
        """Follow a multi-valued object attribute."""
        value = self._values.get(name) or []
        return [self._database.get(oid) for oid in value]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OObject({self.class_name}, {self.oid!r})"


class ObjectDatabaseProtocol:
    """The minimal interface :class:`OObject` needs from its database."""

    def get(self, oid: Oid) -> "OObject":  # pragma: no cover - interface
        raise NotImplementedError

    def attribute_of(self, class_name: str,
                     attribute_name: str) -> Attribute:  # pragma: no cover
        raise NotImplementedError


def _validate_value(attribute: Attribute, value: Any) -> Any:
    """Validate a possibly multi-valued value against *attribute*."""
    if attribute.many:
        if value is None:
            value = []
        if not isinstance(value, list):
            raise SchemaError(
                f"attribute {attribute.name!r} is multi-valued; got {value!r}")
        return [_validate_scalar(attribute, item) for item in value]
    return _validate_scalar(attribute, value)


def _validate_scalar(attribute: Attribute, value: Any) -> Any:
    if attribute.kind == "object":
        if value is None:
            if attribute.required and not attribute.many:
                raise SchemaError(f"attribute {attribute.name!r} is required")
            return None
        if isinstance(value, OObject):
            return value.oid
        if isinstance(value, Oid):
            return value
        raise SchemaError(
            f"attribute {attribute.name!r} expects an object, got {value!r}")
    if attribute.kind == "any":
        return value
    return attribute.validate(value)


class Extent:
    """The set of objects of one class (not including subclasses).

    Extents preserve creation order, which the browsing layer relies on
    for stable display.
    """

    def __init__(self, class_name: str):
        self.class_name = class_name
        self._oids: dict[Oid, None] = {}

    def add(self, oid: Oid) -> None:
        self._oids[oid] = None

    def remove(self, oid: Oid) -> None:
        self._oids.pop(oid, None)

    def __iter__(self) -> Iterator[Oid]:
        return iter(self._oids)

    def __len__(self) -> int:
        return len(self._oids)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._oids


def validate_new_object(schema: Schema, class_name: str,
                        values: dict[str, Any]) -> dict[str, Any]:
    """Validate and normalize attribute values for object creation.

    Unknown attribute names raise; missing optional attributes are
    filled with ``None`` (or ``[]`` for multi-valued ones) so stored
    objects always carry the full attribute map of their class.
    """
    oclass = schema.get(class_name)
    if oclass.abstract:
        raise SchemaError(f"class {class_name!r} is abstract")
    attributes = schema.all_attributes(class_name)
    unknown = set(values) - set(attributes)
    if unknown:
        raise SchemaError(
            f"class {class_name!r} has no attributes {sorted(unknown)!r}")
    normalized: dict[str, Any] = {}
    for name, attribute in attributes.items():
        supplied = values.get(name)
        if supplied is None and name not in values and attribute.many:
            normalized[name] = []
            continue
        normalized[name] = _validate_value(attribute, supplied)
    return normalized
