"""A small OQL-flavoured query language for the object engine.

Grammar::

    query     := SELECT projection FROM ClassName [alias] [WHERE predicate]
                 [ORDER BY path [ASC|DESC]]
    projection:= '*' | path (',' path)*
    predicate := disjunct (OR disjunct)*
    disjunct  := conjunct (AND conjunct)*
    conjunct  := [NOT] comparison | '(' predicate ')'
    comparison:= path op literal | path LIKE string | path IS [NOT] NULL
    path      := name ('.' name)*     -- dots traverse object references

Path traversal follows object-valued attributes through the database,
so ``supervisor.name`` dereferences the ``supervisor`` reference and
reads its ``name``.  Queries return lists of dicts keyed by the
projection paths.

This deliberately mirrors the level of query support the paper's
object stores (ObjectStore, Ontos) exposed through their C++ APIs.
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Optional

from repro.errors import OqlError
from repro.oodb.objects import Oid, OObject

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<path>[A-Za-z_][\w]*(?:\.[A-Za-z_][\w]*)*)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),*])
    )""", re.VERBOSE)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "LIKE", "IS",
             "NULL", "ORDER", "BY", "ASC", "DESC", "TRUE", "FALSE"}

#: Sentinel projection for ``SELECT COUNT(*)``.
COUNT_STAR = ["__count__"]


def _tokenize(text: str) -> list[tuple[str, Any]]:
    tokens: list[tuple[str, Any]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise OqlError(f"cannot tokenize OQL near {text[position:position+20]!r}")
        position = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")
            tokens.append(("string", raw[1:-1].replace("''", "'")))
        elif match.lastgroup == "number":
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(("number", value))
        elif match.lastgroup == "path":
            word = match.group("path")
            if word.upper() in _KEYWORDS and "." not in word:
                tokens.append(("keyword", word.upper()))
            else:
                tokens.append(("path", word))
        elif match.lastgroup == "op":
            op = match.group("op")
            tokens.append(("op", "<>" if op == "!=" else op))
        else:
            tokens.append(("punct", match.group("punct")))
    tokens.append(("eof", None))
    return tokens


class _Comparison:
    def __init__(self, path: str, op: str, value: Any):
        self.path = path
        self.op = op
        self.value = value

    def evaluate(self, obj: OObject, database, alias: Optional[str]) -> bool:
        actual = resolve_path(database, obj, self.path, alias)
        if self.op == "IS NULL":
            return actual is None
        if self.op == "IS NOT NULL":
            return actual is not None
        if actual is None:
            return False
        if self.op == "LIKE":
            parts = ["^"]
            for char in str(self.value):
                if char == "%":
                    parts.append(".*")
                elif char == "_":
                    parts.append(".")
                else:
                    parts.append(re.escape(char))
            parts.append("$")
            return re.match("".join(parts), str(actual),
                            re.IGNORECASE | re.DOTALL) is not None
        expected = self.value
        if isinstance(actual, datetime.date) and isinstance(expected, str):
            expected = datetime.date.fromisoformat(expected)
        try:
            if self.op == "=":
                return actual == expected
            if self.op == "<>":
                return actual != expected
            if self.op == "<":
                return actual < expected
            if self.op == "<=":
                return actual <= expected
            if self.op == ">":
                return actual > expected
            if self.op == ">=":
                return actual >= expected
        except TypeError:
            return False
        raise OqlError(f"unknown operator {self.op!r}")  # pragma: no cover


class _Not:
    def __init__(self, inner):
        self.inner = inner

    def evaluate(self, obj, database, alias) -> bool:
        return not self.inner.evaluate(obj, database, alias)


class _And:
    def __init__(self, parts):
        self.parts = parts

    def evaluate(self, obj, database, alias) -> bool:
        return all(part.evaluate(obj, database, alias) for part in self.parts)


class _Or:
    def __init__(self, parts):
        self.parts = parts

    def evaluate(self, obj, database, alias) -> bool:
        return any(part.evaluate(obj, database, alias) for part in self.parts)


class _Parser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._pos = 0

    def _peek(self) -> tuple[str, Any]:
        return self._tokens[self._pos]

    def _advance(self) -> tuple[str, Any]:
        token = self._tokens[self._pos]
        if token[0] != "eof":
            self._pos += 1
        return token

    def _accept_keyword(self, *names: str) -> Optional[str]:
        kind, value = self._peek()
        if kind == "keyword" and value in names:
            self._advance()
            return value
        return None

    def _expect_keyword(self, name: str) -> None:
        if self._accept_keyword(name) is None:
            raise OqlError(f"expected {name}, found {self._peek()[1]!r}")

    def parse(self) -> "ParsedQuery":
        self._expect_keyword("SELECT")
        projection = self._projection()
        self._expect_keyword("FROM")
        kind, class_name = self._advance()
        if kind != "path" or "." in class_name:
            raise OqlError("expected a class name after FROM")
        alias = None
        kind, value = self._peek()
        if kind == "path" and "." not in value:
            alias = value
            self._advance()
        predicate = None
        if self._accept_keyword("WHERE"):
            predicate = self._predicate()
        order_path = None
        order_desc = False
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            kind, order_path = self._advance()
            if kind != "path":
                raise OqlError("expected a path after ORDER BY")
            if self._accept_keyword("DESC"):
                order_desc = True
            else:
                self._accept_keyword("ASC")
        kind, value = self._peek()
        if kind != "eof":
            raise OqlError(f"unexpected trailing token {value!r}")
        return ParsedQuery(projection, class_name, alias, predicate,
                           order_path, order_desc)

    def _projection(self) -> Optional[list[str]]:
        kind, value = self._peek()
        if kind == "punct" and value == "*":
            self._advance()
            return None
        if kind == "path" and value.upper() == "COUNT" \
                and self._tokens[self._pos + 1] == ("punct", "(") \
                and self._tokens[self._pos + 2] == ("punct", "*") \
                and self._tokens[self._pos + 3] == ("punct", ")"):
            self._pos += 4
            return COUNT_STAR
        paths = [self._path()]
        while self._peek() == ("punct", ","):
            self._advance()
            paths.append(self._path())
        return paths

    def _path(self) -> str:
        kind, value = self._advance()
        if kind != "path":
            raise OqlError(f"expected attribute path, found {value!r}")
        return value

    def _predicate(self):
        parts = [self._conjunction()]
        while self._accept_keyword("OR"):
            parts.append(self._conjunction())
        return parts[0] if len(parts) == 1 else _Or(parts)

    def _conjunction(self):
        parts = [self._condition()]
        while self._accept_keyword("AND"):
            parts.append(self._condition())
        return parts[0] if len(parts) == 1 else _And(parts)

    def _condition(self):
        if self._accept_keyword("NOT"):
            return _Not(self._condition())
        if self._peek() == ("punct", "("):
            self._advance()
            inner = self._predicate()
            if self._advance() != ("punct", ")"):
                raise OqlError("expected ')'")
            return inner
        path = self._path()
        if self._accept_keyword("IS"):
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                return _Comparison(path, "IS NOT NULL", None)
            self._expect_keyword("NULL")
            return _Comparison(path, "IS NULL", None)
        if self._accept_keyword("LIKE"):
            kind, value = self._advance()
            if kind != "string":
                raise OqlError("LIKE requires a string literal")
            return _Comparison(path, "LIKE", value)
        kind, op = self._advance()
        if kind != "op":
            raise OqlError(f"expected comparison operator, found {op!r}")
        return _Comparison(path, op, self._literal())

    def _literal(self) -> Any:
        kind, value = self._advance()
        if kind in ("string", "number"):
            return value
        if kind == "keyword" and value in ("TRUE", "FALSE"):
            return value == "TRUE"
        if kind == "keyword" and value == "NULL":
            return None
        raise OqlError(f"expected a literal, found {value!r}")


class ParsedQuery:
    """A parsed OQL query ready for evaluation."""

    def __init__(self, projection: Optional[list[str]], class_name: str,
                 alias: Optional[str], predicate,
                 order_path: Optional[str], order_desc: bool):
        self.projection = projection
        self.class_name = class_name
        self.alias = alias
        self.predicate = predicate
        self.order_path = order_path
        self.order_desc = order_desc


def resolve_path(database, obj: OObject, path: str,
                 alias: Optional[str]) -> Any:
    """Follow a dotted attribute path from *obj*, dereferencing object
    attributes through *database*.  A leading alias segment is skipped."""
    segments = path.split(".")
    if alias is not None and segments and segments[0] == alias:
        segments = segments[1:]
        if not segments:
            raise OqlError(f"path {path!r} names the alias but no attribute")
    current: Any = obj
    for segment in segments:
        if current is None:
            return None
        if isinstance(current, Oid):
            current = database.get(current)
        if not isinstance(current, OObject):
            raise OqlError(
                f"path {path!r}: {segment!r} applied to non-object {current!r}")
        current = current.get(segment)
    if isinstance(current, Oid):
        current = database.get(current)
    return current


def run_query(database, oql: str) -> list[dict[str, Any]]:
    """Parse and evaluate *oql* against *database*."""
    parsed = _Parser(oql).parse()
    candidates = database.extent(parsed.class_name, include_subclasses=True)
    selected: list[OObject] = []
    for candidate in candidates:
        if parsed.predicate is None or parsed.predicate.evaluate(
                candidate, database, parsed.alias):
            selected.append(candidate)
    if parsed.order_path is not None:
        selected.sort(
            key=lambda o: _sort_key(resolve_path(database, o,
                                                 parsed.order_path,
                                                 parsed.alias)),
            reverse=parsed.order_desc)
    if parsed.projection is COUNT_STAR:
        return [{"count": len(selected)}]
    rows: list[dict[str, Any]] = []
    for obj in selected:
        if parsed.projection is None:
            row = {name: value for name, value in obj.values().items()}
            row["_oid"] = obj.oid.value
            row["_class"] = obj.class_name
        else:
            row = {}
            for path in parsed.projection:
                value = resolve_path(database, obj, path, parsed.alias)
                if isinstance(value, OObject):
                    value = value.oid.value
                row[path] = value
        rows.append(row)
    return rows


def _sort_key(value: Any):
    # NULLs sort first ascending, matching the relational engine.
    return (value is not None, value)
