"""Class definitions for the object-oriented engine.

The paper's co-databases are object-oriented databases whose schema is a
*lattice of classes* (coalitions are classes; member databases are
instances; specialisation is subclassing).  This module provides that
machinery: typed attributes, multiple inheritance, and lattice queries
(subclasses, descendants, ancestors).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import SchemaError

#: Attribute kinds understood by the engine.
ATTRIBUTE_KINDS = frozenset({
    "string", "integer", "real", "boolean", "date", "object", "any",
})


@dataclass(frozen=True)
class Attribute:
    """One typed attribute of a class.

    *kind* is one of :data:`ATTRIBUTE_KINDS`; ``object`` means a
    reference to another persistent object (optionally constrained to
    *target* class), and *many* makes the attribute a homogeneous list.
    """

    name: str
    kind: str = "string"
    required: bool = False
    many: bool = False
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ATTRIBUTE_KINDS:
            raise SchemaError(
                f"attribute {self.name!r}: unknown kind {self.kind!r}")
        if self.target is not None and self.kind != "object":
            raise SchemaError(
                f"attribute {self.name!r}: target only valid for object kind")

    def validate(self, value: Any) -> Any:
        """Check one scalar value against this attribute's kind."""
        if value is None:
            if self.required:
                raise SchemaError(f"attribute {self.name!r} is required")
            return None
        if self.kind == "string" and not isinstance(value, str):
            raise SchemaError(f"{self.name!r} expects a string, got {value!r}")
        if self.kind == "integer" and (not isinstance(value, int)
                                       or isinstance(value, bool)):
            raise SchemaError(f"{self.name!r} expects an integer, got {value!r}")
        if self.kind == "real" and not isinstance(value, (int, float)):
            raise SchemaError(f"{self.name!r} expects a number, got {value!r}")
        if self.kind == "boolean" and not isinstance(value, bool):
            raise SchemaError(f"{self.name!r} expects a boolean, got {value!r}")
        if self.kind == "date" and not isinstance(value, datetime.date):
            raise SchemaError(f"{self.name!r} expects a date, got {value!r}")
        return value


@dataclass
class OClass:
    """A class in the schema lattice."""

    name: str
    attributes: list[Attribute] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)
    doc: str = ""
    abstract: bool = False

    def own_attribute(self, name: str) -> Optional[Attribute]:
        """Attribute declared directly on this class (not inherited)."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        return None


class Schema:
    """A set of classes with validated inheritance.

    Invariants maintained:

    * every base class exists before its subclasses,
    * the inheritance graph is acyclic,
    * an attribute redefinition in a subclass must keep the same kind.
    """

    def __init__(self, name: str = "schema"):
        self.name = name
        self._classes: dict[str, OClass] = {}

    # -- definition ------------------------------------------------------------

    def define(self, oclass: OClass) -> OClass:
        """Register *oclass*, validating bases and attribute overrides."""
        if oclass.name in self._classes:
            raise SchemaError(f"class {oclass.name!r} already defined")
        for base in oclass.bases:
            if base not in self._classes:
                raise SchemaError(
                    f"class {oclass.name!r}: unknown base {base!r}")
        for attribute in oclass.attributes:
            for base in oclass.bases:
                inherited = self._find_attribute(base, attribute.name)
                if inherited is not None and inherited.kind != attribute.kind:
                    raise SchemaError(
                        f"class {oclass.name!r} redefines {attribute.name!r} "
                        f"with kind {attribute.kind!r} (base has "
                        f"{inherited.kind!r})")
        self._classes[oclass.name] = oclass
        return oclass

    def define_class(self, name: str, attributes: Optional[list[Attribute]] = None,
                     bases: Optional[list[str]] = None, doc: str = "",
                     abstract: bool = False) -> OClass:
        """Convenience wrapper around :meth:`define`."""
        return self.define(OClass(name=name, attributes=attributes or [],
                                  bases=bases or [], doc=doc,
                                  abstract=abstract))

    def add_attribute(self, class_name: str, attribute: Attribute) -> None:
        """Schema evolution: add an attribute to an existing class.

        The attribute must not clash with an own/inherited attribute of
        a different kind, nor with one already declared by a subclass.
        """
        oclass = self.get(class_name)
        existing = self._find_attribute(class_name, attribute.name)
        if existing is not None:
            raise SchemaError(
                f"class {class_name!r} already has attribute "
                f"{attribute.name!r}")
        for descendant in self.descendants(class_name):
            own = self.get(descendant).own_attribute(attribute.name)
            if own is not None and own.kind != attribute.kind:
                raise SchemaError(
                    f"subclass {descendant!r} declares {attribute.name!r} "
                    f"with kind {own.kind!r}, conflicting with new "
                    f"{attribute.kind!r}")
        oclass.attributes.append(attribute)

    # -- lookup -----------------------------------------------------------------

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> OClass:
        oclass = self._classes.get(name)
        if oclass is None:
            raise SchemaError(f"no class {name!r} in schema {self.name!r}")
        return oclass

    def class_names(self) -> list[str]:
        """All class names, in definition order."""
        return list(self._classes)

    def _find_attribute(self, class_name: str, attribute_name: str
                        ) -> Optional[Attribute]:
        oclass = self._classes[class_name]
        own = oclass.own_attribute(attribute_name)
        if own is not None:
            return own
        for base in oclass.bases:
            found = self._find_attribute(base, attribute_name)
            if found is not None:
                return found
        return None

    def all_attributes(self, class_name: str) -> dict[str, Attribute]:
        """Inherited + own attributes, subclass definitions winning."""
        oclass = self.get(class_name)
        merged: dict[str, Attribute] = {}
        for base in oclass.bases:
            merged.update(self.all_attributes(base))
        for attribute in oclass.attributes:
            merged[attribute.name] = attribute
        return merged

    # -- lattice queries ----------------------------------------------------------

    def ancestors(self, class_name: str) -> list[str]:
        """All (transitive) base classes, nearest first, no duplicates."""
        seen: list[str] = []

        def walk(name: str) -> None:
            for base in self.get(name).bases:
                if base not in seen:
                    seen.append(base)
                    walk(base)

        walk(class_name)
        return seen

    def subclasses(self, class_name: str) -> list[str]:
        """Direct subclasses, in definition order."""
        self.get(class_name)
        return [name for name, oclass in self._classes.items()
                if class_name in oclass.bases]

    def descendants(self, class_name: str) -> list[str]:
        """All transitive subclasses, breadth-first."""
        result: list[str] = []
        frontier = self.subclasses(class_name)
        while frontier:
            next_frontier: list[str] = []
            for name in frontier:
                if name not in result:
                    result.append(name)
                    next_frontier.extend(self.subclasses(name))
            frontier = next_frontier
        return result

    def is_subclass(self, candidate: str, ancestor: str) -> bool:
        """True when *candidate* is *ancestor* or inherits from it."""
        if candidate == ancestor:
            return True
        return ancestor in self.ancestors(candidate)

    def roots(self) -> list[str]:
        """Classes with no bases (the top of the lattice)."""
        return [name for name, oclass in self._classes.items()
                if not oclass.bases]

    def iter_classes(self) -> Iterator[OClass]:
        yield from self._classes.values()
