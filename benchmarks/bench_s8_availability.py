"""S8 — Availability: what co-database replication buys.

We sweep the replication factor (1, 2, 3 replica servants per
co-database) against three failure scenarios — no kills, three primary
servers killed, and kill followed by crash-recovery restart — and
measure answer completeness (found / healthy-run leads) plus p50/p95
discovery latency.

Expected shape: with a single servant per co-database, killing servers
costs leads (the degraded report names them); with two or more
replicas the same kills are absorbed by failover routing at a modest
latency cost, and restart always returns the federation to full
completeness with zero journal lag.

Results persist to ``BENCH_availability.json`` (the acceptance
artefact of the replication work; see docs/availability.md).
"""

import json
import random
import time
from pathlib import Path

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.bench import print_table
from repro.core.resilience import (HealthBoard, ResiliencePolicy,
                                   RetryPolicy)
from repro.orb.faults import ANY, FaultyTransport
from repro.orb.transport import InMemoryNetwork

SEED = 1999
REPLICA_FACTORS = (1, 2, 3)
SCENARIOS = ("no kills", "1 kill", "kill+restart")
QUERIES = ("Medical Insurance", "Medical Research", "Superannuation")
REPEATS = 3           # sweeps per query per point (p95 needs samples)
KILLED_SOURCES = 2    # sources losing their primary server (every
                      # non-home database on a healthy lead path)
DEADLINE = 2.0
LINK_LATENCY = 0.0005


def _healthy_paths():
    """query -> {lead name -> via path}, from an unfaulted sweep."""
    deployment = build_healthcare_system()
    engine = deployment.system.query_processor().discovery
    paths = {}
    for query in QUERIES:
        result = engine.discover(query, topo.QUT, stop_at_first=False,
                                 max_hops=6)
        paths[query] = {lead.name: list(lead.via) for lead in result.leads}
    engine.close()
    return paths


def _pick_victims(healthy_paths):
    """Seeded choice of killed sources, guaranteed to matter: every
    victim sits on some healthy lead path (never QUT, the home)."""
    on_paths = set()
    for leads in healthy_paths.values():
        for via in leads.values():
            on_paths.update(via)
    on_paths &= set(topo.ALL_DATABASES)  # leads are coalitions, not kill targets
    on_paths.discard(topo.QUT)
    return random.Random(SEED).sample(sorted(on_paths), KILLED_SOURCES)


def _build(replicas):
    faulty = FaultyTransport(InMemoryNetwork(), seed=SEED)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                          max_delay=0.01, seed=SEED),
        health=HealthBoard(failure_threshold=3))
    # snapshot_every keeps the replication machinery on even at factor
    # 1, so "kill the primary" means the same thing in every row.
    deployment = build_healthcare_system(
        transport=faulty, resilience=policy,
        replication_factor=replicas, snapshot_every=8)
    faulty.delay(ANY, latency=LINK_LATENCY)
    return deployment


def _measure(deployment, healthy_paths):
    """Sweep all queries REPEATS times: completeness + latency samples."""
    engine = deployment.system.query_processor().discovery
    latencies, found, expected, degraded = [], 0, 0, set()
    try:
        for __ in range(REPEATS):
            for query in QUERIES:
                started = time.perf_counter()
                result = engine.discover(query, topo.QUT,
                                         stop_at_first=False, max_hops=6,
                                         deadline=DEADLINE)
                latencies.append(time.perf_counter() - started)
                lead_names = {lead.name for lead in result.leads}
                expected += len(healthy_paths[query])
                found += len(set(healthy_paths[query]) & lead_names)
                degraded.update(result.degraded.names())
    finally:
        engine.close()
    return latencies, found / expected if expected else 1.0, degraded


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       round(fraction * (len(ordered) - 1)))]


def _run_point(replicas, scenario, healthy_paths):
    deployment = _build(replicas)
    system = deployment.system
    victims = _pick_victims(healthy_paths)

    if scenario != "no kills":
        for victim in victims:
            system.kill_replica(victim, 0)
    if scenario == "kill+restart":
        # One sweep while down (warms breakers and proves the outage),
        # then every victim crash-recovers before the measured runs.
        _measure(deployment, healthy_paths)
        for victim in victims:
            system.restart_replica(victim, 0)

    latencies, completeness, degraded = _measure(deployment, healthy_paths)
    status = system.replica_status()
    lag = sum(replica["lag"] for entry in status.values()
              for replica in entry["replicas"])
    return {
        "replicas": replicas,
        "scenario": scenario,
        "killed": victims if scenario != "no kills" else [],
        "completeness": round(completeness, 3),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 2),
        "degraded_reported": sorted(degraded),
        "journal_lag": lag,
    }


def test_s8_availability(benchmark):
    healthy_paths = _healthy_paths()
    points = [_run_point(replicas, scenario, healthy_paths)
              for replicas in REPLICA_FACTORS for scenario in SCENARIOS]

    rows = [[p["replicas"], p["scenario"], f"{p['completeness']:.2f}",
             f"{p['p50_ms']:.1f}", f"{p['p95_ms']:.1f}",
             ", ".join(p["degraded_reported"]) or "-"]
            for p in points]
    print_table(
        f"S8: completeness and latency vs replication factor "
        f"({KILLED_SOURCES} primaries killed, deadline {DEADLINE}s, "
        f"seed {SEED})",
        ["replicas", "scenario", "completeness", "p50 ms", "p95 ms",
         "degraded report"], rows)

    by_key = {(p["replicas"], p["scenario"]): p for p in points}
    # Nothing killed -> nothing lost, at any factor.
    for replicas in REPLICA_FACTORS:
        assert by_key[(replicas, "no kills")]["completeness"] == 1.0
        assert not by_key[(replicas, "no kills")]["degraded_reported"]
    # A single servant loses leads when its server dies ...
    assert by_key[(1, "1 kill")]["completeness"] < 1.0
    assert by_key[(1, "1 kill")]["degraded_reported"]
    # ... replication absorbs the same kills completely.
    for replicas in (2, 3):
        assert by_key[(replicas, "1 kill")]["completeness"] == 1.0
        assert not by_key[(replicas, "1 kill")]["degraded_reported"]
    # Restart restores full completeness and leaves no journal lag.
    for replicas in REPLICA_FACTORS:
        point = by_key[(replicas, "kill+restart")]
        assert point["completeness"] == 1.0
        assert point["journal_lag"] == 0

    out = {
        "benchmark": "S8 availability: replication factor vs kills",
        "topology": {"databases": len(topo.ALL_DATABASES),
                     "queries": list(QUERIES),
                     "repeats": REPEATS,
                     "killed_sources": KILLED_SOURCES,
                     "deadline_s": DEADLINE,
                     "link_latency_ms": LINK_LATENCY * 1e3,
                     "seed": SEED},
        "points": points,
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_availability.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: len(points))
