"""S11 — overload robustness: no congestion collapse past saturation.

An open-loop Poisson workload (``repro.bench.workload.open_loop_plan``)
is replayed against one slow servant on the event-loop transport with a
deliberately tiny dispatch pool: two workers at ~10ms service time give
a hard capacity of ~200 requests/second.  The offered rate is swept
from well below saturation to 2x past it; every request carries a
0.3s deadline that travels to the server in the GIOP deadline-budget
service context.

Two server configurations face the identical plans:

* **shedding off** (the seed's behaviour) — the server FIFO-queues
  everything and burns its two workers answering requests whose
  callers hung up long ago.  Past saturation, goodput (replies that
  arrive *within deadline*) collapses toward zero: congestion collapse.
* **shedding on** — bounded admission queue, CoDel-shaped queue-age
  shedding, and deadline-aware early drop: requests that cannot make
  their remaining budget are refused in microseconds instead of
  serviced in vain, so the workers spend ~all their time on requests
  that still matter.

Gates: with shedding on, goodput at 2x saturation stays >= 70% of the
peak across the sweep and p99 latency of successful interactive
requests stays under the deadline; with shedding off, goodput at 2x
demonstrably collapses (< half of the shedding run's).  Transport-level
resends throughout are metered by a shared ``RetryBudget`` whose grant
count must respect ``ratio * attempts + burst``.

Results persist to ``BENCH_overload.json``.
"""

import json
import time
from pathlib import Path

from repro.bench import open_loop_plan, print_table, run_open_loop
from repro.bench.workload import percentile
from repro.deadline import Deadline, RetryBudget, call_policy
from repro.errors import CommFailure, DeadlineExceeded, ServerBusy
from repro.orb import ORBIX, VISIBROKER, InterfaceBuilder, TcpTransport, \
    create_orb
from repro.orb.overload import OverloadPolicy

LOOKUP = InterfaceBuilder("KvStore").operation("lookup", "key").build()

SERVICE_TIME = 0.010       # seconds each lookup occupies a worker
LOOP_WORKERS = 2           # capacity ~= workers / service = 200 req/s
CAPACITY = LOOP_WORKERS / SERVICE_TIME
RATES = (50, 100, 200, 400)   # offered sweep; last point is 2x capacity
DURATION = 2.5             # seconds of offered load per rate point
DEADLINE = 0.3             # per-request budget, seconds
KEYS = 16                  # zipfian key population
BACKGROUND_FRACTION = 0.1  # anti-entropy-style maintenance share
STRIPES = 8
PIPELINE_DEPTH = 256       # client never queues: 2048 >= any backlog
TIMEOUT = 10.0
RETRY_RATIO = 0.1
RETRY_BURST = 10.0
SEED = 1999

#: Gate: goodput at 2x saturation with shedding >= this share of peak.
GOODPUT_FLOOR = 0.70
#: Gate: shedding-off goodput at 2x must fall below this share of the
#: shedding run's (the collapse the layer exists to prevent).
COLLAPSE_CEILING = 0.5


class SlowServant:
    """A lookup that takes real worker time (sleep releases the GIL)."""

    def lookup(self, key):
        time.sleep(SERVICE_TIME)
        return {"key": key, "value": f"value-{key}"}


def _classify(exc):
    if isinstance(exc, ServerBusy):
        return "shed"
    if isinstance(exc, DeadlineExceeded):
        return "expired"
    if isinstance(exc, CommFailure):
        return "comm"
    return type(exc).__name__


def _run_rate(rate, shed, budget):
    """One (offered rate, shedding config) point; returns the row dict."""
    transport = TcpTransport(
        pipelined=True, stripes=STRIPES, pipeline_depth=PIPELINE_DEPTH,
        loop=True, loop_workers=LOOP_WORKERS, timeout=TIMEOUT,
        overload=OverloadPolicy(shed=shed))
    try:
        server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        ior = server.activate(SlowServant(), LOOKUP, object_name="kv")
        proxy = client.proxy(ior, LOOKUP)
        plan = open_loop_plan(rate, DURATION, keys=KEYS,
                              background_fraction=BACKGROUND_FRACTION,
                              seed=SEED)

        def issue(arrival):
            with call_policy(deadline=Deadline(DEADLINE), idempotent=True,
                             traffic_class=arrival.traffic_class,
                             retry_budget=budget):
                proxy.lookup(arrival.key)

        result = run_open_loop(plan, issue, classify=_classify)
        interactive = [arrival for arrival in plan
                       if arrival.traffic_class == "interactive"]
        metrics = transport.metrics.snapshot()
        return {
            "rate": rate,
            "shedding": shed,
            "offered": result.offered,
            "interactive_offered": len(interactive),
            "completed": result.completed,
            "failures": dict(sorted(result.failures.items())),
            "goodput_rps": round(result.goodput(), 1),
            "elapsed_s": round(result.elapsed, 2),
            "p50_ms": _ms(result.latency_percentile(0.50)),
            "p99_ms": _ms(result.latency_percentile(0.99)),
            "server_shed": metrics["requests_shed"],
            "server_expired": metrics["requests_expired"],
        }
    finally:
        transport.close()


def _ms(seconds):
    return None if seconds is None else round(seconds * 1e3, 1)


def test_s11_overload(benchmark):
    budget = RetryBudget(ratio=RETRY_RATIO, burst=RETRY_BURST)
    shed_on = [_run_rate(rate, True, budget) for rate in RATES]
    shed_off = [_run_rate(rate, False, budget) for rate in RATES]

    rows = []
    for point in (*shed_on, *shed_off):
        rows.append([point["rate"], "on" if point["shedding"] else "off",
                     point["offered"], point["completed"],
                     f"{point['goodput_rps']:.0f}",
                     point["p99_ms"] if point["p99_ms"] is not None else "-",
                     point["server_shed"], point["server_expired"]])
    print_table(
        f"S11: open-loop overload sweep (capacity ~{CAPACITY:.0f} rps, "
        f"deadline {DEADLINE * 1e3:.0f}ms, {LOOP_WORKERS} workers)",
        ["rate", "shed", "offered", "ok", "goodput", "p99 ms",
         "srv shed", "srv expired"], rows)

    peak = max(point["goodput_rps"] for point in shed_on)
    overload_on = shed_on[-1]
    overload_off = shed_off[-1]

    # Sanity below saturation: both configurations serve ~everything.
    for point in (shed_on[0], shed_off[0]):
        assert point["completed"] >= 0.9 * point["offered"], point

    # Gate 1 — no congestion collapse: with shedding, goodput 2x past
    # saturation holds >= 70% of the sweep's peak.
    assert overload_on["goodput_rps"] >= GOODPUT_FLOOR * peak, \
        (f"shedding goodput {overload_on['goodput_rps']} rps at 2x "
         f"saturation fell below {GOODPUT_FLOOR:.0%} of peak {peak} rps")

    # Gate 2 — bounded latency: every successful reply beat its
    # deadline (p99 strictly under the budget, not just under timeout).
    assert overload_on["p99_ms"] is not None
    assert overload_on["p99_ms"] <= DEADLINE * 1e3, overload_on

    # Gate 3 — the baseline really collapses: without shedding the
    # same plan past saturation yields a fraction of the goodput.
    assert overload_off["goodput_rps"] <= \
        COLLAPSE_CEILING * overload_on["goodput_rps"], \
        (f"expected congestion collapse without shedding, got "
         f"{overload_off['goodput_rps']} rps vs "
         f"{overload_on['goodput_rps']} rps with")

    # Gate 4 — the shedding server actually shed (it wasn't just fast).
    assert overload_on["server_shed"] + overload_on["server_expired"] > 0

    # Gate 5 — transport-level resends never exceeded the retry budget.
    snapshot = budget.snapshot()
    assert snapshot["granted"] <= \
        RETRY_RATIO * snapshot["attempts"] + RETRY_BURST, snapshot

    out = {
        "benchmark": "S11 overload: open-loop sweep past saturation",
        "scenario": {
            "service_time_ms": SERVICE_TIME * 1e3,
            "loop_workers": LOOP_WORKERS,
            "capacity_rps": CAPACITY,
            "rates_rps": list(RATES),
            "duration_s": DURATION,
            "deadline_ms": DEADLINE * 1e3,
            "zipf_keys": KEYS,
            "background_fraction": BACKGROUND_FRACTION,
            "retry_budget": {"ratio": RETRY_RATIO, "burst": RETRY_BURST},
            "goodput_floor": GOODPUT_FLOOR,
            "collapse_ceiling": COLLAPSE_CEILING,
            "seed": SEED,
        },
        "shedding_on": shed_on,
        "shedding_off": shed_off,
        "peak_goodput_rps": peak,
        "retry_budget": snapshot,
        "notes": (
            "Goodput counts only replies that beat their 0.3s deadline. "
            "Without shedding the server FIFO-queues past saturation and "
            "services requests whose callers already gave up, so goodput "
            "collapses; with CoDel-shaped, deadline-aware admission the "
            "workers only run requests that can still make their budget "
            "and goodput stays pinned near capacity."),
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_overload.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: overload_on["goodput_rps"])
